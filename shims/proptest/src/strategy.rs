//! Sampling strategies: the shim's counterpart of `proptest::strategy`.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A generator of values of type `Self::Value`.
///
/// Unlike upstream proptest there is no value tree and no shrinking:
/// `generate` draws a single concrete value.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug + Clone;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug + Clone,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            map: f,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug + Clone> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of its payload.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug + Clone,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// Weighted union of same-valued strategies (`prop_oneof!`).
pub struct Union<T: Debug + Clone> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: Debug + Clone> Union<T> {
    /// Build from `(weight, strategy)` arms; weights must not all be 0.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof!: all weights are zero");
        Union { arms, total }
    }
}

impl<T: Debug + Clone> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut x = rng.below(self.total);
        for (w, s) in &self.arms {
            if x < *w as u64 {
                return s.generate(rng);
            }
            x -= *w as u64;
        }
        unreachable!("weighted draw out of range")
    }
}

/// `any::<T>()` — uniform over the whole domain, with a mild bias toward
/// the boundary values that most often expose bugs.
pub fn any<A: Arbitrary>() -> ArbitraryStrategy<A> {
    ArbitraryStrategy(PhantomData)
}

/// Types with a canonical `any()` strategy.
pub trait Arbitrary: Debug + Clone + Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct ArbitraryStrategy<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for ArbitraryStrategy<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary_value(rng)
    }
}

macro_rules! arbitrary_int {
    ($($ty:ty),+ $(,)?) => {$(
        impl Arbitrary for $ty {
            fn arbitrary_value(rng: &mut TestRng) -> $ty {
                // 1-in-8 draws yield an edge value (0, 1, MAX, MIN).
                if rng.below(8) == 0 {
                    match rng.below(4) {
                        0 => 0 as $ty,
                        1 => 1 as $ty,
                        2 => <$ty>::MAX,
                        _ => <$ty>::MIN,
                    }
                } else {
                    rng.next_u64() as $ty
                }
            }
        }
    )+};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategy {
    ($($ty:ty),+ $(,)?) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() - *self.start()) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                *self.start() + rng.below(span + 1) as $ty
            }
        }
    )+};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
