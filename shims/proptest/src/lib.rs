//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of proptest's API its test suite uses: the [`proptest!`]
//! macro with `#![proptest_config(..)]`, `prop_assert!`/`prop_assert_eq!`,
//! [`strategy::Strategy`] with `prop_map`, tuple/range/`any` strategies,
//! weighted [`prop_oneof!`], and `prop::collection::vec`.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** On failure the *unshrunk* input is printed in
//!   `Debug` form; the committed `tests/*.proptest-regressions` shrunk
//!   cases are replayed as explicit unit tests instead (see
//!   `tests/regression_seeds.rs`).
//! * **Deterministic by default.** Each test derives its RNG seed from
//!   its fully qualified name, so runs are reproducible; set
//!   `PROPTEST_SHIM_SEED=<u64>` to explore a different universe.
//! * Generation is a single recursive walk — strategies are sampled, not
//!   lazily expanded into value trees.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror of upstream's `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// Glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a condition inside a `proptest!` body; failures return
/// `Err(TestCaseError)` so the runner can report the generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`: {}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)*),
            left,
            right
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`: {}\n  both: `{:?}`",
            format!($($fmt)*),
            left
        );
    }};
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// The `proptest!` test-definition macro.
///
/// Each declared function becomes a `#[test]` that samples its argument
/// strategies `config.cases` times and runs the body; the body may
/// `return Ok(())` early and use the `prop_assert*` macros.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = ($config:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let test_name = concat!(module_path!(), "::", stringify!($name));
            let mut rng = $crate::test_runner::TestRng::for_test(test_name);
            let strategy = ($($strat,)+);
            for case in 0..config.cases {
                let value = $crate::strategy::Strategy::generate(&strategy, &mut rng);
                let shown = {
                    let ($(ref $arg,)+) = value;
                    format!(
                        concat!($("\n  ", stringify!($arg), " = {:?}",)+),
                        $($arg),+
                    )
                };
                let cloned = ::std::clone::Clone::clone(&value);
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || -> $crate::test_runner::TestCaseResult {
                        let ($($arg,)+) = cloned;
                        $(let _ = &$arg;)+
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    }),
                );
                match outcome {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(e)) => {
                        panic!(
                            "proptest case {}/{} failed: {}\ninput:{}",
                            case + 1, config.cases, e, shown
                        );
                    }
                    ::std::result::Result::Err(payload) => {
                        eprintln!(
                            "[proptest-shim] {} panicked on case {}/{}; input:{}",
                            test_name, case + 1, config.cases, shown
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    )*};
}
