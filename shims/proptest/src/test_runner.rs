//! Test configuration, error type, and the deterministic RNG.

use std::fmt;

/// Per-`proptest!` configuration (only `cases` is honored).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed assertion inside a proptest body.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Construct from a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }

    /// Upstream-compatible alias of [`TestCaseError::fail`].
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Result type of a single generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic RNG driving strategy sampling (xoshiro256**-like;
/// quality is ample for test-input generation).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed from raw entropy.
    pub fn new(seed: u64) -> TestRng {
        // SplitMix64 expansion.
        const PHI: u64 = 0x9e3779b97f4a7c15;
        let mut state = seed;
        let mut s = [0u64; 4];
        for word in &mut s {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            *word = z;
        }
        TestRng { s }
    }

    /// Seed deterministically from a test's fully qualified name, mixed
    /// with `PROPTEST_SHIM_SEED` when set.
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        if let Ok(v) = std::env::var("PROPTEST_SHIM_SEED") {
            if let Ok(extra) = v.trim().parse::<u64>() {
                h ^= extra.rotate_left(17);
            }
        }
        TestRng::new(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, bound)` (`bound > 0`) by rejection.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = TestRng::new(3);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[rng.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn for_test_is_deterministic() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
