//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of criterion's API its benches use: `Criterion`,
//! `benchmark_group` with `sample_size`/`bench_with_input`/`finish`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple: per benchmark it runs one warm-up
//! iteration, then `sample_size` timed samples, and prints min / median /
//! mean wall-clock time per iteration. There is no statistical analysis,
//! HTML report, or baseline management.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-exported from `std::hint`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name.to_string());
        group.run_one(None, &mut f);
        group.finish();
        self
    }
}

/// A named benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Function name + parameter display.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(p)) => write!(f, "{func}/{p}"),
            (Some(func), None) => write!(f, "{func}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "?"),
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmark `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(Some(id), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Benchmark `f` with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(
            Some(BenchmarkId {
                function: Some(id.into()),
                parameter: None,
            }),
            &mut f,
        );
        self
    }

    fn run_one(&mut self, id: Option<BenchmarkId>, f: &mut dyn FnMut(&mut Bencher)) {
        let label = match &id {
            Some(id) => format!("{}/{id}", self.name),
            None => self.name.clone(),
        };
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&label);
    }

    /// End the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `f` repeatedly, timing each sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (not recorded).
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{label:<48} min {} · median {} · mean {} ({} samples)",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            sorted.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Define a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` invoking benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
