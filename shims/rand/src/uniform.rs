//! Uniform range sampling, bit-compatible with rand 0.8.5's
//! `UniformInt::sample_single{,_inclusive}` and `UniformFloat`.

use std::ops::{Range, RangeInclusive};

use crate::RngCore;

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`.
    fn sample_uniform_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_uniform_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Range types accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform_inclusive(*self.start(), *self.end(), rng)
    }
}

#[inline]
fn wmul32(a: u32, b: u32) -> (u32, u32) {
    let t = a as u64 * b as u64;
    ((t >> 32) as u32, t as u32)
}

#[inline]
fn wmul64(a: u64, b: u64) -> (u64, u64) {
    let t = a as u128 * b as u128;
    ((t >> 64) as u64, t as u64)
}

macro_rules! uniform_int_impl {
    ($ty:ty, $unsigned:ty, $u_large:ty, $next:ident, $wmul:ident) => {
        impl SampleUniform for $ty {
            fn sample_uniform_single<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                assert!(low < high, "gen_range: low >= high");
                Self::sample_uniform_inclusive(low, high - 1, rng)
            }

            fn sample_uniform_inclusive<R: RngCore + ?Sized>(
                low: $ty,
                high: $ty,
                rng: &mut R,
            ) -> $ty {
                assert!(low <= high, "gen_range: low > high (inclusive)");
                // rand 0.8.5 uniform_int_impl!: the +1 wraps in the source
                // type before widening, so a full-domain range maps to 0.
                let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                if range == 0 {
                    // Full domain: any value is acceptable.
                    return rng.$next() as $ty;
                }
                let zone = if (<$unsigned>::MAX as u64) <= u16::MAX as u64 {
                    // Small types: reject by modulo (rand's fallback arm).
                    let unsigned_max = <$u_large>::MAX;
                    let ints_to_reject = (unsigned_max - range + 1) % range;
                    unsigned_max - ints_to_reject
                } else {
                    // Lemire multiply-shift zone.
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $u_large = rng.$next() as $u_large;
                    let (hi, lo) = $wmul(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int_impl!(u8, u8, u32, next_u32, wmul32);
uniform_int_impl!(u16, u16, u32, next_u32, wmul32);
uniform_int_impl!(u32, u32, u32, next_u32, wmul32);
uniform_int_impl!(i8, u8, u32, next_u32, wmul32);
uniform_int_impl!(i16, u16, u32, next_u32, wmul32);
uniform_int_impl!(i32, u32, u32, next_u32, wmul32);
uniform_int_impl!(u64, u64, u64, next_u64, wmul64);
uniform_int_impl!(i64, u64, u64, next_u64, wmul64);
uniform_int_impl!(usize, usize, u64, next_u64, wmul64);
uniform_int_impl!(isize, usize, u64, next_u64, wmul64);

macro_rules! uniform_float_impl {
    ($ty:ty, $next:ident, $bits_to_discard:expr, $exponent_one:expr) => {
        impl SampleUniform for $ty {
            fn sample_uniform_single<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                assert!(low < high, "gen_range: low >= high");
                let mut scale = high - low;
                loop {
                    // Value in [1, 2): random mantissa under exponent 0.
                    let value1_2 =
                        <$ty>::from_bits((rng.$next() >> $bits_to_discard) | $exponent_one);
                    // rand 0.8.5 order of operations, kept exactly: the
                    // subtraction first, then mul-add against `low`.
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + low;
                    if res < high {
                        return res;
                    }
                    // Edge case (rounding hit `high`): shrink by one ulp.
                    scale = <$ty>::from_bits(scale.to_bits() - 1);
                }
            }

            fn sample_uniform_inclusive<R: RngCore + ?Sized>(
                low: $ty,
                high: $ty,
                rng: &mut R,
            ) -> $ty {
                assert!(low <= high, "gen_range: low > high (inclusive)");
                let scale = high - low;
                let value1_2 = <$ty>::from_bits((rng.$next() >> $bits_to_discard) | $exponent_one);
                let value0_1 = value1_2 - 1.0;
                value0_1 * scale + low
            }
        }
    };
}

uniform_float_impl!(f64, next_u64, 12, 1023u64 << 52);
uniform_float_impl!(f32, next_u32, 9, 127u32 << 23);
