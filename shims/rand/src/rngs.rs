//! `SmallRng`: xoshiro256++, exactly as embedded in rand 0.8 for 64-bit
//! platforms.

use crate::{RngCore, SeedableRng};

/// A small-state, fast, non-cryptographic PRNG (xoshiro256++).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Construct from raw state words (all-zero state is forbidden).
    pub fn from_state(s: [u64; 4]) -> SmallRng {
        assert!(
            s.iter().any(|&w| w != 0),
            "xoshiro256++ state must be nonzero"
        );
        SmallRng { s }
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(mut state: u64) -> SmallRng {
        // rand 0.8's Xoshiro256PlusPlus::seed_from_u64: SplitMix64.
        const PHI: u64 = 0x9e3779b97f4a7c15;
        let mut s = [0u64; 4];
        for word in &mut s {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            *word = z;
        }
        if s.iter().all(|&w| w == 0) {
            // Unreachable for SplitMix64 output, but mirror rand's guard.
            s[0] = 1;
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        // rand 0.8's embedded xoshiro256++ truncates.
        self.next_u64() as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn splitmix_seeding_is_stable() {
        // Reference values for the SplitMix64 expansion of seed 0.
        let a = SmallRng::seed_from_u64(0);
        let b = SmallRng::seed_from_u64(0);
        assert_eq!(a, b);
        let mut a = a;
        let first = a.next_u64();
        let mut c = SmallRng::seed_from_u64(1);
        assert_ne!(first, c.next_u64());
    }

    #[test]
    fn f64_standard_is_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_and_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let k: usize = rng.gen_range(0..10);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&b| b), "all buckets hit: {seen:?}");
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-64..64);
            assert!((-64..64).contains(&v));
            let f: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!((f64::MIN_POSITIVE..1.0).contains(&f));
            let b: u8 = rng.gen_range(0..16);
            assert!(b < 16);
        }
    }
}
