//! Offline stand-in for the `rand` crate (0.8 series).
//!
//! The build environment has no network access, so the workspace vendors
//! the *small* slice of `rand` it actually uses. Everything here is a
//! bit-compatible reimplementation of rand 0.8.5 semantics:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ (the 64-bit `SmallRng`), seeded
//!   through SplitMix64 exactly like `SeedableRng::seed_from_u64`.
//! * `Rng::gen::<f64>()` — the 53-bit multiply-based `Standard` sampler.
//! * `Rng::gen_range` — Lemire widening-multiply rejection sampling for
//!   integers (32-bit `u_large` for types ≤ 32 bits, 64-bit above), and
//!   the `[1, 2)`-mantissa method for floats.
//!
//! Bit-compatibility matters: the synthetic workload generator is
//! calibrated against the paper's Table 3 with fixed seeds, and the test
//! suite asserts those structural statistics exactly.

pub mod rngs;
mod uniform;

pub use uniform::{SampleRange, SampleUniform};

/// Core RNG interface (the subset of `rand_core::RngCore` we need).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from the `Standard` distribution (uniform over the
/// whole domain; `[0, 1)` for floats).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // rand 0.8: multiply-based, 53 random bits, [0, 1).
        let scale = 1.0 / ((1u64 << 53) as f64);
        let value = rng.next_u64() >> 11;
        scale * value as f64
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        let scale = 1.0 / ((1u32 << 24) as f32);
        let value = rng.next_u32() >> 8;
        scale * value as f32
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        // rand 0.8 compares the most significant bit of a u32.
        rng.next_u32() & (1 << 31) != 0
    }
}

macro_rules! standard_int {
    ($($ty:ty => $method:ident),+ $(,)?) => {$(
        impl Standard for $ty {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $ty {
                rng.$method() as $ty
            }
        }
    )+};
}
standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
              i8 => next_u32, i16 => next_u32, i32 => next_u32,
              u64 => next_u64, i64 => next_u64,
              usize => next_u64, isize => next_u64);

/// User-facing random value generation (the subset of `rand::Rng` used
/// by the workspace).
pub trait Rng: RngCore {
    /// Sample from the `Standard` distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        // Matches rand 0.8's Bernoulli: scaled 64-bit integer compare.
        if p == 1.0 {
            return true;
        }
        let p_int = (p * ((1u64 << 63) as f64) * 2.0) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore> Rng for R {}

/// Seeding interface (the subset of `rand::SeedableRng` we need).
pub trait SeedableRng: Sized {
    /// Deterministically derive a full seed from a `u64` via SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}
