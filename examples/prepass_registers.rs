//! Prepass (before register allocation) scheduling with the paper's
//! register-usage heuristics: Warren's liveness criterion and Tiemann's
//! birthing-instruction adjustment both try to keep values' live ranges
//! short so the allocator needs fewer registers.
//!
//! ```text
//! cargo run --example prepass_registers
//! ```

use dagsched::core::{build_dag, ConstructionAlgorithm, HeuristicSet, MemDepPolicy};
use dagsched::isa::{Instruction, MachineModel, Reg, RegClass, Resource};
use dagsched::sched::{Schedule, Scheduler, SchedulerKind};
use dagsched::workloads::parse_asm;

/// Maximum number of simultaneously live registers across the block,
/// assuming nothing is live-in or live-out (a self-contained expression
/// block).
fn max_pressure(insns: &[Instruction]) -> usize {
    let mut live: std::collections::HashSet<Reg> = std::collections::HashSet::new();
    // Walk backward: a use births liveness, a def kills it.
    let mut max = 0usize;
    for insn in insns.iter().rev() {
        for r in insn.defs() {
            if let Resource::Reg(reg) = r {
                live.remove(&reg);
            }
        }
        for r in insn.uses() {
            if let Resource::Reg(reg) = r {
                if matches!(reg.class(), RegClass::Int | RegClass::Fp) {
                    live.insert(reg);
                }
            }
        }
        max = max.max(live.len());
    }
    max
}

fn reordered(insns: &[Instruction], schedule: &Schedule) -> Vec<Instruction> {
    schedule
        .order
        .iter()
        .map(|n| insns[n.index()].clone())
        .collect()
}

fn main() {
    // An expression-tree block: many independent subexpressions that an
    // aggressive latency-only scheduler would interleave, inflating the
    // number of simultaneously live values.
    let prog = parse_asm(
        "
        ld [%fp-4], %o0
        ld [%fp-8], %o1
        add %o0, %o1, %o2
        ld [%fp-12], %o3
        ld [%fp-16], %o4
        add %o3, %o4, %o5
        add %o2, %o5, %l0
        ld [%fp-20], %l1
        ld [%fp-24], %l2
        add %l1, %l2, %l3
        add %l0, %l3, %l4
        st %l4, [%fp-28]
        ",
    )
    .unwrap();
    let model = MachineModel::sparc2();
    let dag = build_dag(
        &prog.insns,
        &model,
        ConstructionAlgorithm::TableForward,
        MemDepPolicy::SymbolicExpr,
    );
    let heur = HeuristicSet::compute(&dag, &prog.insns, &model, false);

    println!(
        "original order: max pressure = {}",
        max_pressure(&prog.insns)
    );
    println!("register heuristics per instruction (born/killed/liveness):");
    for n in dag.node_ids() {
        let i = n.index();
        println!(
            "  {:<22} born={} killed={} net={:+}",
            prog.insns[i].to_string(),
            heur.regs_born[i],
            heur.regs_killed[i],
            heur.liveness[i]
        );
    }

    for kind in [
        SchedulerKind::ShiehPapachristou,
        SchedulerKind::Warren,
        SchedulerKind::Tiemann,
    ] {
        let schedule = Scheduler::new(kind).schedule_block(&prog.insns, &model);
        schedule.verify(&dag).unwrap();
        let new_order = reordered(&prog.insns, &schedule);
        println!(
            "\n{}: max pressure = {}, stalls = {}",
            kind.name(),
            max_pressure(&new_order),
            schedule.stall_cycles()
        );
    }

    // The published stacks rank latency heuristics above register usage,
    // so on a stall-free block they happily hoist every load and inflate
    // pressure. A *prepass* configuration built from the same framework
    // puts liveness first (the point of #registers born/killed in
    // Table 1's register-usage category).
    use dagsched::sched::{
        Criterion, Gating, HeurKey, ListScheduler, SchedDirection, SelectStrategy,
    };
    let prepass = ListScheduler {
        direction: SchedDirection::Forward,
        gating: Gating::AllReady,
        strategy: SelectStrategy::Winnowing(vec![
            Criterion::min(HeurKey::Liveness),
            Criterion::max(HeurKey::RegsKilled),
            Criterion::max(HeurKey::MaxDelayToLeaf),
            Criterion::min(HeurKey::OriginalOrder),
        ]),
        pin_terminator: true,
        birthing_boost: 0,
    };
    let schedule = prepass.run(&dag, &prog.insns, &model, &heur);
    schedule.verify(&dag).unwrap();
    let new_order = reordered(&prog.insns, &schedule);
    println!(
        "\nliveness-first prepass stack: max pressure = {}, stalls = {}",
        max_pressure(&new_order),
        schedule.stall_cycles()
    );
    println!(
        "\nThe published stacks rank latency above register usage and hoist all six\n\
         loads (pressure 7); ranking liveness first keeps each value's birth next\n\
         to its death, holding pressure near the original order's — the trade\n\
         pre-register-allocation scheduling makes (paper §3, register usage)."
    );
}
