//! The prepass trade-off in full: Warren-style two-phase scheduling
//! (pressure-aware prepass → linear-scan allocation → latency-focused
//! postpass) versus a latency-only prepass, measured in both spills and
//! pipeline cycles under shrinking register budgets.
//!
//! ```text
//! cargo run --example spill_tradeoff
//! ```

use dagsched::isa::{Instruction, MachineModel, MemRef, Opcode, Program, Reg};
use dagsched::pipesim::{simulate, SimOptions};
use dagsched::sched::{
    Criterion, Gating, HeurKey, LinearScan, ListScheduler, SchedDirection, SelectStrategy, TwoPhase,
};

/// A wide block: twelve independent load/compute/store strands. Pressure
/// is entirely schedule-determined.
fn wide_block() -> Program {
    let mut p = Program::new();
    const VREGS: [u8; 12] = [8, 9, 10, 11, 12, 13, 18, 19, 20, 21, 22, 23];
    for (k, &v) in VREGS.iter().enumerate() {
        let src = p.mem_exprs.intern(&format!("[%fp-{}]", 8 * (k + 1)));
        p.push(Instruction::load(
            Opcode::Ld,
            MemRef::base_offset(Reg::fp(), -(8 * (k as i32 + 1)), src),
            Reg::Int(v),
        ));
        // The add *kills* its loaded input and births a short-lived result
        // (register-usage heuristics see it as pressure-neutral).
        p.push(Instruction::int_imm(
            Opcode::Add,
            Reg::Int(v),
            k as i64,
            Reg::i((k % 4) as u8),
        ));
        let dst = p.mem_exprs.intern(&format!("[%fp-{}]", 200 + 8 * (k + 1)));
        p.push(Instruction::store(
            Opcode::St,
            Reg::i((k % 4) as u8),
            MemRef::base_offset(Reg::fp(), -(200 + 8 * (k as i32 + 1)), dst),
        ));
    }
    p
}

fn latency_first_prepass() -> ListScheduler {
    ListScheduler {
        direction: SchedDirection::Forward,
        gating: Gating::AllReady,
        strategy: SelectStrategy::Winnowing(vec![
            Criterion::max(HeurKey::MaxDelayToLeaf),
            Criterion::min(HeurKey::OriginalOrder),
        ]),
        pin_terminator: true,
        birthing_boost: 0,
    }
}

fn main() {
    let prog = wide_block();
    let model = MachineModel::sparc2();
    println!(
        "{:>10} {:>22} {:>10} {:>10} {:>10}",
        "int regs", "prepass", "spills", "insns", "cycles"
    );
    println!("{}", "-".repeat(68));
    for budget in [12usize, 8, 6, 4] {
        // Allocatable candidates: skip %sp (14) and the spill scratches
        // %l0/%l1 (16, 17).
        const CANDIDATES: [u8; 12] = [8, 9, 10, 11, 12, 13, 18, 19, 20, 21, 22, 23];
        let pool = LinearScan {
            int_pool: CANDIDATES[..budget].iter().map(|&k| Reg::Int(k)).collect(),
            ..LinearScan::default()
        };
        for (label, tp) in [
            (
                "pressure-aware",
                TwoPhase {
                    allocator: pool.clone(),
                    ..TwoPhase::default()
                },
            ),
            (
                "latency-first",
                TwoPhase {
                    prepass: latency_first_prepass(),
                    allocator: pool.clone(),
                    ..TwoPhase::default()
                },
            ),
        ] {
            let mut mem_exprs = prog.mem_exprs.clone();
            let r = tp.run(&prog.insns, &model, &mut mem_exprs);
            let sim = simulate(&r.insns, &model, SimOptions::default());
            println!(
                "{:>10} {:>22} {:>10} {:>10} {:>10}",
                budget,
                label,
                r.spilled_ranges,
                r.insns.len(),
                sim.cycles
            );
        }
    }
    println!(
        "\nWith plenty of registers the latency-first prepass wins cycles; as the\n\
         budget shrinks its loads-first order spills, and each spill costs a\n\
         store, a reload and a load-delay bubble — the trade the paper's\n\
         register-usage heuristics (§3) exist to manage."
    );
}
