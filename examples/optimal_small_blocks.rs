//! The paper's §7 future-work question, answered live: would an optimal
//! branch-and-bound scheduler benefit performance for small basic blocks?
//!
//! ```text
//! cargo run --release --example optimal_small_blocks [benchmark] [max-block]
//! ```

use dagsched::core::{ConstructionAlgorithm, HeuristicSet, MemDepPolicy, PreparedBlock};
use dagsched::isa::MachineModel;
use dagsched::sched::{BranchAndBound, Scheduler, SchedulerKind};
use dagsched::workloads::{generate, BenchmarkProfile, PAPER_SEED};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("grep");
    let max_block: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    let profile = BenchmarkProfile::by_name(name).unwrap_or_else(|| {
        eprintln!("unknown benchmark `{name}`");
        std::process::exit(2);
    });
    let bench = generate(profile, PAPER_SEED);
    let model = MachineModel::sparc2();
    let bnb = BranchAndBound::default();

    // Solve every small block to proven optimality.
    let mut solved: Vec<(usize, u64)> = Vec::new();
    let mut unproven = 0usize;
    for (bi, block) in bench.blocks.iter().enumerate() {
        let insns = bench.program.block_insns(block);
        if insns.is_empty() || insns.len() > max_block {
            continue;
        }
        let prepared = PreparedBlock::new(insns);
        let dag =
            ConstructionAlgorithm::TableBackward.run(&prepared, &model, MemDepPolicy::SymbolicExpr);
        let heur = HeuristicSet::compute(&dag, insns, &model, false);
        let r = bnb.schedule(&dag, insns, &model, &heur);
        if r.is_proven() {
            solved.push((bi, r.schedule().makespan(insns, &model)));
        } else {
            unproven += 1;
        }
    }
    println!(
        "{name}: {} blocks of <= {max_block} instructions solved optimally \
         ({unproven} hit the search budget)\n",
        solved.len()
    );

    println!(
        "{:<22} {:>9} {:>12} {:>11}",
        "scheduler", "% optimal", "total excess", "max excess"
    );
    println!("{}", "-".repeat(58));
    for &kind in SchedulerKind::ALL {
        let sched = Scheduler::new(kind);
        let mut hits = 0usize;
        let mut excess = 0u64;
        let mut worst: (u64, usize) = (0, 0);
        for &(bi, opt) in &solved {
            let insns = bench.program.block_insns(&bench.blocks[bi]);
            let m = sched.schedule_block(insns, &model).makespan(insns, &model);
            assert!(m >= opt, "optimal beaten — bound bug");
            if m == opt {
                hits += 1;
            } else if m - opt > worst.0 {
                worst = (m - opt, bi);
            }
            excess += m - opt;
        }
        println!(
            "{:<22} {:>8.1}% {:>12} {:>11}",
            kind.name(),
            100.0 * hits as f64 / solved.len().max(1) as f64,
            excess,
            worst.0
        );
    }
    println!(
        "\nThe heuristics are near-optimal on small blocks — the answer to the\n\
         paper's §7 question is that branch-and-bound would buy about 1% here."
    );
}
