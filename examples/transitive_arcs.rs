//! The paper's Figure 1: why table building deliberately keeps some
//! transitive arcs, and what goes wrong when an algorithm prunes them all.
//!
//! ```text
//! cargo run --example transitive_arcs
//! ```

use dagsched::core::{
    closure, ConstructionAlgorithm, HeuristicSet, MemDepPolicy, NodeId, PreparedBlock,
};
use dagsched::isa::MachineModel;
use dagsched::workloads::parse_asm;

fn main() {
    // 1: DIVF R1,R2,R3 (20 cycles)   2: ADDF R4,R5,R1   3: ADDF R1,R3,R6
    let prog = parse_asm("DIVF R1,R2,R3\nADDF R4,R5,R1\nADDF R1,R3,R6").unwrap();
    let model = MachineModel::sparc2();
    let block = PreparedBlock::new(&prog.insns);

    println!("Figure 1 block:");
    for (i, insn) in prog.insns.iter().enumerate() {
        println!("  {}: {insn}", i + 1);
    }
    println!(
        "\nThe WAR arc 1->2 costs 1 cycle and the RAW arc 2->3 costs 4, but node 3\n\
         also consumes the divide's 20-cycle result: the direct arc 1->3 is\n\
         *transitive* (1->2->3 already orders the pair) yet carries timing that\n\
         the short path does not.\n"
    );

    for algo in ConstructionAlgorithm::ALL {
        let dag = algo.run(&block, &model, MemDepPolicy::SymbolicExpr);
        let mut h = HeuristicSet::default();
        dagsched::core::annotate_construction(&mut h, &dag, &prog.insns, &model);
        dagsched::core::annotate_forward(&mut h, &dag);
        let keeps = dag.arc_between(NodeId::new(0), NodeId::new(2)).is_some();
        let sound = closure::preserves_dependence_latencies(
            &dag,
            &block,
            &model,
            MemDepPolicy::SymbolicExpr,
        )
        .is_ok();
        println!(
            "{:<26} arcs={}  keeps 1->3: {:<5}  EST(node 3) = {:>2} cycles  [{}]",
            algo.name(),
            dag.arc_count(),
            keeps,
            h.est[2],
            if sound {
                "timing preserved"
            } else {
                "TIMING LOST"
            },
        );
    }

    println!(
        "\nPaper finding 3: avoid the transitive-arc-removal variants — a scheduler\n\
         using the pruned DAG believes node 3 can start at cycle 5 and will emit a\n\
         schedule that stalls 15 cycles on the divide."
    );
}
