//! Inter-block latency inheritance (the paper's §2 "global information"
//! and §7 future work): scheduling each block with knowledge of the
//! operation latencies still in flight from its predecessor.
//!
//! ```text
//! cargo run --example global_scheduling
//! ```

use dagsched::core::{build_dag, ConstructionAlgorithm, HeuristicSet, MemDepPolicy};
use dagsched::isa::{Instruction, MachineModel};
use dagsched::pipesim::{simulate, SimOptions};
use dagsched::sched::{
    carry_out, entry_constraints, Criterion, Gating, HeurKey, ListScheduler, SchedDirection,
    Schedule, SelectStrategy,
};
use dagsched::workloads::parse_asm;

fn build(insns: &[Instruction], model: &MachineModel) -> (dagsched::core::Dag, HeuristicSet) {
    let dag = build_dag(
        insns,
        model,
        ConstructionAlgorithm::TableBackward,
        MemDepPolicy::SymbolicExpr,
    );
    let heur = HeuristicSet::compute(&dag, insns, model, false);
    (dag, heur)
}

fn emit(insns: &[Instruction], schedule: &Schedule) -> Vec<Instruction> {
    schedule
        .order
        .iter()
        .map(|n| insns[n.index()].clone())
        .collect()
}

fn main() {
    let model = MachineModel::sparc2();
    // Block 1 launches a 20-cycle divide just before its branch.
    let prog1 = parse_asm(
        "
        lddf [%i0+8], %f0
        lddf [%i0+16], %f2
        fdivd %f0, %f2, %f4
        ba next
        ",
    )
    .unwrap();
    // Block 2 consumes the divide, plus plenty of independent work.
    let prog2 = parse_asm(
        "
        faddd %f4, %f6, %f8
        stdf %f8, [%i1+8]
        ld [%i2+4], %o0
        add %o0, 1, %o1
        sub %o1, 2, %o2
        xor %o2, 3, %o3
        and %o3, 7, %o4
        or %o4, 1, %o5
        ",
    )
    .unwrap();

    let scheduler = ListScheduler {
        direction: SchedDirection::Forward,
        gating: Gating::ByEarliestExec {
            include_fpu_busy: true,
        },
        strategy: SelectStrategy::Winnowing(vec![
            Criterion::max(HeurKey::MaxDelayToLeaf),
            Criterion::min(HeurKey::OriginalOrder),
        ]),
        pin_terminator: true,
        birthing_boost: 0,
    };

    let (dag1, heur1) = build(&prog1.insns, &model);
    let s1 = scheduler.run(&dag1, &prog1.insns, &model, &heur1);
    let carry = carry_out(&s1, &prog1.insns, &model);
    println!("carried out of block 1 (cycles still to wait at block 2 entry):");
    for (res, d) in &carry.resource_ready {
        println!("  {res}: {d}");
    }
    for (unit, d) in &carry.unit_busy {
        println!("  unit {unit}: {d}");
    }

    let (dag2, heur2) = build(&prog2.insns, &model);
    // Local: block 2 scheduled in isolation.
    let local = scheduler.run(&dag2, &prog2.insns, &model, &heur2);
    // Global: block 2 scheduled with inherited constraints.
    let entry = entry_constraints(&prog2.insns, &model, &carry);
    println!("\nentry constraints for block 2: {entry:?}");
    let global = scheduler.run_with_entry(&dag2, &prog2.insns, &model, &heur2, &entry);

    // Measure on the real (carrying) machine: simulate the concatenation.
    for (label, s2) in [("local", &local), ("global", &global)] {
        let mut stream = emit(&prog1.insns, &s1);
        stream.extend(emit(&prog2.insns, s2));
        let r = simulate(&stream, &model, SimOptions::default());
        println!(
            "{label:>7}: order of block 2 = {:?}, total {} cycles, {} stalls",
            s2.order.iter().map(|n| n.index()).collect::<Vec<_>>(),
            r.cycles,
            r.total_stalls()
        );
    }
    println!(
        "\nThe globally informed pass knows %f4 is still {} cycles away and floats\n\
         the independent integer work ahead of the FP consumer (paper §2: pseudo\n\
         arcs for latencies inherited from preceding blocks).",
        carry
            .resource_ready
            .iter()
            .map(|&(_, d)| d)
            .max()
            .unwrap_or(0)
    );
}
