//! Quickstart: build a dependence DAG for one basic block, compute the
//! paper's heuristics, list-schedule it, and measure the stall cycles the
//! schedule saves on an in-order pipeline.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dagsched::core::{build_dag, ConstructionAlgorithm, HeuristicSet, MemDepPolicy};
use dagsched::isa::MachineModel;
use dagsched::pipesim::{simulate, SimOptions};
use dagsched::sched::{Scheduler, SchedulerKind};
use dagsched::workloads::parse_asm;

fn main() {
    // A small block: a load with a delay slot, a long divide, dependent
    // FP work, and independent integer instructions a scheduler can use
    // as filler.
    let prog = parse_asm(
        "
        lddf [%fp-8], %f0
        fdivd %f0, %f2, %f4
        faddd %f4, %f6, %f8
        stdf %f8, [%fp-16]
        add %o0, %o1, %o2
        sub %o2, 4, %o3
        xor %o4, %o5, %o4
        cmp %o3, %o0
        bne exit
        ",
    )
    .expect("assembly parses");
    let model = MachineModel::sparc2();

    // 1. DAG construction (backward table building: the paper's
    //    recommendation for large blocks).
    let dag = build_dag(
        &prog.insns,
        &model,
        ConstructionAlgorithm::TableBackward,
        MemDepPolicy::SymbolicExpr,
    );
    println!(
        "block: {} instructions, {} dependence arcs",
        dag.node_count(),
        dag.arc_count()
    );
    for arc in dag.arcs() {
        println!(
            "  {} -> {}  {} (delay {})",
            prog.insns[arc.from.index()],
            prog.insns[arc.to.index()],
            arc.kind,
            arc.latency
        );
    }

    // 2. Heuristic calculation.
    let heur = HeuristicSet::compute(&dag, &prog.insns, &model, false);
    println!("\ncritical path (slack = 0):");
    for n in dag.node_ids() {
        if heur.slack[n.index()] == 0 {
            println!(
                "  [est {:>2}] {}",
                heur.est[n.index()],
                prog.insns[n.index()]
            );
        }
    }

    // 3. Scheduling with Warren's algorithm, then measure on the pipeline.
    let schedule = Scheduler::new(SchedulerKind::Warren).schedule_block(&prog.insns, &model);
    schedule.verify(&dag).expect("schedule is valid");
    let reordered: Vec<_> = schedule
        .order
        .iter()
        .map(|n| prog.insns[n.index()].clone())
        .collect();

    let before = simulate(&prog.insns, &model, SimOptions::default());
    let after = simulate(&reordered, &model, SimOptions::default());
    println!("\nscheduled order:");
    for insn in &reordered {
        println!("  {insn}");
    }
    println!(
        "\npipeline: {} cycles / {} stalls before, {} cycles / {} stalls after",
        before.cycles,
        before.total_stalls(),
        after.cycles,
        after.total_stalls()
    );
    assert!(after.cycles <= before.cycles);
}
