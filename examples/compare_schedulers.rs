//! Run the six published scheduling algorithms (Table 2) over a whole
//! synthetic benchmark and compare the pipeline cycles their schedules
//! achieve — the downstream comparison the paper's survey enables.
//!
//! ```text
//! cargo run --release --example compare_schedulers [benchmark] [seed]
//! ```

use dagsched::isa::MachineModel;
use dagsched::pipesim::{simulate, SimOptions};
use dagsched::sched::{Scheduler, SchedulerKind};
use dagsched::workloads::{generate, BenchmarkProfile, PAPER_SEED};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("linpack");
    let seed = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(PAPER_SEED);
    let profile = BenchmarkProfile::by_name(name).unwrap_or_else(|| {
        eprintln!("unknown benchmark `{name}`; try grep, linpack, tomcatv, fpppp-1000 …");
        std::process::exit(2);
    });
    let bench = generate(profile, seed);
    let model = MachineModel::sparc2();

    // Baseline: original program order.
    let mut base_cycles = 0u64;
    let mut base_stalls = 0u64;
    for block in &bench.blocks {
        let r = simulate(
            bench.program.block_insns(block),
            &model,
            SimOptions::default(),
        );
        base_cycles += r.cycles;
        base_stalls += r.total_stalls();
    }
    println!(
        "{name} (seed {seed}): {} blocks, {} instructions",
        bench.blocks.len(),
        bench.program.len()
    );
    println!(
        "{:<22} {:>12} {:>12} {:>10}",
        "scheduler", "cycles", "stalls", "vs. orig"
    );
    println!("{}", "-".repeat(60));
    println!(
        "{:<22} {:>12} {:>12} {:>10}",
        "(program order)", base_cycles, base_stalls, "--"
    );

    for &kind in SchedulerKind::ALL {
        let sched = Scheduler::new(kind);
        let mut cycles = 0u64;
        let mut stalls = 0u64;
        for block in &bench.blocks {
            let insns = bench.program.block_insns(block);
            if insns.is_empty() {
                continue;
            }
            let schedule = sched.schedule_block(insns, &model);
            let reordered: Vec<_> = schedule
                .order
                .iter()
                .map(|n| insns[n.index()].clone())
                .collect();
            let r = simulate(&reordered, &model, SimOptions::default());
            cycles += r.cycles;
            stalls += r.total_stalls();
        }
        println!(
            "{:<22} {:>12} {:>12} {:>9.1}%",
            kind.name(),
            cycles,
            stalls,
            100.0 * (base_cycles as f64 - cycles as f64) / base_cycles as f64
        );
    }
}
