//! The paper's headline result in miniature: compare-against-all (`n**2`)
//! DAG construction blows up on large basic blocks while table building
//! scales, which is why the paper recommends instruction windows of
//! 300–400 for `n**2` — and none at all for table building.
//!
//! ```text
//! cargo run --release --example large_block
//! ```

use std::time::Instant;

use dagsched::core::{ConstructionAlgorithm, MemDepPolicy, PreparedBlock};
use dagsched::isa::MachineModel;
use dagsched::workloads::{clamp_blocks, generate, BenchmarkProfile, PAPER_SEED};

fn main() {
    let model = MachineModel::sparc2();
    // Use the giant fpppp block and window it to increasing sizes.
    let bench = generate(BenchmarkProfile::by_name("fpppp").unwrap(), PAPER_SEED);
    let big = bench
        .blocks
        .iter()
        .max_by_key(|b| b.len())
        .expect("fpppp has blocks")
        .clone();
    println!("windowing the {}-instruction fpppp block:\n", big.len());
    println!(
        "{:>7} {:>14} {:>12} {:>14} {:>12}",
        "window", "n**2 time", "n**2 arcs", "table time", "table arcs"
    );
    for window in [100usize, 200, 400, 800, 1600, 3200, 6400, 11750] {
        let chunks = clamp_blocks(std::slice::from_ref(&big), window);
        let mut n2_arcs = 0usize;
        let mut tb_arcs = 0usize;
        let t0 = Instant::now();
        for chunk in &chunks {
            let prepared = PreparedBlock::new(bench.program.block_insns(chunk));
            n2_arcs += ConstructionAlgorithm::N2Forward
                .run(&prepared, &model, MemDepPolicy::SymbolicExpr)
                .arc_count();
        }
        let n2_time = t0.elapsed();
        let t1 = Instant::now();
        for chunk in &chunks {
            let prepared = PreparedBlock::new(bench.program.block_insns(chunk));
            tb_arcs += ConstructionAlgorithm::TableBackward
                .run(&prepared, &model, MemDepPolicy::SymbolicExpr)
                .arc_count();
        }
        let tb_time = t1.elapsed();
        println!(
            "{:>7} {:>12.2?} {:>12} {:>12.2?} {:>12}",
            window, n2_time, n2_arcs, tb_time, tb_arcs
        );
    }
    println!(
        "\nThe n**2 cost and arc count grow with the window; the table-building cost\n\
         is nearly window-independent (paper finding 1-2)."
    );
}
