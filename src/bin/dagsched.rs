//! `dagsched` — command-line front end for the library.
//!
//! ```text
//! dagsched dag      block.s            # dependence arcs per basic block
//! dagsched dot      block.s --block 0  # Graphviz DOT of one block's DAG
//! dagsched heur     block.s            # heuristic annotation tables
//! dagsched schedule block.s --scheduler warren --fill-slots
//! dagsched sim      block.s            # pipeline cycles before/after
//! dagsched serve    --listen unix:/tmp/dagsched.sock --state-dir /var/lib/dagsched
//! dagsched route    --listen tcp:0.0.0.0:4590 --shard unix:/run/shard-0.sock --shard unix:/run/shard-1.sock
//! dagsched netchaos --listen unix:/tmp/link.sock --upstream unix:/run/shard-0.sock --seed 7 --fault-rate 100
//! dagsched cluster  status --connect tcp:127.0.0.1:4590
//! dagsched cluster  add-shard --connect tcp:127.0.0.1:4590 --shard unix:/run/shard-2.sock
//! dagsched request  block.s --connect unix:/tmp/dagsched.sock
//! dagsched fsck     /var/lib/dagsched           # validate the store; --repair fixes it
//! dagsched fuzz     --seed 0xDA65C4ED --minutes 2
//! dagsched diff     block.s            # run the full cross-check matrix
//! dagsched diff     --corpus tests/corpus
//! ```
//!
//! Input is SPARC-flavoured assembly (or the paper's Figure 1 `DIVF
//! R1,R2,R3` notation); `-` or no file reads stdin.
//!
//! `schedule` and `sim` honour the same `--timeout-ms` / `--max-block`
//! guards as the daemon — both front ends funnel through
//! [`dagsched::batch::Limits`], so a block the service would reject is
//! rejected identically here.

use std::io::Read;
use std::time::Duration;

use dagsched::batch::{schedule_program_batch, Limits, NoCache};
use dagsched::core::{
    build_dag, dump_annotations, to_dot, ConstructionAlgorithm, HeuristicSet, MemDepPolicy,
    PhaseStats,
};
use dagsched::driver::DriverConfig;
use dagsched::isa::{MachineModel, Program};
use dagsched::netchaos::{serve_proxy, ChaosConfig};
use dagsched::pipesim::{render_timeline, simulate, SimOptions};
use dagsched::proto::AdminCommand;
use dagsched::router::{serve_router, RouterConfig};
use dagsched::sched::{Scheduler, SchedulerKind};
use dagsched::service::proto::{parse_algo, parse_model, parse_policy, parse_scheduler_kind};
use dagsched::service::server::{serve, ServerConfig};
use dagsched::service::{CacheConfig, Client, ScheduleRequest};
use dagsched::verify::{check_text, replay_dir, run_fuzz, FuzzConfig, MatrixConfig};
use dagsched::workloads::parse_asm;

struct Options {
    command: String,
    file: Option<String>,
    algo: ConstructionAlgorithm,
    policy: MemDepPolicy,
    scheduler: SchedulerKind,
    model: MachineModel,
    /// The raw flag values, kept for wire requests.
    algo_name: String,
    policy_name: String,
    scheduler_name: String,
    model_name: String,
    block: Option<usize>,
    inherit: bool,
    fill_slots: bool,
    timeline: bool,
    /// Worker threads for block compilation (0 = machine parallelism).
    jobs: usize,
    /// Print the per-phase counters after scheduling.
    stats: bool,
    /// Abandon scheduling after this many milliseconds.
    timeout_ms: Option<u64>,
    /// Reject blocks larger than this many instructions.
    max_block: Option<usize>,
    /// `serve`: endpoint to listen on; `request`: endpoint to dial.
    endpoint: String,
    /// `serve`: worker threads.
    workers: usize,
    /// `serve`: bounded connection-queue depth.
    queue: usize,
    /// `serve`: slow-loris bound — typed `idle-timeout` close for a
    /// connection that never completes a frame within this window.
    first_frame_timeout_ms: Option<u64>,
    /// `serve`: schedule-cache byte budget in MiB.
    cache_mb: usize,
    /// `serve`: persist the schedule cache and quarantine ring here
    /// (snapshot + WAL); recover from it on startup.
    state_dir: Option<String>,
    /// `serve`: snapshot the cache once the WAL exceeds this many MiB.
    wal_threshold_mb: Option<u64>,
    /// `serve`: fsync the WAL every N appended cache entries.
    fsync_every: Option<u64>,
    /// `fsck`: repair the store instead of only reporting.
    repair: bool,
    /// `route`: shard endpoints (repeatable `--shard`); `cluster`: the
    /// shard an `add-shard`/`remove-shard` targets.
    shards: Vec<String>,
    /// `route`: replica-set size R (primary + R−1 ring successors).
    replicas: usize,
    /// `route`: consecutive failures before a shard's breaker opens.
    fail_threshold: Option<u32>,
    /// `route`: consecutive half-open probe successes before an open
    /// breaker closes and the shard rejoins the ring.
    revive_threshold: Option<u32>,
    /// `route`: disable hedged requests (race a stuck primary against
    /// the next replica).
    no_hedge: bool,
    /// `route`: per-shard forward-latency quantile a request must
    /// outlive before the hedge launches.
    hedge_quantile: Option<f64>,
    /// `route`: clamps on the hedge delay, milliseconds.
    hedge_min_ms: Option<u64>,
    hedge_max_ms: Option<u64>,
    /// `netchaos`: the endpoint the proxy relays to.
    upstream: Option<String>,
    /// `netchaos`: per-mille fraction of connections drawing a fault.
    fault_rate: u16,
    /// `request`: generated workload instead of an input file.
    profile: Option<String>,
    /// `request`: workload generator seed.
    seed: u64,
    /// `request`: ask the server for before/after cycle counts.
    sim: bool,
    /// `request`: retry budget for transient failures (`None` = one
    /// attempt, fail fast).
    retries: Option<u32>,
    /// `request`: forbid degraded (cheap-rung) scheduling under
    /// deadline pressure — expire instead.
    no_degrade: bool,
    /// `fuzz`: wall-clock budget in minutes.
    minutes: f64,
    /// `fuzz`: iteration bound (`None` = time budget only).
    iters: Option<u64>,
    /// `fuzz`/`diff`: reproducer corpus directory.
    corpus: Option<String>,
    /// `fuzz`: skip shrinking (report the raw failing program).
    no_shrink: bool,
}

fn main() {
    let opts = parse_args().unwrap_or_else(|e| usage(&e));
    match opts.command.as_str() {
        "serve" => return cmd_serve(&opts),
        "route" => return cmd_route(&opts),
        "netchaos" => return cmd_netchaos(&opts),
        "cluster" => return cmd_cluster(&opts),
        "request" => return cmd_request(&opts),
        "fuzz" => return cmd_fuzz(&opts),
        "diff" => return cmd_diff(&opts),
        "fsck" => return cmd_fsck(&opts),
        _ => {}
    }
    let text = read_input(&opts.file).unwrap_or_else(|e| die(&format!("reading input: {e}")));
    let program = parse_asm(&text).unwrap_or_else(|e| die(&format!("parse error: {e}")));
    if program.is_empty() {
        die("no instructions in input");
    }
    match opts.command.as_str() {
        "dag" => cmd_dag(&program, &opts),
        "dot" => cmd_dot(&program, &opts),
        "heur" => cmd_heur(&program, &opts),
        "schedule" => cmd_schedule(&program, &opts),
        "sim" => cmd_sim(&program, &opts),
        other => usage(&format!("unknown command `{other}`")),
    }
}

/// The shared guard set for one-shot runs: the same [`Limits`] the
/// daemon enforces per request.
fn limits(opts: &Options) -> Limits {
    let mut l = Limits::none();
    if let Some(max) = opts.max_block {
        l = l.with_max_block(max);
    }
    if let Some(ms) = opts.timeout_ms {
        l = l.with_deadline_in(Duration::from_millis(ms));
    }
    l
}

fn driver_config(opts: &Options) -> DriverConfig {
    DriverConfig {
        scheduler: Scheduler::new(opts.scheduler)
            .with_construction(opts.algo)
            .with_policy(opts.policy),
        inherit_latencies: opts.inherit,
        fill_delay_slots: opts.fill_slots,
        ..DriverConfig::default()
    }
}

fn blocks_to_show<'p>(
    program: &'p Program,
    opts: &Options,
) -> Vec<(usize, &'p [dagsched::isa::Instruction])> {
    let blocks = program.basic_blocks();
    if let Some(want) = opts.block {
        if want >= blocks.len() {
            die(&format!(
                "--block {want} out of range (program has {} blocks)",
                blocks.len()
            ));
        }
    }
    blocks
        .iter()
        .enumerate()
        .filter(|(i, _)| opts.block.is_none_or(|want| want == *i))
        .map(|(i, b)| (i, program.block_insns(b)))
        .collect()
}

fn report_stats(opts: &Options, stats: &PhaseStats) {
    if opts.stats {
        eprintln!("! stats: {stats}");
    }
}

fn cmd_dag(program: &Program, opts: &Options) {
    for (bi, insns) in blocks_to_show(program, opts) {
        let dag = build_dag(insns, &opts.model, opts.algo, opts.policy);
        println!(
            "block {bi}: {} instructions, {} arcs ({})",
            insns.len(),
            dag.arc_count(),
            opts.algo.name()
        );
        for arc in dag.arcs() {
            println!(
                "  [{:>2}] {:<26} -({} {})-> [{:>2}] {}",
                arc.from.index(),
                insns[arc.from.index()].to_string(),
                arc.kind,
                arc.latency,
                arc.to.index(),
                insns[arc.to.index()],
            );
        }
    }
}

fn cmd_dot(program: &Program, opts: &Options) {
    for (bi, insns) in blocks_to_show(program, opts) {
        let dag = build_dag(insns, &opts.model, opts.algo, opts.policy);
        println!("// block {bi}");
        print!("{}", to_dot(&dag, insns));
    }
}

fn cmd_heur(program: &Program, opts: &Options) {
    for (bi, insns) in blocks_to_show(program, opts) {
        let dag = build_dag(insns, &opts.model, opts.algo, opts.policy);
        let heur = HeuristicSet::compute(&dag, insns, &opts.model, false);
        println!("block {bi}:");
        print!("{}", dump_annotations(&dag, insns, &heur));
    }
}

fn cmd_schedule(program: &Program, opts: &Options) {
    let cfg = driver_config(opts);
    let (result, stats) = schedule_program_batch(
        program,
        &opts.model,
        &cfg,
        opts.jobs,
        &limits(opts),
        &NoCache,
    )
    .unwrap_or_else(|e| die(&e.to_string()));
    for insn in &result.insns {
        println!("    {insn}");
    }
    let (before, after) = result.speedup(program, &opts.model);
    eprintln!(
        "! {}: {} blocks, {} -> {} cycles ({:+.1}%)",
        opts.scheduler,
        result.blocks.len(),
        before,
        after,
        100.0 * (after as f64 - before as f64) / before as f64,
    );
    report_stats(opts, &stats);
}

fn cmd_sim(program: &Program, opts: &Options) {
    let r = simulate(&program.insns, &opts.model, SimOptions::default());
    if opts.timeline {
        print!("{}", render_timeline(&program.insns, &opts.model, &r, 72));
    }
    println!(
        "{} instructions: {} cycles, {} data stalls, {} structural stalls, IPC {:.3}",
        program.len(),
        r.cycles,
        r.data_stalls,
        r.struct_stalls,
        r.ipc()
    );
    let cfg = DriverConfig {
        fill_delay_slots: false,
        ..driver_config(opts)
    };
    let (result, stats) = schedule_program_batch(
        program,
        &opts.model,
        &cfg,
        opts.jobs,
        &limits(opts),
        &NoCache,
    )
    .unwrap_or_else(|e| die(&e.to_string()));
    let after = simulate(&result.insns, &opts.model, SimOptions::default());
    if opts.timeline {
        print!(
            "{}",
            render_timeline(&result.insns, &opts.model, &after, 72)
        );
    }
    println!(
        "after {}: {} cycles, {} data stalls, {} structural stalls, IPC {:.3}",
        opts.scheduler,
        after.cycles,
        after.data_stalls,
        after.struct_stalls,
        after.ipc()
    );
    report_stats(opts, &stats);
}

fn cmd_serve(opts: &Options) {
    let listen = match dagsched::service::parse_endpoint(&opts.endpoint) {
        Ok(l) => l,
        Err(e) => die(&format!("--listen: {e}")),
    };
    let defaults = ServerConfig::default();
    let config = ServerConfig {
        workers: opts.workers,
        queue: opts.queue,
        cache: CacheConfig {
            max_bytes: opts.cache_mb << 20,
            ..CacheConfig::default()
        },
        max_block: opts.max_block,
        default_deadline_ms: opts.timeout_ms,
        handle_sigterm: true,
        state_dir: opts.state_dir.as_ref().map(std::path::PathBuf::from),
        wal_snapshot_threshold: opts
            .wal_threshold_mb
            .map_or(defaults.wal_snapshot_threshold, |mb| mb << 20),
        fsync_every: opts.fsync_every.unwrap_or(defaults.fsync_every),
        first_frame_timeout_ms: opts
            .first_frame_timeout_ms
            .unwrap_or(defaults.first_frame_timeout_ms),
        ..defaults
    };
    let handle = serve(listen, config).unwrap_or_else(|e| die(&format!("serve: {e}")));
    eprintln!(
        "dagsched: serving on {} ({} workers, queue {}, cache {} MiB{})",
        handle.endpoint(),
        opts.workers,
        opts.queue,
        opts.cache_mb,
        match &opts.state_dir {
            Some(dir) => format!(", state {dir}"),
            None => String::new(),
        }
    );
    handle.join();
    eprintln!("dagsched: drained, exiting");
}

fn cmd_route(opts: &Options) {
    if opts.shards.is_empty() {
        die("route needs at least one --shard endpoint");
    }
    let listen = match dagsched::service::parse_endpoint(&opts.endpoint) {
        Ok(l) => l,
        Err(e) => die(&format!("--listen: {e}")),
    };
    let defaults = RouterConfig::default();
    let config = RouterConfig {
        shards: opts.shards.clone(),
        replicas: opts.replicas,
        handle_sigterm: true,
        fail_threshold: opts.fail_threshold.unwrap_or(defaults.fail_threshold),
        revive_threshold: opts.revive_threshold.unwrap_or(defaults.revive_threshold),
        hedge: !opts.no_hedge,
        hedge_quantile: opts.hedge_quantile.unwrap_or(defaults.hedge_quantile),
        hedge_min_ms: opts.hedge_min_ms.unwrap_or(defaults.hedge_min_ms),
        hedge_max_ms: opts.hedge_max_ms.unwrap_or(defaults.hedge_max_ms),
        ..defaults
    };
    let hedging = config.hedge;
    let handle = serve_router(listen, config).unwrap_or_else(|e| die(&format!("route: {e}")));
    eprintln!(
        "dagsched: routing on {} over {} shard(s), R={}, hedging {}",
        handle.endpoint(),
        opts.shards.len(),
        opts.replicas,
        if hedging { "on" } else { "off" }
    );
    for shard in &opts.shards {
        eprintln!("dagsched:   shard {shard}");
    }
    handle.join();
    eprintln!("dagsched: router drained, exiting");
}

fn cmd_netchaos(opts: &Options) {
    let upstream = opts
        .upstream
        .as_deref()
        .unwrap_or_else(|| die("netchaos needs an --upstream endpoint to relay to"));
    // Rate 0 is a transparent relay — handy for measuring the proxy's
    // own overhead before turning faults on.
    let config = if opts.fault_rate == 0 {
        ChaosConfig::quiet(opts.seed)
    } else {
        ChaosConfig::standard(opts.seed, opts.fault_rate)
    };
    let total = config.total_per_mille();
    let proxy = serve_proxy(&opts.endpoint, upstream, config)
        .unwrap_or_else(|e| die(&format!("netchaos: {e}")));
    eprintln!(
        "dagsched: netchaos proxy on {} -> {} (seed {:#x}, {}\u{2030} of connections faulted)",
        proxy.endpoint(),
        upstream,
        opts.seed,
        total
    );
    eprintln!("dagsched: faults are deterministic in (seed, connection, byte offset)");
    // The proxy serves until the process is killed; there is no drain
    // protocol for a fault injector — dropping connections *is* its job.
    loop {
        std::thread::park();
    }
}

fn cmd_cluster(opts: &Options) {
    let action = opts
        .file
        .as_deref()
        .unwrap_or_else(|| usage("cluster needs an action: status | add-shard | remove-shard"));
    let target = || -> String {
        match opts.shards.as_slice() {
            [one] => one.clone(),
            [] => usage(&format!("cluster {action} needs a --shard endpoint")),
            _ => usage(&format!("cluster {action} takes exactly one --shard")),
        }
    };
    let cmd = match action {
        "status" => AdminCommand::Status,
        "add-shard" => AdminCommand::AddShard { endpoint: target() },
        "remove-shard" => AdminCommand::RemoveShard { endpoint: target() },
        other => usage(&format!(
            "unknown cluster action `{other}` (status | add-shard | remove-shard)"
        )),
    };
    let mut client =
        Client::connect(&opts.endpoint).unwrap_or_else(|e| die(&format!("connect: {e}")));
    let reply = client
        .admin(&cmd)
        .unwrap_or_else(|e| die(&format!("cluster {action}: {e}")));
    println!("{reply}");
}

fn cmd_request(opts: &Options) {
    let mut req = match &opts.profile {
        Some(name) => ScheduleRequest::profile(name.clone(), opts.seed),
        None => {
            let text =
                read_input(&opts.file).unwrap_or_else(|e| die(&format!("reading input: {e}")));
            if text.trim().is_empty() {
                die("no instructions in input");
            }
            ScheduleRequest::asm(text)
        }
    };
    req.machine = opts.model_name.clone();
    req.scheduler = opts.scheduler_name.clone();
    req.algo = opts.algo_name.clone();
    req.policy = opts.policy_name.clone();
    req.inherit = opts.inherit;
    req.fill_slots = opts.fill_slots;
    req.jobs = opts.jobs;
    req.deadline_ms = opts.timeout_ms;
    req.sim = opts.sim;
    req.degrade = !opts.no_degrade;
    let mut client =
        Client::connect(&opts.endpoint).unwrap_or_else(|e| die(&format!("connect: {e}")));
    let resp = match opts.retries {
        // A retry budget: transient failures (busy, draining, caught
        // panics, dropped connections) are retried with jittered
        // backoff; typed permanent errors still fail fast.
        Some(budget) => {
            let policy = dagsched::service::RetryPolicy {
                max_retries: budget,
                ..dagsched::service::RetryPolicy::default()
            };
            let (resp, stats) = client
                .request_with_retry(&req, &policy)
                .unwrap_or_else(|e| die(&format!("request: {e}")));
            if opts.stats && stats.retries > 0 {
                eprintln!(
                    "! retried {} time(s) ({} redials, {:.0} ms backing off)",
                    stats.retries,
                    stats.redials,
                    stats.backoff_total.as_secs_f64() * 1e3
                );
            }
            resp
        }
        None => client
            .request(&req)
            .unwrap_or_else(|e| die(&format!("request: {e}"))),
    };
    for insn in &resp.insns {
        println!("    {insn}");
    }
    if resp.degraded {
        eprintln!(
            "! degraded: {} block(s) compiled on a cheaper rung to meet the deadline",
            resp.stats.degraded_blocks
        );
    }
    let (before, after): (u64, u64) = resp.blocks.iter().fold((0, 0), |(b, a), s| {
        (b + s.original_makespan, a + s.scheduled_makespan)
    });
    eprintln!(
        "! {}: {} blocks, {} -> {} cycles",
        req.scheduler,
        resp.blocks.len(),
        before,
        after
    );
    if let Some((sim_before, sim_after)) = resp.cycles {
        eprintln!("! sim: {sim_before} -> {sim_after} cycles");
    }
    report_stats(opts, &resp.stats);
    if opts.stats {
        eprintln!(
            "! cache: {} hits, {} misses",
            resp.stats.cache_hits, resp.stats.cache_misses
        );
    }
}

fn cmd_fuzz(opts: &Options) {
    let cfg = FuzzConfig {
        seed: opts.seed,
        minutes: opts.minutes,
        iters: opts.iters,
        corpus_dir: opts.corpus.as_ref().map(std::path::PathBuf::from),
        shrink: !opts.no_shrink,
        matrix: MatrixConfig {
            model: opts.model.clone(),
            ..MatrixConfig::default()
        },
        progress_every: 25,
    };
    eprintln!(
        "dagsched: fuzzing with seed {:#x} ({})",
        cfg.seed,
        match (cfg.minutes > 0.0, cfg.iters) {
            (true, Some(n)) => format!("{} min budget, at most {n} programs", cfg.minutes),
            (true, None) => format!("{} min budget", cfg.minutes),
            (false, Some(n)) => format!("{n} programs"),
            (false, None) => "unbounded — interrupt to stop".to_string(),
        }
    );
    let outcome = run_fuzz(&cfg);
    eprintln!(
        "dagsched: fuzz done: {} programs, {} blocks ({} insns), {} proven optima, {:.1}s",
        outcome.iterations,
        outcome.summary.blocks,
        outcome.summary.insns,
        outcome.summary.optimal_proven,
        outcome.elapsed.as_secs_f64()
    );
    if !outcome.summary.opt_gaps.is_empty() {
        let gaps: Vec<String> = outcome
            .summary
            .opt_gaps
            .iter()
            .map(|(n, g)| format!("{n}: {g}"))
            .collect();
        eprintln!("dagsched: max cycles over optimum: {}", gaps.join(", "));
    }
    if outcome.is_clean() {
        eprintln!("dagsched: zero disagreements across the cross-check matrix");
        return;
    }
    for f in &outcome.failures {
        eprintln!(
            "\ndagsched: DISAGREEMENT [{}] {}",
            f.disagreement.kind, f.disagreement.pair
        );
        eprintln!("  detail: {}", f.disagreement.detail);
        eprintln!("  found by: {}", f.provenance);
        if let Some(p) = &f.path {
            eprintln!("  reproducer: {}", p.display());
        }
        eprintln!("  shrunk block:");
        for line in f.text.lines() {
            eprintln!("  | {line}");
        }
    }
    std::process::exit(1);
}

fn cmd_diff(opts: &Options) {
    let matrix = MatrixConfig {
        model: opts.model.clone(),
        ..MatrixConfig::default()
    };
    if let Some(dir) = &opts.corpus {
        let failures = replay_dir(std::path::Path::new(dir), &matrix)
            .unwrap_or_else(|e| die(&format!("replaying {dir}: {e}")));
        if failures.is_empty() {
            eprintln!("dagsched: corpus {dir} replays clean");
            return;
        }
        for f in &failures {
            eprintln!(
                "\ndagsched: DISAGREEMENT [{}] {} in {}",
                f.disagreement.kind,
                f.disagreement.pair,
                f.path.display()
            );
            eprintln!("  detail: {}", f.disagreement.detail);
            for line in f.text.lines() {
                eprintln!("  | {line}");
            }
        }
        std::process::exit(1);
    }
    let text = read_input(&opts.file).unwrap_or_else(|e| die(&format!("reading input: {e}")));
    match check_text(&text, &matrix) {
        Ok(summary) => eprintln!(
            "dagsched: matrix clean: {} blocks, {} insns, {} proven optima",
            summary.blocks, summary.insns, summary.optimal_proven
        ),
        Err(d) => {
            eprintln!("dagsched: DISAGREEMENT [{}] {}", d.kind, d.pair);
            eprintln!("  detail: {}", d.detail);
            std::process::exit(1);
        }
    }
}

fn cmd_fsck(opts: &Options) {
    let dir = opts
        .file
        .as_ref()
        .unwrap_or_else(|| usage("fsck needs a store directory"));
    let dir = std::path::Path::new(dir);
    let fingerprint = dagsched::service::store_fingerprint();
    let report = if opts.repair {
        dagsched::store::fsck::repair(dir, fingerprint)
            .unwrap_or_else(|e| die(&format!("fsck --repair {}: {e}", dir.display())))
    } else {
        dagsched::store::fsck::check(dir, Some(fingerprint))
            .unwrap_or_else(|e| die(&format!("fsck {}: {e}", dir.display())))
    };
    println!(
        "{}: {} live record(s) ({} from the newest snapshot, {} from the WAL tail)",
        dir.display(),
        report.live_records,
        report.snapshot_records,
        report.wal_records,
    );
    for issue in &report.issues {
        println!("  issue: {issue}");
    }
    if report.clean() {
        println!("{}: clean", dir.display());
        return;
    }
    if opts.repair {
        // repair() re-checks after mutating; surviving issues mean the
        // store is beyond what recovery-equivalent repair can fix.
        die(&format!(
            "{}: {} issue(s) remain after repair",
            dir.display(),
            report.issues.len()
        ));
    }
    die(&format!(
        "{}: {} issue(s); run `dagsched fsck {} --repair` to fix",
        dir.display(),
        report.issues.len(),
        dir.display()
    ));
}

/// Parse a `u64` accepting both decimal and `0x` hexadecimal.
fn parse_u64(v: &str) -> Option<u64> {
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or("missing command")?;
    if command == "--help" || command == "-h" {
        usage("");
    }
    let mut opts = Options {
        command,
        file: None,
        algo: ConstructionAlgorithm::TableBackward,
        policy: MemDepPolicy::SymbolicExpr,
        scheduler: SchedulerKind::Warren,
        model: MachineModel::sparc2(),
        algo_name: String::new(),
        policy_name: String::new(),
        scheduler_name: "warren".to_string(),
        model_name: "sparc2".to_string(),
        block: None,
        inherit: false,
        fill_slots: false,
        timeline: false,
        jobs: 1,
        stats: false,
        timeout_ms: None,
        max_block: None,
        endpoint: "tcp:127.0.0.1:4591".to_string(),
        workers: 4,
        queue: 64,
        first_frame_timeout_ms: None,
        cache_mb: 64,
        profile: None,
        seed: dagsched::workloads::PAPER_SEED,
        sim: false,
        retries: None,
        no_degrade: false,
        state_dir: None,
        wal_threshold_mb: None,
        fsync_every: None,
        repair: false,
        shards: Vec::new(),
        replicas: 2,
        fail_threshold: None,
        revive_threshold: None,
        no_hedge: false,
        hedge_quantile: None,
        hedge_min_ms: None,
        hedge_max_ms: None,
        upstream: None,
        fault_rate: 100,
        minutes: 2.0,
        iters: None,
        corpus: None,
        no_shrink: false,
    };
    if opts.command == "fuzz" {
        opts.seed = 0xDA65_C4ED;
    }
    while let Some(a) = args.next() {
        match a.as_str() {
            "--algo" => {
                let v = args.next().ok_or("--algo needs a value")?;
                opts.algo = parse_algo(&v)?;
                opts.algo_name = v;
            }
            "--policy" => {
                let v = args.next().ok_or("--policy needs a value")?;
                opts.policy = parse_policy(&v)?;
                opts.policy_name = v;
            }
            "--scheduler" => {
                let v = args.next().ok_or("--scheduler needs a value")?;
                opts.scheduler = parse_scheduler_kind(&v)?;
                opts.scheduler_name = v;
            }
            "--model" => {
                let v = args.next().ok_or("--model needs a value")?;
                opts.model = parse_model(&v)?;
                opts.model_name = v;
            }
            "--block" => {
                opts.block = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--block needs an index")?,
                );
            }
            "--jobs" => {
                opts.jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--jobs needs a thread count (0 = all cores)")?;
            }
            "--timeout-ms" => {
                opts.timeout_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--timeout-ms needs a millisecond count")?,
                );
            }
            "--max-block" => {
                opts.max_block = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--max-block needs an instruction count")?,
                );
            }
            "--listen" | "--connect" => {
                opts.endpoint = args.next().ok_or("--listen/--connect need an endpoint")?;
            }
            "--workers" => {
                opts.workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or("--workers needs a positive thread count")?;
            }
            "--queue" => {
                opts.queue = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or("--queue needs a positive depth")?;
            }
            "--cache-mb" => {
                opts.cache_mb = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--cache-mb needs a byte budget in MiB")?;
            }
            "--first-frame-timeout-ms" => {
                opts.first_frame_timeout_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &u64| n > 0)
                        .ok_or("--first-frame-timeout-ms needs a positive millisecond count")?,
                );
            }
            "--profile" => {
                opts.profile = Some(args.next().ok_or("--profile needs a workload name")?);
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|v| parse_u64(&v))
                    .ok_or("--seed needs an integer (decimal or 0x hex)")?;
            }
            "--minutes" => {
                opts.minutes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&m: &f64| m >= 0.0)
                    .ok_or("--minutes needs a non-negative number")?;
            }
            "--iters" => {
                opts.iters = Some(
                    args.next()
                        .and_then(|v| parse_u64(&v))
                        .ok_or("--iters needs a count")?,
                );
            }
            "--corpus" => {
                opts.corpus = Some(args.next().ok_or("--corpus needs a directory")?);
            }
            "--retries" => {
                opts.retries = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--retries needs a count")?,
                );
            }
            "--state-dir" => {
                opts.state_dir = Some(args.next().ok_or("--state-dir needs a directory")?);
            }
            "--wal-threshold-mb" => {
                opts.wal_threshold_mb = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &u64| n > 0)
                        .ok_or("--wal-threshold-mb needs a positive MiB count")?,
                );
            }
            "--fsync-every" => {
                opts.fsync_every = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--fsync-every needs an append count (0 = only at snapshots)")?,
                );
            }
            "--shard" => {
                opts.shards
                    .push(args.next().ok_or("--shard needs an endpoint")?);
            }
            "--replicas" => {
                opts.replicas = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or("--replicas needs a positive count")?;
            }
            "--fail-threshold" => {
                opts.fail_threshold = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &u32| n > 0)
                        .ok_or("--fail-threshold needs a positive failure count")?,
                );
            }
            "--revive-threshold" => {
                opts.revive_threshold = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &u32| n > 0)
                        .ok_or("--revive-threshold needs a positive success count")?,
                );
            }
            "--no-hedge" => opts.no_hedge = true,
            "--hedge-quantile" => {
                opts.hedge_quantile = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&q: &f64| q > 0.0 && q < 1.0)
                        .ok_or("--hedge-quantile needs a fraction in (0, 1)")?,
                );
            }
            "--hedge-min-ms" => {
                opts.hedge_min_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--hedge-min-ms needs a millisecond count")?,
                );
            }
            "--hedge-max-ms" => {
                opts.hedge_max_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &u64| n > 0)
                        .ok_or("--hedge-max-ms needs a positive millisecond count")?,
                );
            }
            "--upstream" => {
                opts.upstream = Some(args.next().ok_or("--upstream needs an endpoint")?);
            }
            "--fault-rate" => {
                opts.fault_rate = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &u16| n <= 1000)
                    .ok_or("--fault-rate needs a per-mille rate (0..=1000)")?;
            }
            "--repair" => opts.repair = true,
            "--no-degrade" => opts.no_degrade = true,
            "--no-shrink" => opts.no_shrink = true,
            "--sim" => opts.sim = true,
            "--stats" => opts.stats = true,
            "--inherit" => opts.inherit = true,
            "--timeline" => opts.timeline = true,
            "--fill-slots" => opts.fill_slots = true,
            "-" => opts.file = None,
            f if !f.starts_with('-') && opts.file.is_none() => opts.file = Some(f.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok(opts)
}

fn read_input(file: &Option<String>) -> std::io::Result<String> {
    match file {
        Some(path) => std::fs::read_to_string(path),
        None => {
            let mut s = String::new();
            std::io::stdin().read_to_string(&mut s)?;
            Ok(s)
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("dagsched: {msg}");
    std::process::exit(1);
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("dagsched: {err}\n");
    }
    eprintln!(
        "usage: dagsched <dag|dot|heur|schedule|sim|serve|route|netchaos|cluster|request|fuzz|diff|fsck> [file|-]\n\
         \n\
         options:\n\
         \x20 --algo       n2 | n2-backward | landskov | table-forward | table-backward | bitmap\n\
         \x20 --policy     single | base-offset | storage-class | symbolic\n\
         \x20 --scheduler  gm | krishnamurthy | schlansker | shieh | tiemann | warren\n\
         \x20 --model      sparc2 | rs6000 | deep-fpu\n\
         \x20 --block N    restrict to one basic block\n\
         \x20 --jobs N     compile blocks on N threads (0 = all cores; default 1)\n\
         \x20 --timeout-ms N  abandon scheduling after N milliseconds\n\
         \x20 --max-block N   reject blocks larger than N instructions\n\
         \x20 --stats      print per-phase counters after scheduling\n\
         \x20 --inherit    carry latencies across blocks\n\
         \x20 --timeline   draw the pipeline timeline under `sim`\n\
         \x20 --fill-slots fill branch delay slots\n\
         \n\
         serve options:\n\
         \x20 --listen EP  tcp:HOST:PORT or unix:/path (default tcp:127.0.0.1:4591)\n\
         \x20 --workers N  worker threads (default 4)\n\
         \x20 --queue N    stage-queue depth before `busy` (default 64)\n\
         \x20 --cache-mb N schedule-cache byte budget in MiB (default 64)\n\
         \x20 --first-frame-timeout-ms N  typed idle-timeout close for connections\n\
         \x20                    that never complete a frame (default 2000)\n\
         \x20 --state-dir DIR    persist the cache + quarantine (snapshot + WAL) in DIR\n\
         \x20 --wal-threshold-mb N  snapshot once the WAL exceeds N MiB (default 4)\n\
         \x20 --fsync-every N    fsync the WAL every N cache entries (default 8)\n\
         \n\
         route options (a cluster front-end speaking the same protocol):\n\
         \x20 --listen EP  endpoint to listen on (default tcp:127.0.0.1:4591)\n\
         \x20 --shard EP   shard daemon endpoint; repeat for every shard\n\
         \x20 --replicas N replica-set size per key (default 2)\n\
         \x20 --fail-threshold N    consecutive failures before a shard's breaker opens (default 3)\n\
         \x20 --revive-threshold N  consecutive half-open probe successes before it closes (default 3)\n\
         \x20 --no-hedge   never race a stuck primary against the next replica\n\
         \x20 --hedge-quantile Q    launch the hedge past this forward-latency quantile (default 0.95)\n\
         \x20 --hedge-min-ms N / --hedge-max-ms N  clamps on the hedge delay (default 10 / 400)\n\
         \n\
         netchaos options (a fault-injecting wire proxy for drills):\n\
         \x20 --listen EP    endpoint to listen on\n\
         \x20 --upstream EP  endpoint to relay to (required)\n\
         \x20 --seed N       fault-plan seed; same seed, same faults (decimal or 0x hex)\n\
         \x20 --fault-rate N per-mille of connections drawing a fault (default 100; 0 = clean relay)\n\
         \n\
         cluster options (dagsched cluster <status|add-shard|remove-shard>):\n\
         \x20 --connect EP router endpoint\n\
         \x20 --shard EP   the shard to add or remove (warm-spare join ships a snapshot)\n\
         \n\
         fsck options (dagsched fsck DIR):\n\
         \x20 --repair     truncate torn WAL tails and delete corrupt snapshots\n\
         \n\
         request options:\n\
         \x20 --connect EP server endpoint (default tcp:127.0.0.1:4591)\n\
         \x20 --profile P  schedule a generated workload instead of a file\n\
         \x20 --seed N     workload generator seed\n\
         \x20 --sim        ask the server for before/after cycle counts\n\
         \x20 --retries N  retry transient failures up to N times with jittered backoff\n\
         \x20 --no-degrade fail on deadline pressure instead of degrading heuristics\n\
         \n\
         fuzz / diff options:\n\
         \x20 --seed N     master fuzz seed, decimal or 0x hex (default 0xDA65C4ED)\n\
         \x20 --minutes F  wall-clock fuzz budget (default 2; 0 = no time budget)\n\
         \x20 --iters N    stop after N generated programs\n\
         \x20 --corpus DIR write shrunk reproducers to DIR (fuzz) / replay DIR (diff)\n\
         \x20 --no-shrink  report raw failing programs without minimizing"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
