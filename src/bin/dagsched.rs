//! `dagsched` — command-line front end for the library.
//!
//! ```text
//! dagsched dag      block.s            # dependence arcs per basic block
//! dagsched dot      block.s --block 0  # Graphviz DOT of one block's DAG
//! dagsched heur     block.s            # heuristic annotation tables
//! dagsched schedule block.s --scheduler warren --fill-slots
//! dagsched sim      block.s            # pipeline cycles before/after
//! ```
//!
//! Input is SPARC-flavoured assembly (or the paper's Figure 1 `DIVF
//! R1,R2,R3` notation); `-` or no file reads stdin.

use std::io::Read;

use dagsched::core::{
    build_dag, dump_annotations, to_dot, ConstructionAlgorithm, HeuristicSet, MemDepPolicy,
    PhaseStats,
};
use dagsched::driver::DriverConfig;
use dagsched::isa::{MachineModel, Program};
use dagsched::parallel::schedule_program_jobs;
use dagsched::pipesim::{render_timeline, simulate, SimOptions};
use dagsched::sched::{Scheduler, SchedulerKind};
use dagsched::workloads::parse_asm;

struct Options {
    command: String,
    file: Option<String>,
    algo: ConstructionAlgorithm,
    policy: MemDepPolicy,
    scheduler: SchedulerKind,
    model: MachineModel,
    block: Option<usize>,
    inherit: bool,
    fill_slots: bool,
    timeline: bool,
    /// Worker threads for block compilation (0 = machine parallelism).
    jobs: usize,
    /// Print the per-phase counters after scheduling.
    stats: bool,
}

fn main() {
    let opts = parse_args().unwrap_or_else(|e| usage(&e));
    let text = read_input(&opts.file).unwrap_or_else(|e| die(&format!("reading input: {e}")));
    let program = parse_asm(&text).unwrap_or_else(|e| die(&format!("parse error: {e}")));
    if program.is_empty() {
        die("no instructions in input");
    }
    match opts.command.as_str() {
        "dag" => cmd_dag(&program, &opts),
        "dot" => cmd_dot(&program, &opts),
        "heur" => cmd_heur(&program, &opts),
        "schedule" => cmd_schedule(&program, &opts),
        "sim" => cmd_sim(&program, &opts),
        other => usage(&format!("unknown command `{other}`")),
    }
}

fn blocks_to_show<'p>(
    program: &'p Program,
    opts: &Options,
) -> Vec<(usize, &'p [dagsched::isa::Instruction])> {
    let blocks = program.basic_blocks();
    if let Some(want) = opts.block {
        if want >= blocks.len() {
            die(&format!(
                "--block {want} out of range (program has {} blocks)",
                blocks.len()
            ));
        }
    }
    blocks
        .iter()
        .enumerate()
        .filter(|(i, _)| opts.block.is_none_or(|want| want == *i))
        .map(|(i, b)| (i, program.block_insns(b)))
        .collect()
}

fn report_stats(opts: &Options, stats: &PhaseStats) {
    if opts.stats {
        eprintln!("! stats: {stats}");
    }
}

fn cmd_dag(program: &Program, opts: &Options) {
    for (bi, insns) in blocks_to_show(program, opts) {
        let dag = build_dag(insns, &opts.model, opts.algo, opts.policy);
        println!(
            "block {bi}: {} instructions, {} arcs ({})",
            insns.len(),
            dag.arc_count(),
            opts.algo.name()
        );
        for arc in dag.arcs() {
            println!(
                "  [{:>2}] {:<26} -({} {})-> [{:>2}] {}",
                arc.from.index(),
                insns[arc.from.index()].to_string(),
                arc.kind,
                arc.latency,
                arc.to.index(),
                insns[arc.to.index()],
            );
        }
    }
}

fn cmd_dot(program: &Program, opts: &Options) {
    for (bi, insns) in blocks_to_show(program, opts) {
        let dag = build_dag(insns, &opts.model, opts.algo, opts.policy);
        println!("// block {bi}");
        print!("{}", to_dot(&dag, insns));
    }
}

fn cmd_heur(program: &Program, opts: &Options) {
    for (bi, insns) in blocks_to_show(program, opts) {
        let dag = build_dag(insns, &opts.model, opts.algo, opts.policy);
        let heur = HeuristicSet::compute(&dag, insns, &opts.model, false);
        println!("block {bi}:");
        print!("{}", dump_annotations(&dag, insns, &heur));
    }
}

fn cmd_schedule(program: &Program, opts: &Options) {
    let cfg = DriverConfig {
        scheduler: Scheduler::new(opts.scheduler)
            .with_construction(opts.algo)
            .with_policy(opts.policy),
        inherit_latencies: opts.inherit,
        fill_delay_slots: opts.fill_slots,
    };
    let (result, stats) = schedule_program_jobs(program, &opts.model, &cfg, opts.jobs);
    for insn in &result.insns {
        println!("    {insn}");
    }
    let (before, after) = result.speedup(program, &opts.model);
    eprintln!(
        "! {}: {} blocks, {} -> {} cycles ({:+.1}%)",
        opts.scheduler,
        result.blocks.len(),
        before,
        after,
        100.0 * (after as f64 - before as f64) / before as f64,
    );
    report_stats(opts, &stats);
}

fn cmd_sim(program: &Program, opts: &Options) {
    let r = simulate(&program.insns, &opts.model, SimOptions::default());
    if opts.timeline {
        print!("{}", render_timeline(&program.insns, &opts.model, &r, 72));
    }
    println!(
        "{} instructions: {} cycles, {} data stalls, {} structural stalls, IPC {:.3}",
        program.len(),
        r.cycles,
        r.data_stalls,
        r.struct_stalls,
        r.ipc()
    );
    let cfg = DriverConfig {
        scheduler: Scheduler::new(opts.scheduler)
            .with_construction(opts.algo)
            .with_policy(opts.policy),
        inherit_latencies: opts.inherit,
        fill_delay_slots: false,
    };
    let (result, stats) = schedule_program_jobs(program, &opts.model, &cfg, opts.jobs);
    let after = simulate(&result.insns, &opts.model, SimOptions::default());
    if opts.timeline {
        print!(
            "{}",
            render_timeline(&result.insns, &opts.model, &after, 72)
        );
    }
    println!(
        "after {}: {} cycles, {} data stalls, {} structural stalls, IPC {:.3}",
        opts.scheduler,
        after.cycles,
        after.data_stalls,
        after.struct_stalls,
        after.ipc()
    );
    report_stats(opts, &stats);
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or("missing command")?;
    if command == "--help" || command == "-h" {
        usage("");
    }
    let mut opts = Options {
        command,
        file: None,
        algo: ConstructionAlgorithm::TableBackward,
        policy: MemDepPolicy::SymbolicExpr,
        scheduler: SchedulerKind::Warren,
        model: MachineModel::sparc2(),
        block: None,
        inherit: false,
        fill_slots: false,
        timeline: false,
        jobs: 1,
        stats: false,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--algo" => {
                let v = args.next().ok_or("--algo needs a value")?;
                opts.algo = match v.as_str() {
                    "n2" | "n2-forward" => ConstructionAlgorithm::N2Forward,
                    "n2-backward" => ConstructionAlgorithm::N2Backward,
                    "landskov" => ConstructionAlgorithm::N2ForwardLandskov,
                    "table-forward" => ConstructionAlgorithm::TableForward,
                    "table-backward" => ConstructionAlgorithm::TableBackward,
                    "bitmap" => ConstructionAlgorithm::TableBackwardBitmap,
                    _ => return Err(format!("unknown algo `{v}`")),
                };
            }
            "--policy" => {
                let v = args.next().ok_or("--policy needs a value")?;
                opts.policy = match v.as_str() {
                    "single" => MemDepPolicy::SingleResource,
                    "base-offset" => MemDepPolicy::BaseOffset,
                    "storage-class" => MemDepPolicy::StorageClass,
                    "symbolic" => MemDepPolicy::SymbolicExpr,
                    _ => return Err(format!("unknown policy `{v}`")),
                };
            }
            "--scheduler" => {
                let v = args.next().ok_or("--scheduler needs a value")?;
                opts.scheduler = match v.as_str() {
                    "gibbons-muchnick" | "gm" => SchedulerKind::GibbonsMuchnick,
                    "krishnamurthy" => SchedulerKind::Krishnamurthy,
                    "schlansker" => SchedulerKind::Schlansker,
                    "shieh-papachristou" | "shieh" => SchedulerKind::ShiehPapachristou,
                    "tiemann" | "gcc" => SchedulerKind::Tiemann,
                    "warren" => SchedulerKind::Warren,
                    _ => return Err(format!("unknown scheduler `{v}`")),
                };
            }
            "--model" => {
                let v = args.next().ok_or("--model needs a value")?;
                opts.model = match v.as_str() {
                    "sparc2" => MachineModel::sparc2(),
                    "rs6000" => MachineModel::rs6000_like(),
                    "deep-fpu" => MachineModel::deep_fpu(),
                    _ => return Err(format!("unknown model `{v}`")),
                };
            }
            "--block" => {
                opts.block = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--block needs an index")?,
                );
            }
            "--jobs" => {
                opts.jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--jobs needs a thread count (0 = all cores)")?;
            }
            "--stats" => opts.stats = true,
            "--inherit" => opts.inherit = true,
            "--timeline" => opts.timeline = true,
            "--fill-slots" => opts.fill_slots = true,
            "-" => opts.file = None,
            f if !f.starts_with('-') && opts.file.is_none() => opts.file = Some(f.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok(opts)
}

fn read_input(file: &Option<String>) -> std::io::Result<String> {
    match file {
        Some(path) => std::fs::read_to_string(path),
        None => {
            let mut s = String::new();
            std::io::stdin().read_to_string(&mut s)?;
            Ok(s)
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("dagsched: {msg}");
    std::process::exit(1);
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("dagsched: {err}\n");
    }
    eprintln!(
        "usage: dagsched <dag|dot|heur|schedule|sim> [file|-]\n\
         \n\
         options:\n\
         \x20 --algo       n2 | n2-backward | landskov | table-forward | table-backward | bitmap\n\
         \x20 --policy     single | base-offset | storage-class | symbolic\n\
         \x20 --scheduler  gm | krishnamurthy | schlansker | shieh | tiemann | warren\n\
         \x20 --model      sparc2 | rs6000 | deep-fpu\n\
         \x20 --block N    restrict to one basic block\n\
         \x20 --jobs N     compile blocks on N threads (0 = all cores; default 1)\n\
         \x20 --stats      print per-phase counters after scheduling\n\
         \x20 --inherit    carry latencies across blocks\n\
         \x20 --timeline   draw the pipeline timeline under `sim`\n\
         \x20 --fill-slots fill branch delay slots"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
