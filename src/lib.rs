//! # dagsched
//!
//! A reproduction of Smotherman, Krishnamurthy, Aravind and Hunnicutt,
//! *"Efficient DAG Construction and Heuristic Calculation for Instruction
//! Scheduling"* (MICRO-24, 1991), as a reusable Rust library for
//! basic-block instruction scheduling research.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`isa`] — SPARC-like instruction set and machine timing model.
//! * [`core`] — dependence-DAG construction (compare-against-all and
//!   table-building, forward and backward, with transitive-arc-avoidance
//!   variants) and the paper's 26 scheduling heuristics.
//! * [`sched`] — a list-scheduling framework and the six published
//!   scheduling algorithms the paper analyzes.
//! * [`pipesim`] — an in-order pipeline simulator for measuring schedule
//!   quality (stall cycles).
//! * [`workloads`] — synthetic benchmark generation calibrated to the
//!   paper's Table 3, plus a small assembly parser.
//! * [`stats`] — structural statistics and table rendering used by the
//!   experiment harness.
//! * [`driver`] / [`parallel`] / [`batch`] — the whole-program scheduling
//!   driver (serial, sharded across threads, and the limit-enforcing,
//!   cache-aware batch loop behind the service daemon).
//! * [`service`] — the `dagsched-service` daemon: a length-prefixed wire
//!   protocol over TCP / Unix sockets, a fixed worker pool, and a
//!   content-addressed schedule cache (`dagsched serve` /
//!   `dagsched request`).
//! * [`store`] — crash-safe persistence: a checksummed append-only WAL
//!   compacted into atomic snapshot files, with torn-write truncation,
//!   idempotent replay, and an offline `fsck` (`dagsched fsck`).
//! * [`verify`] — the differential correctness harness: structure-diverse
//!   block fuzzing, an N-way cross-check matrix against the simulator
//!   oracle, ddmin shrinking, and the committed reproducer corpus
//!   (`dagsched fuzz` / `dagsched diff`).
//!
//! # Quickstart
//!
//! ```
//! use dagsched::prelude::*;
//!
//! // The paper's Figure 1 block: a 20-cycle divide, then two adds.
//! let mut prog = Program::new();
//! prog.push(Instruction::fp3(Opcode::FDivD, Reg::f(0), Reg::f(2), Reg::f(4)));
//! prog.push(Instruction::fp3(Opcode::FAddD, Reg::f(6), Reg::f(8), Reg::f(0)));
//! prog.push(Instruction::fp3(Opcode::FAddD, Reg::f(0), Reg::f(4), Reg::f(10)));
//!
//! let model = MachineModel::sparc2();
//! let dag = build_dag(
//!     &prog.insns,
//!     &model,
//!     ConstructionAlgorithm::TableBackward,
//!     MemDepPolicy::SymbolicExpr,
//! );
//! assert_eq!(dag.node_count(), 3);
//! // The table-building methods retain the "important" transitive RAW arc.
//! assert!(dag.arc_between(NodeId::new(0), NodeId::new(2)).is_some());
//! ```

pub use dagsched_driver::{batch, driver, parallel};

pub use dagsched_core as core;
pub use dagsched_isa as isa;
pub use dagsched_netchaos as netchaos;
pub use dagsched_pipesim as pipesim;
pub use dagsched_proto as proto;
pub use dagsched_router as router;
pub use dagsched_sched as sched;
pub use dagsched_service as service;
pub use dagsched_stats as stats;
pub use dagsched_store as store;
pub use dagsched_verify as verify;
pub use dagsched_workloads as workloads;

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use dagsched_core::{
        build_dag, ConstructError, ConstructionAlgorithm, Dag, DagArc, HeuristicSet, MemDepPolicy,
        NodeId,
    };
    pub use dagsched_isa::{
        BasicBlock, DepKind, FuncUnit, Instruction, MachineModel, MemRef, Opcode, Program, Reg,
        Resource,
    };
    pub use dagsched_pipesim::{simulate, SimReport};
    pub use dagsched_sched::{Schedule, Scheduler, SchedulerKind};
    pub use dagsched_workloads::{generate, BenchmarkProfile};

    pub use dagsched_core::{default_jobs, PhaseStats, Scratch};

    pub use crate::batch::{schedule_program_batch, BlockCache, LimitError, Limits, NoCache};
    pub use crate::driver::{
        schedule_program, schedule_program_stats, BlockReport, DriverConfig, ScheduledProgram,
    };
    pub use crate::parallel::schedule_program_jobs;
}
