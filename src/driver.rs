//! Whole-program scheduling driver: the paper's per-block machinery
//! composed into the pass a compiler backend would actually run.

use dagsched_core::{HeuristicSet, PreparedBlock};
use dagsched_isa::{Instruction, MachineModel, Program};
use dagsched_pipesim::{simulate, SimOptions};
use dagsched_sched::{
    carry_out, entry_constraints, fill_branch_delay_slot, CarryOut, SchedDirection, Scheduler,
    SchedulerKind, SlotFill,
};

/// Driver options.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Which published algorithm schedules each block.
    pub scheduler: Scheduler,
    /// Carry operation latencies across block boundaries (the paper's §2
    /// "global information"; forward schedulers only).
    pub inherit_latencies: bool,
    /// Move an instruction into each delayed branch's delay slot (else
    /// the slot instruction stays wherever the partitioner found it).
    pub fill_delay_slots: bool,
}

impl Default for DriverConfig {
    fn default() -> DriverConfig {
        DriverConfig {
            scheduler: Scheduler::new(SchedulerKind::Warren),
            inherit_latencies: false,
            fill_delay_slots: false,
        }
    }
}

/// Per-block outcome.
#[derive(Debug, Clone)]
pub struct BlockReport {
    /// Block index.
    pub block: usize,
    /// Instructions in the block.
    pub len: usize,
    /// Makespan of the original order (cycles, in-order model).
    pub original_makespan: u64,
    /// Makespan of the scheduled order.
    pub scheduled_makespan: u64,
    /// Delay-slot action taken, when enabled.
    pub slot: Option<SlotFill>,
}

/// A scheduled program: the emitted stream plus per-block reports.
#[derive(Debug, Clone)]
pub struct ScheduledProgram {
    /// The emitted instruction stream.
    pub insns: Vec<Instruction>,
    /// One report per scheduled block.
    pub blocks: Vec<BlockReport>,
}

impl ScheduledProgram {
    /// Simulate the emitted stream against the original program on an
    /// in-order machine, returning `(original cycles, scheduled cycles)`.
    pub fn speedup(&self, original: &Program, model: &MachineModel) -> (u64, u64) {
        let before = simulate(&original.insns, model, SimOptions::default());
        let after = simulate(&self.insns, model, SimOptions::default());
        (before.cycles, after.cycles)
    }
}

/// Schedule every basic block of `program` under `config`.
///
/// Blocks are partitioned with the paper's conventions, scheduled
/// independently (or with inherited latencies), and re-emitted in their
/// original block order.
pub fn schedule_program(
    program: &Program,
    model: &MachineModel,
    config: &DriverConfig,
) -> ScheduledProgram {
    let blocks = program.basic_blocks();
    let mut out: Vec<Instruction> = Vec::with_capacity(program.len());
    let mut reports = Vec::with_capacity(blocks.len());
    let mut carry = CarryOut::default();
    for (bi, block) in blocks.iter().enumerate() {
        let insns = program.block_insns(block);
        if insns.is_empty() {
            continue;
        }
        let prepared = PreparedBlock::new(insns);
        let dag = config
            .scheduler
            .construction
            .run(&prepared, model, config.scheduler.policy);
        let heur = HeuristicSet::compute(&dag, insns, model, false);
        let schedule = if config.inherit_latencies
            && config.scheduler.list.direction == SchedDirection::Forward
        {
            let entry = entry_constraints(insns, model, &carry);
            let s = config
                .scheduler
                .list
                .run_with_entry(&dag, insns, model, &heur, &entry);
            // Inheritance must not silently drop the algorithm's postpass
            // (Krishnamurthy's delay-slot fixup).
            if config.scheduler.postpass_fixup {
                dagsched_sched::fixup_delay_slots(&s, &dag, insns, model).0
            } else {
                s
            }
        } else {
            config.scheduler.schedule_dag(&dag, insns, model, &heur)
        };
        debug_assert!(schedule.verify(&dag).is_ok());
        carry = carry_out(&schedule, insns, model);

        let original = dagsched_sched::Schedule::from_order(
            (0..insns.len()).map(dagsched_core::NodeId::new).collect(),
            &dag,
            insns,
            model,
        );
        let mut slot = None;
        if config.fill_delay_slots {
            let (stream, fill) = fill_branch_delay_slot(&schedule, &dag, insns);
            slot = Some(fill);
            out.extend(stream);
        } else {
            out.extend(schedule.order.iter().map(|n| insns[n.index()].clone()));
        }
        reports.push(BlockReport {
            block: bi,
            len: insns.len(),
            original_makespan: original.makespan(insns, model),
            scheduled_makespan: schedule.makespan(insns, model),
            slot,
        });
    }
    ScheduledProgram {
        insns: out,
        blocks: reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_workloads::{generate, parse_asm, BenchmarkProfile, PAPER_SEED};

    #[test]
    fn schedules_a_whole_benchmark() {
        let bench = generate(BenchmarkProfile::by_name("grep").unwrap(), PAPER_SEED);
        let model = MachineModel::sparc2();
        let result = schedule_program(&bench.program, &model, &DriverConfig::default());
        assert_eq!(result.insns.len(), bench.program.len());
        let (before, after) = result.speedup(&bench.program, &model);
        assert!(after <= before, "scheduling must not slow the program");
        for r in &result.blocks {
            assert!(r.scheduled_makespan <= r.original_makespan + 4);
        }
    }

    #[test]
    fn inheritance_composes_with_the_driver() {
        let bench = generate(BenchmarkProfile::by_name("linpack").unwrap(), PAPER_SEED);
        let model = MachineModel::sparc2();
        let cfg = DriverConfig {
            inherit_latencies: true,
            ..DriverConfig::default()
        };
        let result = schedule_program(&bench.program, &model, &cfg);
        assert_eq!(result.insns.len(), bench.program.len());
    }

    #[test]
    fn delay_slot_filling_reports_actions() {
        let prog = parse_asm(
            "
            cmp %o0, %o1
            add %o2, %o3, %o4
            bne target
            nop
            add %o4, 1, %o5
            ",
        )
        .unwrap();
        let model = MachineModel::sparc2();
        let cfg = DriverConfig {
            fill_delay_slots: true,
            ..DriverConfig::default()
        };
        let result = schedule_program(&prog, &model, &cfg);
        let first = &result.blocks[0];
        assert!(
            matches!(first.slot, Some(SlotFill::Moved(_))),
            "{:?}",
            first.slot
        );
        // The emitted stream keeps the branch followed by the moved add.
        let bpos = result
            .insns
            .iter()
            .position(|i| i.opcode == dagsched_isa::Opcode::Bicc)
            .unwrap();
        assert_eq!(result.insns[bpos + 1].opcode, dagsched_isa::Opcode::Add);
    }
}
