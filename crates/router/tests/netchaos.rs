//! Gray-failure tests: the router behind netchaos proxies. An
//! asymmetric partition on the router→shard direction must fail over
//! within the deadline, open the victim's breaker on evidence, and
//! never duplicate a reply; healing must walk the breaker through
//! half-open trials; a slow-but-alive primary must lose the hedge race
//! while its breaker stays closed.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use dagsched_netchaos::{serve_proxy, ChaosConfig, Direction, ProxyHandle};
use dagsched_proto::json::Json;
use dagsched_router::{routing_key, serve_router, Ring, RouterConfig, RouterHandle};
use dagsched_service::client::{Client, RetryPolicy};
use dagsched_service::server::{serve, Listen, ServerConfig};
use dagsched_service::{ScheduleRequest, ServerHandle};
use dagsched_workloads::PAPER_SEED;

const SHARDS: usize = 3;

struct ChaosCluster {
    dir: PathBuf,
    shards: Vec<ServerHandle>,
    proxies: Vec<ProxyHandle>,
    router: RouterHandle,
    /// The proxy endpoints, in ring order (what the router was given).
    endpoints: Vec<String>,
}

impl ChaosCluster {
    fn start(tag: &str) -> ChaosCluster {
        let dir =
            std::env::temp_dir().join(format!("dagsched-netchaos-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create test dir");

        let mut shards = Vec::new();
        let mut proxies = Vec::new();
        let mut endpoints = Vec::new();
        for i in 0..SHARDS {
            let shard_sock = dir.join(format!("shard-{i}.sock"));
            shards.push(
                serve(
                    Listen::Unix(shard_sock.clone()),
                    ServerConfig {
                        workers: 2,
                        ..ServerConfig::default()
                    },
                )
                .expect("bind shard"),
            );
            let proxy = serve_proxy(
                &format!("unix:{}", dir.join(format!("proxy-{i}.sock")).display()),
                &format!("unix:{}", shard_sock.display()),
                ChaosConfig::quiet(0x6E63 + i as u64),
            )
            .expect("bind proxy");
            endpoints.push(proxy.endpoint().to_string());
            proxies.push(proxy);
        }

        // Snappy timeouts so a blackholed forward is abandoned fast
        // enough to observe failover within the test deadline.
        let router = serve_router(
            Listen::Unix(dir.join("router.sock")),
            RouterConfig {
                shards: endpoints.clone(),
                fail_threshold: 3,
                revive_threshold: 3,
                health_check_ms: 100,
                shard_retry: RetryPolicy {
                    max_retries: 1,
                    base_delay: Duration::from_millis(5),
                    max_delay: Duration::from_millis(20),
                    per_attempt_timeout: Some(Duration::from_millis(750)),
                    overall_timeout: Some(Duration::from_secs(3)),
                    jitter_seed: 0x6E63,
                },
                ..RouterConfig::default()
            },
        )
        .expect("bind router");

        ChaosCluster {
            dir,
            shards,
            proxies,
            router,
            endpoints,
        }
    }

    /// Index of the proxy that is `req`'s primary under the router's
    /// ring (same members, same hash).
    fn primary_index(&self, req: &ScheduleRequest) -> usize {
        let ring = Ring::with_members(self.endpoints.iter().map(String::as_str));
        let (_, key) = routing_key(req);
        let primary = ring.primary(key).expect("ring has members").to_string();
        self.endpoints
            .iter()
            .position(|e| *e == primary)
            .expect("primary is one of ours")
    }

    /// Breaker state string for the shard behind proxy `idx`, straight
    /// from the router's metrics snapshot.
    fn breaker_of(&self, idx: usize) -> String {
        let snap = self.router.metrics();
        let shards = snap
            .get("shards")
            .and_then(Json::as_arr)
            .expect("metrics carry per-shard gauges");
        let entry = shards
            .iter()
            .find(|s| s.get("endpoint").and_then(Json::as_str) == Some(&self.endpoints[idx]))
            .expect("shard present in metrics");
        entry
            .get("breaker")
            .and_then(Json::as_str)
            .expect("breaker gauge present")
            .to_string()
    }

    fn counter(&self, name: &str) -> u64 {
        self.router
            .metrics()
            .get(name)
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("router metrics missing {name}"))
    }

    fn wait_for<F: Fn() -> bool>(cond: F, what: &str) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while !cond() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    fn teardown(self) {
        self.router.begin_drain();
        self.router.join();
        for p in self.proxies {
            p.shutdown();
        }
        for s in self.shards {
            s.begin_drain();
            s.join();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// ISSUE satellite: drop the router→shard direction mid-request. The
/// request still answers (bit-identically) within the deadline, the
/// victim's breaker opens on probe evidence, no reply is duplicated,
/// and healing revives the shard only after half-open trials.
#[test]
fn an_asymmetric_partition_fails_over_and_the_breaker_half_opens_back() {
    let cluster = ChaosCluster::start("partition");
    let mut client = Client::connect(&cluster.router.endpoint()).expect("connect router");
    client.set_io_timeout(Some(Duration::from_secs(20)));
    let req = ScheduleRequest::profile("grep", PAPER_SEED);
    let mut sent = 0u64;

    let reference = client.request(&req).expect("healthy warm-up");
    sent += 1;

    // Cut the request direction to the primary: its replies still flow
    // but nothing the router sends arrives — the nastiest gray failure,
    // since the link "looks" half alive.
    let primary = cluster.primary_index(&req);
    cluster.proxies[primary].set_partition(Direction::ClientToUpstream, true);

    let started = Instant::now();
    let resp = client.request(&req).expect("partitioned request answers");
    sent += 1;
    assert_eq!(resp.insns, reference.insns, "failover changed the reply");
    assert!(
        started.elapsed() < Duration::from_secs(8),
        "failover must beat the deadline, took {:?}",
        started.elapsed()
    );

    // The probes run through the same dead direction: evidence piles up
    // and the breaker opens without any more live traffic.
    ChaosCluster::wait_for(
        || cluster.breaker_of(primary) == "open",
        "the partitioned shard's breaker to open",
    );

    // With the breaker open the ladder skips the primary outright.
    for _ in 0..3 {
        let resp = client.request(&req).expect("request while breaker open");
        sent += 1;
        assert_eq!(resp.insns, reference.insns);
    }
    assert!(
        cluster.counter("failovers") + cluster.counter("hedge_wins") >= 1,
        "the partition must be absorbed by a failover or a hedge win"
    );

    // Exactly one reply per request made it back (a duplicated reply
    // would desync the stream and break the next roundtrip).
    assert_eq!(
        cluster.counter("responses"),
        sent,
        "duplicated or lost replies"
    );
    client.ping().expect("stream still framed correctly");

    // Heal the link. One probe success only half-opens the breaker;
    // `revive_threshold` consecutive successes close it.
    cluster.proxies[primary].set_partition(Direction::ClientToUpstream, false);
    ChaosCluster::wait_for(
        || cluster.breaker_of(primary) == "closed",
        "the healed shard's breaker to close",
    );
    assert!(
        cluster.counter("breaker_half_open") >= 1,
        "revival must pass through half-open"
    );
    assert!(cluster.counter("breaker_closed") >= 1);

    let resp = client.request(&req).expect("request after revival");
    assert_eq!(resp.insns, reference.insns);

    drop(client);
    cluster.teardown();
}

/// A primary that suddenly answers slowly — but *is* up — loses the
/// hedge race to its replica while its breaker stays closed: the
/// latency-aware path handles what binary health cannot see.
#[test]
fn a_slow_primary_loses_the_hedge_race_with_its_breaker_closed() {
    let cluster = ChaosCluster::start("hedge");
    let mut client = Client::connect(&cluster.router.endpoint()).expect("connect router");
    client.set_io_timeout(Some(Duration::from_secs(20)));
    let req = ScheduleRequest::profile("regex", PAPER_SEED);
    let primary = cluster.primary_index(&req);

    let reference = client.request(&req).expect("warm-up compile");
    // Warm the primary's latency window past the quantile's minimum
    // sample count: cache hits are fast, so the hedge delay collapses
    // to its lower clamp.
    for _ in 0..12 {
        let resp = client.request(&req).expect("window warm-up");
        assert_eq!(resp.insns, reference.insns);
    }

    // Make the primary slow (300ms per hop) without breaking it.
    cluster.proxies[primary].set_extra_latency_ms(300);

    let deadline = Instant::now() + Duration::from_secs(15);
    while cluster.counter("hedge_wins") == 0 {
        assert!(
            Instant::now() < deadline,
            "no hedge win after repeated slow-primary requests; \
             hedged={} wins={}",
            cluster.counter("hedged_requests"),
            cluster.counter("hedge_wins"),
        );
        let resp = client.request(&req).expect("slow-primary request");
        assert_eq!(resp.insns, reference.insns, "hedged reply differs");
    }
    assert!(cluster.counter("hedged_requests") >= 1);
    // Slow is not down: the breaker never tripped for latency alone.
    assert_eq!(
        cluster.breaker_of(primary),
        "closed",
        "a merely-slow shard must keep its breaker closed"
    );

    cluster.proxies[primary].set_extra_latency_ms(0);
    drop(client);
    cluster.teardown();
}
