//! Property tests pinning the two guarantees the cluster design leans
//! on: the ring spreads real request keys evenly, and membership
//! changes move only the minimal slice of the key space.
//!
//! Keys are not synthetic uniform randoms — they are the router's
//! actual routing keys (FNV-1a of the canonical request JSON) over
//! blocks from the verify generator's structural families, so the
//! distribution under test is the one production traffic produces.

use std::collections::HashMap;

use dagsched_proto::ScheduleRequest;
use dagsched_router::ring::{fnv64, Ring};
use dagsched_verify::{generate_program, Shape};

/// The router's routing key for a generated block.
fn routing_key(program: &str) -> u64 {
    let req = ScheduleRequest::asm(program);
    fnv64(req.to_json().to_string().as_bytes())
}

/// A corpus of routing keys over every generator shape.
fn key_corpus(count: usize) -> Vec<u64> {
    let mut keys = Vec::with_capacity(count);
    let mut seed = 0x5EEDu64;
    while keys.len() < count {
        for &shape in Shape::ALL {
            if keys.len() == count {
                break;
            }
            keys.push(routing_key(&generate_program(shape, seed)));
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
    }
    keys
}

fn shard_endpoints(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| format!("unix:/tmp/shard-{i}.sock"))
        .collect()
}

/// ISSUE satellite: per-shard load within ±20% of the fair share for
/// every cluster size from 3 to 16, on the verify generator's key
/// distribution.
#[test]
fn load_is_balanced_within_20_percent_across_3_to_16_shards() {
    let keys = key_corpus(4000);
    for n in 3..=16usize {
        let endpoints = shard_endpoints(n);
        let ring = Ring::with_members(endpoints.iter().cloned());
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for &key in &keys {
            *counts
                .entry(ring.primary(key).expect("non-empty ring"))
                .or_default() += 1;
        }
        let fair = keys.len() as f64 / n as f64;
        for endpoint in &endpoints {
            let got = *counts.get(endpoint.as_str()).unwrap_or(&0) as f64;
            let skew = (got - fair).abs() / fair;
            assert!(
                skew <= 0.20,
                "{n} shards: {endpoint} owns {got} keys vs fair share {fair:.0} \
                 ({:.1}% skew, cap 20%)",
                skew * 100.0
            );
        }
    }
}

/// ISSUE satellite, join half: adding one shard to an N-shard ring
/// moves ≈ 1/(N+1) of the keys — and every moved key moves *to* the
/// joiner, never between survivors.
#[test]
fn a_single_join_remaps_only_the_joiners_share() {
    let keys = key_corpus(3000);
    for n in [3usize, 5, 8, 12, 15] {
        let endpoints = shard_endpoints(n);
        let mut ring = Ring::with_members(endpoints.iter().cloned());
        let before: Vec<&str> = keys.iter().map(|&k| ring.primary(k).unwrap()).collect();
        let before: Vec<String> = before.into_iter().map(str::to_string).collect();

        let joiner = format!("unix:/tmp/shard-{n}.sock");
        assert!(ring.add(joiner.clone()));
        let mut moved = 0usize;
        for (i, &key) in keys.iter().enumerate() {
            let now = ring.primary(key).unwrap();
            if now != before[i] {
                assert_eq!(
                    now, joiner,
                    "a join may only move keys to the joiner, but key {key:#x} \
                     moved {} -> {now}",
                    before[i]
                );
                moved += 1;
            }
        }
        let fair = keys.len() as f64 / (n + 1) as f64;
        assert!(moved > 0, "{n} shards: the joiner took no keys at all");
        assert!(
            (moved as f64) <= fair * 1.5,
            "{n} shards: join moved {moved} keys, expected ≈ {fair:.0} (cap 1.5×)"
        );
    }
}

/// ISSUE satellite, leave half: removing one shard moves exactly the
/// keys it owned — survivors' placements are untouched (this is what
/// keeps their content-addressed caches hot through a failover).
#[test]
fn a_single_leave_moves_only_the_leavers_keys() {
    let keys = key_corpus(3000);
    for n in [3usize, 5, 8, 12, 15] {
        let endpoints = shard_endpoints(n);
        let mut ring = Ring::with_members(endpoints.iter().cloned());
        let leaver = endpoints[n / 2].clone();
        let before: Vec<String> = keys
            .iter()
            .map(|&k| ring.primary(k).unwrap().to_string())
            .collect();
        assert!(ring.remove(&leaver));
        let mut moved = 0usize;
        for (i, &key) in keys.iter().enumerate() {
            let now = ring.primary(key).unwrap();
            if before[i] == leaver {
                assert_ne!(now, leaver);
                moved += 1;
            } else {
                assert_eq!(
                    now, before[i],
                    "key {key:#x} was not owned by the leaver but still moved"
                );
            }
        }
        let fair = keys.len() as f64 / n as f64;
        assert!(
            (moved as f64) <= fair * 1.5,
            "{n} shards: leave moved {moved} keys, expected ≈ {fair:.0} (cap 1.5×)"
        );
    }
}

/// The replica set (R = 2) degrades gracefully through membership
/// churn: it always holds min(R, members) distinct shards and the
/// primary is always its first element.
#[test]
fn replica_sets_stay_distinct_through_churn() {
    let keys = key_corpus(500);
    let mut ring = Ring::with_members(shard_endpoints(4).iter().cloned());
    let churn: &[(&str, bool)] = &[
        ("unix:/tmp/shard-4.sock", true),
        ("unix:/tmp/shard-1.sock", false),
        ("unix:/tmp/shard-5.sock", true),
        ("unix:/tmp/shard-0.sock", false),
        ("unix:/tmp/shard-2.sock", false),
    ];
    for &(endpoint, join) in churn {
        if join {
            assert!(ring.add(endpoint));
        } else {
            assert!(ring.remove(endpoint));
        }
        for &key in &keys {
            let reps = ring.replicas(key, 2);
            assert_eq!(reps.len(), 2.min(ring.len()));
            if reps.len() == 2 {
                assert_ne!(reps[0], reps[1]);
            }
            assert_eq!(ring.primary(key), reps.first().copied());
        }
    }
}
