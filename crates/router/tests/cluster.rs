//! End-to-end cluster tests: routed replies are bit-identical to a
//! direct daemon, a shard death mid-load is invisible to clients, and
//! warm-spare promotion ships a snapshot before ring ownership.

use std::path::{Path, PathBuf};
use std::time::Duration;

use dagsched_proto::{hex_decode, AdminCommand};
use dagsched_router::{serve_router, RouterConfig, RouterHandle};
use dagsched_service::client::{Client, RetryPolicy};
use dagsched_service::server::{serve, Listen, ServerConfig};
use dagsched_service::{ScheduleRequest, ServerHandle};
use dagsched_workloads::PAPER_SEED;

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dagsched-cluster-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn spawn_shard(sock: &Path) -> ServerHandle {
    serve(
        Listen::Unix(sock.to_path_buf()),
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind shard")
}

fn spawn_router(sock: &Path, shards: Vec<String>) -> RouterHandle {
    serve_router(
        Listen::Unix(sock.to_path_buf()),
        RouterConfig {
            shards,
            health_check_ms: 100,
            ..RouterConfig::default()
        },
    )
    .expect("bind router")
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 4,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(50),
        ..RetryPolicy::default()
    }
}

/// The request mix used by every test: distinct profiles and seeds so
/// keys spread over the ring.
fn request_mix() -> Vec<ScheduleRequest> {
    let mut reqs = Vec::new();
    for profile in ["grep", "regex", "tomcatv"] {
        for seed in [PAPER_SEED, PAPER_SEED + 1] {
            reqs.push(ScheduleRequest::profile(profile, seed));
        }
    }
    reqs
}

/// ISSUE acceptance: every reply served through the router is
/// bit-identical to the same request served by a standalone daemon.
#[test]
fn routed_replies_are_bit_identical_to_a_direct_daemon() {
    let dir = test_dir("identity");
    let shard_socks: Vec<PathBuf> = (0..3)
        .map(|i| dir.join(format!("shard-{i}.sock")))
        .collect();
    let shards: Vec<ServerHandle> = shard_socks.iter().map(|p| spawn_shard(p)).collect();
    let direct_sock = dir.join("direct.sock");
    let direct = spawn_shard(&direct_sock);
    let router = spawn_router(
        &dir.join("router.sock"),
        shard_socks
            .iter()
            .map(|p| format!("unix:{}", p.display()))
            .collect(),
    );

    let mut via_router = Client::connect(&router.endpoint()).expect("connect router");
    let mut via_direct = Client::connect(&direct.endpoint()).expect("connect direct");
    for req in request_mix() {
        // Twice through the router: the second pass must be a cache
        // hit on the same shard (stable placement).
        let first = via_router.request(&req).expect("routed request");
        let second = via_router.request(&req).expect("routed repeat");
        let reference = via_direct.request(&req).expect("direct request");
        assert_eq!(first.insns, reference.insns, "routed != direct");
        assert_eq!(second.insns, reference.insns);
        assert!(
            second.stats.cache_hits > 0,
            "repeat of an identical request missed the shard cache: \
             placement is not stable"
        );
    }

    let metrics = router.metrics();
    assert_eq!(metrics.get("no_live_shard").unwrap().as_u64(), Some(0));
    assert!(metrics.get("responses").unwrap().as_u64().unwrap() >= 12);

    // Drop the clients first so the router's connection threads see
    // EOF instead of idling out their read timeout during the drain.
    drop(via_router);
    drop(via_direct);
    router.begin_drain();
    router.join();
    for s in shards {
        s.begin_drain();
        s.join();
    }
    direct.begin_drain();
    direct.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// ISSUE satellite: kill one shard mid-load and restart it — the
/// retrying client sees zero errors end to end (failover absorbs the
/// death, the prober re-admits the restart).
#[test]
fn a_shard_death_and_restart_is_invisible_to_clients() {
    let dir = test_dir("failover");
    let shard_socks: Vec<PathBuf> = (0..3)
        .map(|i| dir.join(format!("shard-{i}.sock")))
        .collect();
    let mut shards: Vec<Option<ServerHandle>> =
        shard_socks.iter().map(|s| Some(spawn_shard(s))).collect();
    let router = spawn_router(
        &dir.join("router.sock"),
        shard_socks
            .iter()
            .map(|p| format!("unix:{}", p.display()))
            .collect(),
    );

    let policy = fast_retry();
    let mut client = Client::connect(&router.endpoint()).expect("connect router");
    let mix = request_mix();

    // Warm the cluster and record the reference replies.
    let mut reference = Vec::new();
    for req in &mix {
        let (resp, _) = client.request_with_retry(req, &policy).expect("warm-up");
        reference.push(resp.insns);
    }

    // Kill shard 0 the hard way mid-load: drop its handle without a
    // drain, so its socket answers connection-refused from here on.
    let victim = shards[0].take().expect("shard 0 alive");
    victim.begin_drain();
    victim.join();

    // Every request keeps succeeding, bit-identically, while the ring
    // still names the dead shard.
    for round in 0..4 {
        for (i, req) in mix.iter().enumerate() {
            let (resp, _) = client
                .request_with_retry(req, &policy)
                .unwrap_or_else(|e| panic!("round {round} request {i} failed: {e}"));
            assert_eq!(resp.insns, reference[i], "failover changed a reply");
        }
    }

    // Restart the shard on the same socket; the prober re-admits it
    // and traffic keeps flowing.
    shards[0] = Some(spawn_shard(&shard_socks[0]));
    std::thread::sleep(Duration::from_millis(400));
    for (i, req) in mix.iter().enumerate() {
        let (resp, _) = client
            .request_with_retry(req, &policy)
            .unwrap_or_else(|e| panic!("post-restart request {i} failed: {e}"));
        assert_eq!(resp.insns, reference[i]);
    }

    let metrics = router.metrics();
    let failovers = metrics.get("failovers").unwrap().as_u64().unwrap();
    let rerouted = metrics.get("rerouted").unwrap().as_u64().unwrap();
    assert!(
        failovers + rerouted > 0,
        "the dead shard owned at least one key, so some request must \
         have failed over or rerouted"
    );

    drop(client);
    router.begin_drain();
    router.join();
    for s in shards.into_iter().flatten() {
        s.begin_drain();
        s.join();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Snapshot shipping between two daemons directly: export from a warm
/// donor, install on a cold joiner, and the joiner's first request is
/// a cache hit.
#[test]
fn a_snapshot_round_trip_warms_a_cold_daemon() {
    let dir = test_dir("shipping");
    let donor = spawn_shard(&dir.join("donor.sock"));
    let joiner = spawn_shard(&dir.join("joiner.sock"));

    let mut donor_client = Client::connect(&donor.endpoint()).expect("connect donor");
    let req = ScheduleRequest::profile("grep", PAPER_SEED);
    let reference = donor_client.request(&req).expect("warm the donor");

    let exported = donor_client
        .admin(&AdminCommand::SnapshotExport)
        .expect("snapshot export");
    let entries = exported.get("entries").unwrap().as_u64().unwrap();
    assert!(entries > 0, "a warm donor exports at least one entry");
    let shipment = exported
        .get("shipment")
        .and_then(|v| v.as_str())
        .and_then(hex_decode)
        .expect("decodable shipment");

    let mut joiner_client = Client::connect(&joiner.endpoint()).expect("connect joiner");
    let installed = joiner_client
        .admin(&AdminCommand::SnapshotInstall { shipment })
        .expect("snapshot install");
    assert_eq!(
        installed.get("installed").unwrap().as_u64(),
        Some(entries),
        "every exported entry installs on a cold daemon"
    );

    // The joiner serves the donor's working set from cache.
    let resp = joiner_client.request(&req).expect("joiner request");
    assert_eq!(resp.insns, reference.insns);
    assert!(
        resp.stats.cache_hits > 0,
        "the shipped snapshot should make this a cache hit"
    );

    drop(donor_client);
    drop(joiner_client);
    donor.begin_drain();
    donor.join();
    joiner.begin_drain();
    joiner.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// ISSUE acceptance (warm-spare promotion): `add-shard` through the
/// router ships a snapshot from a live donor to the joiner *before*
/// ring ownership, and reports > 0 entries recovered.
#[test]
fn add_shard_promotes_a_warm_spare_via_snapshot_shipping() {
    let dir = test_dir("promotion");
    let shard_socks: Vec<PathBuf> = (0..2)
        .map(|i| dir.join(format!("shard-{i}.sock")))
        .collect();
    let shards: Vec<ServerHandle> = shard_socks.iter().map(|p| spawn_shard(p)).collect();
    // Only shard 0 starts in the ring; shard 1 is the warm spare.
    let router = spawn_router(
        &dir.join("router.sock"),
        vec![format!("unix:{}", shard_socks[0].display())],
    );

    let mut client = Client::connect(&router.endpoint()).expect("connect router");
    for req in request_mix() {
        client.request(&req).expect("warm the cluster");
    }

    let spare = format!("unix:{}", shard_socks[1].display());
    let reply = client
        .admin(&AdminCommand::AddShard {
            endpoint: spare.clone(),
        })
        .expect("add-shard");
    assert_eq!(reply.get("ok").unwrap().as_bool(), Some(true));
    let installed = reply.get("installed").unwrap().as_u64().unwrap();
    assert!(
        installed > 0,
        "warm-spare promotion must recover > 0 entries before traffic"
    );

    // The ring now has both members and routed traffic still matches.
    let status = client.admin(&AdminCommand::Status).expect("status");
    let members = status.get("members").unwrap().as_arr().unwrap();
    assert_eq!(members.len(), 2);

    for req in request_mix() {
        let resp = client.request(&req).expect("post-join request");
        assert!(
            resp.stats.cache_hits > 0,
            "post-join requests hit either the old shard's cache or \
             the shipped snapshot"
        );
    }
    let metrics = router.metrics();
    assert_eq!(
        metrics.get("warm_spare_entries_shipped").unwrap().as_u64(),
        Some(installed)
    );
    assert_eq!(metrics.get("shards_added").unwrap().as_u64(), Some(1));

    // Removing the original shard leaves the joiner serving everything.
    let removed = client
        .admin(&AdminCommand::RemoveShard {
            endpoint: format!("unix:{}", shard_socks[0].display()),
        })
        .expect("remove-shard");
    assert_eq!(removed.get("ok").unwrap().as_bool(), Some(true));
    for req in request_mix() {
        client.request(&req).expect("request after remove-shard");
    }

    drop(client);
    router.begin_drain();
    router.join();
    for s in shards {
        s.begin_drain();
        s.join();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Losing every replica of a key degrades to a reroute (cache miss on
/// a foreign shard), never an error; losing *every* shard yields a
/// retryable `busy`, and recovery is automatic.
#[test]
fn total_replica_loss_degrades_to_reroute_not_error() {
    let dir = test_dir("degrade");
    let shard_socks: Vec<PathBuf> = (0..3)
        .map(|i| dir.join(format!("shard-{i}.sock")))
        .collect();
    let mut shards: Vec<Option<ServerHandle>> =
        shard_socks.iter().map(|s| Some(spawn_shard(s))).collect();
    let router = spawn_router(
        &dir.join("router.sock"),
        shard_socks
            .iter()
            .map(|p| format!("unix:{}", p.display()))
            .collect(),
    );

    let policy = fast_retry();
    let mut client = Client::connect(&router.endpoint()).expect("connect router");
    let req = ScheduleRequest::profile("grep", PAPER_SEED);
    let (reference, _) = client.request_with_retry(&req, &policy).expect("warm-up");

    // Kill two of three shards: whatever this key's R=2 replica set
    // was, at most one of its members survives — and for many keys
    // none does, exercising the reroute rung.
    for slot in shards.iter_mut().take(2) {
        let victim = slot.take().unwrap();
        victim.begin_drain();
        victim.join();
    }
    for req in request_mix() {
        let (resp, _) = client
            .request_with_retry(&req, &policy)
            .expect("one live shard still serves everything");
        assert!(!resp.insns.is_empty());
    }
    let (resp, _) = client.request_with_retry(&req, &policy).expect("degraded");
    assert_eq!(resp.insns, reference.insns);

    drop(client);
    router.begin_drain();
    router.join();
    for s in shards.into_iter().flatten() {
        s.begin_drain();
        s.join();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
