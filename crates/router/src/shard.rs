//! Per-shard health state (latency-aware score + circuit breaker),
//! keep-alive shard connections, and the router's own counters.
//!
//! # Breaker state machine
//!
//! Binary up/down health cannot see gray failures — a shard that
//! answers slowly, or a link that flaps — so each shard carries a
//! three-state circuit breaker:
//!
//! ```text
//!            fail_threshold consecutive failures
//!   CLOSED ──────────────────────────────────────▶ OPEN
//!     ▲                                             │ first probe/forward success
//!     │ revive_threshold consecutive successes      ▼
//!     └───────────────────────────────────────── HALF-OPEN
//!                     (any failure reopens)
//! ```
//!
//! Only `Closed` shards receive live traffic (the forwarding ladder
//! treats everything else as down, with a last-resort exception when
//! *no* shard is closed). `Open` and `HalfOpen` shards are exercised by
//! the prober's trial pings; a flapping shard therefore has to prove
//! itself `revive_threshold` times in a row before it absorbs client
//! requests again — the old single-success instant revive let one lucky
//! probe route real traffic onto a dying shard.
//!
//! # Latency score
//!
//! Every successful probe and forward feeds an EWMA of observed latency
//! (`α = 1/5`); forwards additionally feed a small sliding window from
//! which the hedging delay quantile is drawn. [`ShardState::health_score`]
//! combines the EWMA with current failure evidence and orders the
//! reroute tier, so overflow traffic prefers fast, unblemished shards.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use dagsched_proto::json::Json;
use dagsched_proto::{AdminCommand, ScheduleRequest, ScheduleResponse};
use dagsched_service::client::{Client, ClientError, RetryBudget, RetryPolicy};
use dagsched_service::reactor::lock_recover;

/// Circuit-breaker state for one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: receives live traffic.
    Closed,
    /// Tripped: no live traffic, probes only.
    Open,
    /// Reviving: at least one trial success, not yet enough to close.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name for metrics.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// What a recorded success or failure did to the breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// No state change.
    None,
    /// Tripped: `Closed`/`HalfOpen` → `Open`.
    Opened,
    /// First trial success: `Open` → `HalfOpen`.
    HalfOpened,
    /// Fully revived: `HalfOpen` → `Closed`.
    Closed,
}

/// Breaker state plus the evidence counters it transitions on, guarded
/// as one unit so concurrent probes and forwards cannot tear a
/// transition.
#[derive(Debug)]
struct Health {
    state: BreakerState,
    consecutive_failures: u32,
    consecutive_successes: u32,
}

/// Sliding window of recent *forward* latencies, the sample set the
/// hedge-trigger quantile is computed from. Probe latencies are
/// excluded: a sub-millisecond ping would drag the quantile far below
/// real compile latency and make every forward hedge.
#[derive(Debug)]
struct LatencyWindow {
    samples: [u64; LatencyWindow::CAP],
    len: usize,
    next: usize,
}

impl LatencyWindow {
    const CAP: usize = 64;
    /// Below this many samples the quantile is considered unknown and
    /// the hedge delay falls back to its configured maximum.
    const MIN_SAMPLES: usize = 8;

    fn new() -> LatencyWindow {
        LatencyWindow {
            samples: [0; LatencyWindow::CAP],
            len: 0,
            next: 0,
        }
    }

    fn push(&mut self, micros: u64) {
        self.samples[self.next] = micros;
        self.next = (self.next + 1) % LatencyWindow::CAP;
        self.len = (self.len + 1).min(LatencyWindow::CAP);
    }

    /// The `q`-quantile of the window in microseconds, `None` with too
    /// few samples.
    fn quantile_us(&self, q: f64) -> Option<u64> {
        if self.len < LatencyWindow::MIN_SAMPLES {
            return None;
        }
        let mut sorted: Vec<u64> = self.samples[..self.len].to_vec();
        sorted.sort_unstable();
        let rank = (q.clamp(0.0, 1.0) * (self.len - 1) as f64).round() as usize;
        Some(sorted[rank.min(self.len - 1)])
    }
}

/// Health and traffic counters for one shard.
#[derive(Debug)]
pub struct ShardState {
    /// The endpoint this shard was added with (`unix:/path` or
    /// `host:port`); also its ring identity.
    pub endpoint: String,
    /// Breaker state machine (see the module docs).
    health: Mutex<Health>,
    /// EWMA of successful probe + forward latency, microseconds
    /// (`0` = no observation yet).
    ewma_us: AtomicU64,
    /// Recent forward latencies, for the hedge quantile.
    window: Mutex<LatencyWindow>,
    /// Requests currently being forwarded to this shard.
    pub inflight: AtomicU64,
    /// Requests forwarded (any outcome).
    pub requests: AtomicU64,
    /// Forwarding failures (transport or exhausted retries).
    pub failures: AtomicU64,
    /// Requests that failed over *away* from this shard while it was
    /// in the key's replica set.
    pub failovers: AtomicU64,
    /// Replication writes delivered to this shard (as a ring
    /// successor).
    pub replication_writes: AtomicU64,
    /// Hedged forwards launched while this shard was the primary.
    pub hedges: AtomicU64,
    /// Hedge races this shard won as the secondary.
    pub hedge_wins: AtomicU64,
}

impl ShardState {
    /// Fresh state for `endpoint`, assumed up until proven otherwise.
    pub fn new(endpoint: impl Into<String>) -> ShardState {
        ShardState {
            endpoint: endpoint.into(),
            health: Mutex::new(Health {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                consecutive_successes: 0,
            }),
            ewma_us: AtomicU64::new(0),
            window: Mutex::new(LatencyWindow::new()),
            inflight: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            replication_writes: AtomicU64::new(0),
            hedges: AtomicU64::new(0),
            hedge_wins: AtomicU64::new(0),
        }
    }

    /// Whether the shard is routable (breaker closed).
    pub fn is_up(&self) -> bool {
        self.breaker() == BreakerState::Closed
    }

    /// Current breaker state.
    pub fn breaker(&self) -> BreakerState {
        lock_recover(&self.health).state
    }

    /// Current consecutive-failure streak.
    pub fn failure_streak(&self) -> u32 {
        lock_recover(&self.health).consecutive_failures
    }

    /// Current consecutive-success streak (meaningful while reviving).
    pub fn success_streak(&self) -> u32 {
        lock_recover(&self.health).consecutive_successes
    }

    /// Record a successful interaction (probe or forward). A closed
    /// breaker just resets the failure streak; an open one moves to
    /// half-open; a half-open one closes after `revive_threshold`
    /// consecutive successes — one lucky probe no longer revives a
    /// shard instantly.
    pub fn record_success(&self, revive_threshold: u32) -> Transition {
        let mut h = lock_recover(&self.health);
        h.consecutive_failures = 0;
        match h.state {
            BreakerState::Closed => {
                h.consecutive_successes = 0;
                Transition::None
            }
            BreakerState::Open => {
                h.consecutive_successes = 1;
                if h.consecutive_successes >= revive_threshold.max(1) {
                    h.state = BreakerState::Closed;
                    Transition::Closed
                } else {
                    h.state = BreakerState::HalfOpen;
                    Transition::HalfOpened
                }
            }
            BreakerState::HalfOpen => {
                h.consecutive_successes += 1;
                if h.consecutive_successes >= revive_threshold.max(1) {
                    h.state = BreakerState::Closed;
                    h.consecutive_successes = 0;
                    Transition::Closed
                } else {
                    Transition::None
                }
            }
        }
    }

    /// Record a failed interaction; past `threshold` consecutive
    /// failures the breaker trips. A failure while half-open reopens
    /// immediately (the trial failed).
    pub fn record_failure(&self, threshold: u32) -> Transition {
        self.failures.fetch_add(1, Ordering::Relaxed);
        let mut h = lock_recover(&self.health);
        h.consecutive_successes = 0;
        h.consecutive_failures = h.consecutive_failures.saturating_add(1);
        match h.state {
            BreakerState::Open => Transition::None,
            BreakerState::HalfOpen => {
                h.state = BreakerState::Open;
                Transition::Opened
            }
            BreakerState::Closed => {
                if h.consecutive_failures >= threshold.max(1) {
                    h.state = BreakerState::Open;
                    Transition::Opened
                } else {
                    Transition::None
                }
            }
        }
    }

    /// Feed one successful-interaction latency into the health score.
    /// Forward latencies additionally feed the hedge-quantile window;
    /// probe latencies only move the EWMA.
    pub fn observe_latency(&self, latency: Duration, forward: bool) {
        let us = u64::try_from(latency.as_micros())
            .unwrap_or(u64::MAX)
            .max(1);
        // α = 1/5: new = old + (x − old)/5, in integer microseconds.
        let mut old = self.ewma_us.load(Ordering::Relaxed);
        loop {
            let new = if old == 0 {
                us
            } else {
                (old.saturating_mul(4).saturating_add(us)) / 5
            };
            match self
                .ewma_us
                .compare_exchange_weak(old, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => old = seen,
            }
        }
        if forward {
            lock_recover(&self.window).push(us);
        }
    }

    /// EWMA latency in microseconds (`0` = no observation yet).
    pub fn ewma_us(&self) -> u64 {
        self.ewma_us.load(Ordering::Relaxed)
    }

    /// Latency-aware health score (lower is better): the EWMA latency
    /// scaled up by current failure evidence. Shards with no
    /// observations score as slow-but-clean rather than perfect.
    pub fn health_score(&self) -> u64 {
        let base = match self.ewma_us() {
            0 => 1_000_000, // unknown ≈ one second
            us => us,
        };
        base.saturating_mul(u64::from(self.failure_streak()) + 1)
    }

    /// The hedge-trigger delay for forwards to this shard: the
    /// `quantile` of its recent forward latencies, clamped to
    /// `[min, max]`; `max` until enough samples exist.
    pub fn hedge_delay(&self, quantile: f64, min: Duration, max: Duration) -> Duration {
        match lock_recover(&self.window).quantile_us(quantile) {
            Some(us) => Duration::from_micros(us).clamp(min, max),
            None => max,
        }
    }

    /// This shard's gauge object in the metrics snapshot.
    pub fn to_json(&self) -> Json {
        let g = |c: &AtomicU64| Json::from(c.load(Ordering::Relaxed));
        Json::obj(vec![
            ("endpoint", Json::from(self.endpoint.as_str())),
            ("up", Json::from(self.is_up())),
            ("breaker", Json::from(self.breaker().name())),
            (
                "consecutive_failures",
                Json::from(u64::from(self.failure_streak())),
            ),
            (
                "consecutive_successes",
                Json::from(u64::from(self.success_streak())),
            ),
            ("ewma_us", Json::from(self.ewma_us())),
            ("inflight", g(&self.inflight)),
            ("requests", g(&self.requests)),
            ("failures", g(&self.failures)),
            ("failovers", g(&self.failovers)),
            ("replication_writes", g(&self.replication_writes)),
            ("hedges", g(&self.hedges)),
            ("hedge_wins", g(&self.hedge_wins)),
        ])
    }
}

/// Keep-alive connections to shards, one map per forwarding worker (no
/// cross-thread sharing: a poisoned stream only affects its owner).
#[derive(Default)]
pub struct ShardConns {
    conns: HashMap<String, Client>,
}

impl ShardConns {
    /// Forward `req` to `endpoint`, dialing (with retry) on first use
    /// and dropping the cached connection on any failure. On success
    /// the measured round-trip latency rides along for health scoring.
    pub fn request(
        &mut self,
        endpoint: &str,
        req: &ScheduleRequest,
        policy: &RetryPolicy,
    ) -> Result<(ScheduleResponse, Duration), ClientError> {
        self.request_budgeted(endpoint, req, policy, None)
    }

    /// [`ShardConns::request`] with the client-level retries drawing
    /// from a shared [`RetryBudget`]: each redial/retry spends a token
    /// and each success refills one, so a wedged shard cannot make the
    /// router's own retries amplify the overload.
    pub fn request_budgeted(
        &mut self,
        endpoint: &str,
        req: &ScheduleRequest,
        policy: &RetryPolicy,
        budget: Option<&RetryBudget>,
    ) -> Result<(ScheduleResponse, Duration), ClientError> {
        let client = match self.conns.entry(endpoint.to_string()) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(v) => {
                let (client, _) = Client::connect_with_retry(endpoint, policy)?;
                v.insert(client)
            }
        };
        let started = std::time::Instant::now();
        match client.request_with_retry_budgeted(req, policy, budget) {
            Ok((resp, _)) => Ok((resp, started.elapsed())),
            Err(e) => {
                // `request_with_retry` already redialed what it could;
                // whatever is left is not worth keeping.
                self.conns.remove(endpoint);
                Err(e)
            }
        }
    }

    /// Send one admin command to `endpoint` on a fresh or cached
    /// connection.
    pub fn admin(
        &mut self,
        endpoint: &str,
        cmd: &AdminCommand,
        policy: &RetryPolicy,
    ) -> Result<Json, ClientError> {
        let client = match self.conns.entry(endpoint.to_string()) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(v) => {
                let (client, _) = Client::connect_with_retry(endpoint, policy)?;
                client.set_io_timeout(policy.per_attempt_timeout);
                v.insert(client)
            }
        };
        match client.admin(cmd) {
            Ok(v) => Ok(v),
            Err(e) => {
                self.conns.remove(endpoint);
                Err(e)
            }
        }
    }

    /// Take the cached connection to `endpoint` out of the map (or
    /// dial a fresh one). Hedged forwards move the connection onto a
    /// racing thread; the winner's connection is given back via
    /// [`ShardConns::put`], the cancelled loser's is dropped.
    pub fn take_or_dial(
        &mut self,
        endpoint: &str,
        policy: &RetryPolicy,
    ) -> Result<Client, ClientError> {
        if let Some(client) = self.conns.remove(endpoint) {
            return Ok(client);
        }
        let (client, _) = Client::connect_with_retry(endpoint, policy)?;
        Ok(client)
    }

    /// Return a healthy connection to the keep-alive map.
    pub fn put(&mut self, endpoint: &str, client: Client) {
        self.conns.insert(endpoint.to_string(), client);
    }
}

/// Fixed-bucket histogram of the deadline budget (milliseconds) still
/// remaining when a request was re-encoded for its shard hop. A mass
/// shift toward the low buckets is the early-warning sign that router
/// queueing is eating the clients' deadlines.
#[derive(Debug, Default)]
pub struct DeadlineHistogram {
    /// One counter per bucket in [`DeadlineHistogram::BOUNDS`], plus a
    /// trailing overflow bucket.
    buckets: [AtomicU64; DeadlineHistogram::BOUNDS.len() + 1],
}

impl DeadlineHistogram {
    /// Upper bounds (inclusive) of the finite buckets, milliseconds.
    pub const BOUNDS: [u64; 7] = [1, 5, 10, 50, 100, 500, 1000];

    /// Record one propagated remaining deadline.
    pub fn observe(&self, ms: u64) {
        let idx = Self::BOUNDS
            .iter()
            .position(|&b| ms <= b)
            .unwrap_or(Self::BOUNDS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations across every bucket.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The histogram as a JSON object: one `le_<bound>` field per
    /// finite bucket, `gt_1000` for the overflow, and the total count.
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = Self::BOUNDS
            .iter()
            .enumerate()
            .map(|(i, b)| {
                (
                    format!("le_{b}"),
                    Json::from(self.buckets[i].load(Ordering::Relaxed)),
                )
            })
            .collect();
        fields.push((
            format!("gt_{}", Self::BOUNDS[Self::BOUNDS.len() - 1]),
            Json::from(self.buckets[Self::BOUNDS.len()].load(Ordering::Relaxed)),
        ));
        fields.push(("count".to_string(), Json::from(self.count())));
        Json::Obj(fields)
    }
}

/// Router-level counters, exported over the `Metrics` frame in the
/// same shape as the daemon's (flat counters plus nested detail).
#[derive(Debug, Default)]
pub struct RouterMetrics {
    /// Client connections accepted.
    pub connections: AtomicU64,
    /// Schedule requests received from clients.
    pub requests: AtomicU64,
    /// Successful responses relayed back.
    pub responses: AtomicU64,
    /// Error replies sent (any code, any origin).
    pub errors: AtomicU64,
    /// Requests served by a non-primary ring replica after the primary
    /// failed.
    pub failovers: AtomicU64,
    /// Requests routed *outside* the key's replica set because the
    /// whole set was down (served as a cache miss, not an error).
    pub rerouted: AtomicU64,
    /// Replication writes delivered to ring successors.
    pub replication_writes: AtomicU64,
    /// Replication jobs dropped because the queue was full.
    pub replication_dropped: AtomicU64,
    /// Health probes performed.
    pub health_probes: AtomicU64,
    /// Breaker trips: times a shard went `Closed`/`HalfOpen` → `Open`.
    pub shards_marked_down: AtomicU64,
    /// Times an open breaker saw its first trial success (`HalfOpen`).
    pub breaker_half_open: AtomicU64,
    /// Times a breaker fully closed again (shard returned to the ring).
    pub breaker_closed: AtomicU64,
    /// Forwards that launched a hedge after the quantile delay.
    pub hedged_requests: AtomicU64,
    /// Hedge races the secondary won.
    pub hedge_wins: AtomicU64,
    /// Shards added via admin (warm-spare promotions included).
    pub shards_added: AtomicU64,
    /// Shards removed via admin.
    pub shards_removed: AtomicU64,
    /// Cache entries installed on joining shards via snapshot shipping.
    pub warm_spare_entries_shipped: AtomicU64,
    /// Requests rejected because no live shard existed.
    pub no_live_shard: AtomicU64,
    /// Hedges and failover rungs skipped because the shared retry
    /// budget was exhausted (the router refused to amplify overload).
    pub retry_budget_exhausted: AtomicU64,
    /// Requests failed fast with `deadline-expired` because the time
    /// already spent queued in the router left less than the forward
    /// floor.
    pub deadline_expired_in_router: AtomicU64,
    /// Times the ladder started at a healthier replica because the
    /// primary's estimated queue delay would have blown the remaining
    /// deadline budget.
    pub deadline_reroutes: AtomicU64,
    /// Remaining deadline budget (ms) at the moment requests were
    /// re-encoded for their shard hop.
    pub deadline_propagated_ms: DeadlineHistogram,
}

impl RouterMetrics {
    /// Increment a counter.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot every router counter plus the per-shard gauges.
    pub fn snapshot(&self, shards: &[std::sync::Arc<ShardState>]) -> Json {
        let g = |c: &AtomicU64| Json::from(c.load(Ordering::Relaxed));
        let up = shards.iter().filter(|s| s.is_up()).count() as u64;
        Json::obj(vec![
            ("connections", g(&self.connections)),
            ("requests", g(&self.requests)),
            ("responses", g(&self.responses)),
            ("errors", g(&self.errors)),
            ("failovers", g(&self.failovers)),
            ("rerouted", g(&self.rerouted)),
            ("replication_writes", g(&self.replication_writes)),
            ("replication_dropped", g(&self.replication_dropped)),
            ("health_probes", g(&self.health_probes)),
            ("shards_marked_down", g(&self.shards_marked_down)),
            ("breaker_half_open", g(&self.breaker_half_open)),
            ("breaker_closed", g(&self.breaker_closed)),
            ("hedged_requests", g(&self.hedged_requests)),
            ("hedge_wins", g(&self.hedge_wins)),
            ("shards_added", g(&self.shards_added)),
            ("shards_removed", g(&self.shards_removed)),
            (
                "warm_spare_entries_shipped",
                g(&self.warm_spare_entries_shipped),
            ),
            ("no_live_shard", g(&self.no_live_shard)),
            ("retry_budget_exhausted", g(&self.retry_budget_exhausted)),
            (
                "deadline_expired_in_router",
                g(&self.deadline_expired_in_router),
            ),
            ("deadline_reroutes", g(&self.deadline_reroutes)),
            (
                "deadline_propagated_ms",
                self.deadline_propagated_ms.to_json(),
            ),
            ("shards_up", Json::from(up)),
            ("shards_down", Json::from(shards.len() as u64 - up)),
            (
                "shards",
                Json::Arr(shards.iter().map(|s| s.to_json()).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Fetch a counter from a snapshot without `unwrap` chains.
    fn field(snap: &Json, name: &str) -> u64 {
        match snap.get(name).and_then(Json::as_u64) {
            Some(v) => v,
            None => panic!("snapshot is missing numeric field {name:?}: {snap}"),
        }
    }

    fn field_str(snap: &Json, name: &str) -> String {
        match snap.get(name).and_then(Json::as_str) {
            Some(v) => v.to_string(),
            None => panic!("snapshot is missing string field {name:?}: {snap}"),
        }
    }

    #[test]
    fn breaker_trips_on_a_failure_streak_and_revives_on_a_success_streak() {
        let s = ShardState::new("unix:/tmp/a.sock");
        assert!(s.is_up());
        assert_eq!(s.record_failure(3), Transition::None);
        assert_eq!(s.record_failure(3), Transition::None);
        assert_eq!(
            s.record_failure(3),
            Transition::Opened,
            "third consecutive failure trips the breaker"
        );
        assert!(!s.is_up());
        assert_eq!(s.record_failure(3), Transition::None, "already open");

        // The revive asymmetry fix: one success no longer flips it up.
        assert_eq!(s.record_success(3), Transition::HalfOpened);
        assert!(!s.is_up(), "half-open still takes no live traffic");
        assert_eq!(s.record_success(3), Transition::None);
        assert!(!s.is_up(), "two successes are still not enough");
        assert_eq!(s.record_success(3), Transition::Closed);
        assert!(s.is_up(), "threshold successes close the breaker");

        // The streak was reset: two more failures do not trip it.
        assert_eq!(s.record_failure(3), Transition::None);
        assert_eq!(s.record_failure(3), Transition::None);
        assert!(s.is_up());
    }

    #[test]
    fn a_failure_during_half_open_reopens_immediately() {
        let s = ShardState::new("a");
        for _ in 0..3 {
            s.record_failure(3);
        }
        assert_eq!(s.breaker(), BreakerState::Open);
        assert_eq!(s.record_success(3), Transition::HalfOpened);
        assert_eq!(s.breaker(), BreakerState::HalfOpen);
        assert_eq!(
            s.record_failure(3),
            Transition::Opened,
            "a failed trial reopens without waiting for a fresh streak"
        );
        assert_eq!(s.breaker(), BreakerState::Open);
        assert_eq!(s.success_streak(), 0, "the revival streak restarts");
    }

    #[test]
    fn revive_threshold_one_restores_the_old_instant_revive() {
        let s = ShardState::new("a");
        for _ in 0..3 {
            s.record_failure(3);
        }
        assert_eq!(s.record_success(1), Transition::Closed);
        assert!(s.is_up());
    }

    #[test]
    fn ewma_tracks_latency_and_the_window_feeds_the_hedge_quantile() {
        let s = ShardState::new("a");
        let min = Duration::from_millis(10);
        let max = Duration::from_millis(400);
        assert_eq!(s.ewma_us(), 0);
        assert_eq!(
            s.hedge_delay(0.95, min, max),
            max,
            "no samples: hedge waits the maximum"
        );
        for _ in 0..32 {
            s.observe_latency(Duration::from_millis(20), true);
        }
        let ewma = s.ewma_us();
        assert!(
            (15_000..=25_000).contains(&ewma),
            "EWMA converges to ~20ms, got {ewma}µs"
        );
        let d = s.hedge_delay(0.95, min, max);
        assert!(
            d >= min && d <= Duration::from_millis(30),
            "p95 of a steady 20ms stream clamps near 20ms, got {d:?}"
        );
        // One slow outlier barely moves the p50 but lifts the p95 tail.
        s.observe_latency(Duration::from_millis(500), true);
        let p50 = s.hedge_delay(0.5, min, max);
        assert!(
            p50 <= Duration::from_millis(30),
            "median stays low: {p50:?}"
        );
    }

    #[test]
    fn probe_latency_moves_the_ewma_but_not_the_hedge_window() {
        let s = ShardState::new("a");
        for _ in 0..LatencyWindow::MIN_SAMPLES + 4 {
            s.observe_latency(Duration::from_millis(1), false);
        }
        assert!(s.ewma_us() > 0, "probes feed the EWMA");
        let max = Duration::from_millis(400);
        assert_eq!(
            s.hedge_delay(0.95, Duration::from_millis(10), max),
            max,
            "probe-only samples must not arm the hedge quantile"
        );
    }

    #[test]
    fn health_score_prefers_fast_unblemished_shards() {
        let fast = ShardState::new("fast");
        let slow = ShardState::new("slow");
        let blemished = ShardState::new("blemished");
        fast.observe_latency(Duration::from_millis(5), true);
        slow.observe_latency(Duration::from_millis(50), true);
        blemished.observe_latency(Duration::from_millis(5), true);
        blemished.record_failure(10); // streak of 1, breaker still closed
        assert!(fast.health_score() < slow.health_score());
        assert!(fast.health_score() < blemished.health_score());
        let unknown = ShardState::new("unknown");
        assert!(
            unknown.health_score() > slow.health_score(),
            "no observations score as slow-but-clean, not perfect"
        );
    }

    #[test]
    fn deadline_histogram_buckets_by_upper_bound_and_counts_overflow() {
        let h = DeadlineHistogram::default();
        h.observe(0); // le_1
        h.observe(1); // le_1 (bounds are inclusive)
        h.observe(2); // le_5
        h.observe(75); // le_100
        h.observe(1000); // le_1000
        h.observe(30_000); // gt_1000
        assert_eq!(h.count(), 6);
        let j = h.to_json();
        assert_eq!(j.get("le_1").and_then(Json::as_u64), Some(2));
        assert_eq!(j.get("le_5").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("le_10").and_then(Json::as_u64), Some(0));
        assert_eq!(j.get("le_100").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("le_1000").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("gt_1000").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("count").and_then(Json::as_u64), Some(6));

        // The snapshot nests the histogram under its counter name.
        let snap = RouterMetrics::default().snapshot(&[]);
        assert_eq!(
            snap.get("deadline_propagated_ms")
                .and_then(|h| h.get("count"))
                .and_then(Json::as_u64),
            Some(0)
        );
        assert_eq!(
            snap.get("retry_budget_exhausted").and_then(Json::as_u64),
            Some(0)
        );
    }

    #[test]
    fn snapshot_reports_breaker_and_hedge_gauges() {
        let a = Arc::new(ShardState::new("a"));
        let b = Arc::new(ShardState::new("b"));
        b.record_failure(1);
        a.requests.store(7, Ordering::Relaxed);
        a.hedges.store(3, Ordering::Relaxed);
        a.hedge_wins.store(2, Ordering::Relaxed);
        a.observe_latency(Duration::from_millis(10), true);
        let m = RouterMetrics::default();
        RouterMetrics::bump(&m.requests);
        RouterMetrics::bump(&m.hedged_requests);
        RouterMetrics::bump(&m.shards_marked_down);
        let snap = m.snapshot(&[Arc::clone(&a), Arc::clone(&b)]);
        assert_eq!(field(&snap, "requests"), 1);
        assert_eq!(field(&snap, "hedged_requests"), 1);
        assert_eq!(field(&snap, "shards_marked_down"), 1);
        assert_eq!(field(&snap, "shards_up"), 1);
        assert_eq!(field(&snap, "shards_down"), 1);
        let shards = match snap.get("shards").and_then(Json::as_arr) {
            Some(arr) => arr,
            None => panic!("snapshot is missing the shards array: {snap}"),
        };
        assert_eq!(shards.len(), 2);
        assert_eq!(field_str(&shards[0], "endpoint"), "a");
        assert_eq!(field_str(&shards[0], "breaker"), "closed");
        assert_eq!(field(&shards[0], "requests"), 7);
        assert_eq!(field(&shards[0], "hedges"), 3);
        assert_eq!(field(&shards[0], "hedge_wins"), 2);
        assert!(field(&shards[0], "ewma_us") > 0);
        assert_eq!(field_str(&shards[1], "breaker"), "open");
        assert_eq!(field(&shards[1], "consecutive_failures"), 1);
    }
}
