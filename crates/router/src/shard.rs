//! Per-shard health state and the router's own counters.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

use dagsched_proto::json::Json;

/// Health and traffic counters for one shard.
#[derive(Debug)]
pub struct ShardState {
    /// The endpoint this shard was added with (`unix:/path` or
    /// `host:port`); also its ring identity.
    pub endpoint: String,
    /// Marked down after [`crate::RouterConfig::fail_threshold`]
    /// consecutive failures; any success marks it back up.
    down: AtomicBool,
    /// Failures since the last success.
    consecutive_failures: AtomicU32,
    /// Requests currently being forwarded to this shard.
    pub inflight: AtomicU64,
    /// Requests forwarded (any outcome).
    pub requests: AtomicU64,
    /// Forwarding failures (transport or exhausted retries).
    pub failures: AtomicU64,
    /// Requests that failed over *away* from this shard while it was
    /// in the key's replica set.
    pub failovers: AtomicU64,
    /// Replication writes delivered to this shard (as a ring
    /// successor).
    pub replication_writes: AtomicU64,
}

impl ShardState {
    /// Fresh state for `endpoint`, assumed up until proven otherwise.
    pub fn new(endpoint: impl Into<String>) -> ShardState {
        ShardState {
            endpoint: endpoint.into(),
            down: AtomicBool::new(false),
            consecutive_failures: AtomicU32::new(0),
            inflight: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            replication_writes: AtomicU64::new(0),
        }
    }

    /// Whether the health tracker currently believes the shard is up.
    pub fn is_up(&self) -> bool {
        !self.down.load(Ordering::Relaxed)
    }

    /// Record a successful interaction: failures reset, shard is up.
    /// Returns `true` when this flipped the shard from down to up.
    pub fn record_success(&self) -> bool {
        self.consecutive_failures.store(0, Ordering::Relaxed);
        self.down.swap(false, Ordering::Relaxed)
    }

    /// Record a failed interaction; past `threshold` consecutive
    /// failures the shard is marked down. Returns `true` when this
    /// call flipped it down.
    pub fn record_failure(&self, threshold: u32) -> bool {
        self.failures.fetch_add(1, Ordering::Relaxed);
        let streak = self.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if streak >= threshold {
            return !self.down.swap(true, Ordering::Relaxed);
        }
        false
    }

    /// This shard's gauge object in the metrics snapshot.
    pub fn to_json(&self) -> Json {
        let g = |c: &AtomicU64| Json::from(c.load(Ordering::Relaxed));
        Json::obj(vec![
            ("endpoint", Json::from(self.endpoint.as_str())),
            ("up", Json::from(self.is_up())),
            (
                "consecutive_failures",
                Json::from(u64::from(self.consecutive_failures.load(Ordering::Relaxed))),
            ),
            ("inflight", g(&self.inflight)),
            ("requests", g(&self.requests)),
            ("failures", g(&self.failures)),
            ("failovers", g(&self.failovers)),
            ("replication_writes", g(&self.replication_writes)),
        ])
    }
}

/// Router-level counters, exported over the `Metrics` frame in the
/// same shape as the daemon's (flat counters plus nested detail).
#[derive(Debug, Default)]
pub struct RouterMetrics {
    /// Client connections accepted.
    pub connections: AtomicU64,
    /// Schedule requests received from clients.
    pub requests: AtomicU64,
    /// Successful responses relayed back.
    pub responses: AtomicU64,
    /// Error replies sent (any code, any origin).
    pub errors: AtomicU64,
    /// Requests served by a non-primary ring replica after the primary
    /// failed.
    pub failovers: AtomicU64,
    /// Requests routed *outside* the key's replica set because the
    /// whole set was down (served as a cache miss, not an error).
    pub rerouted: AtomicU64,
    /// Replication writes delivered to ring successors.
    pub replication_writes: AtomicU64,
    /// Replication jobs dropped because the queue was full.
    pub replication_dropped: AtomicU64,
    /// Health probes performed.
    pub health_probes: AtomicU64,
    /// Times a shard was marked down (by probe or forwarding failure).
    pub shards_marked_down: AtomicU64,
    /// Shards added via admin (warm-spare promotions included).
    pub shards_added: AtomicU64,
    /// Shards removed via admin.
    pub shards_removed: AtomicU64,
    /// Cache entries installed on joining shards via snapshot shipping.
    pub warm_spare_entries_shipped: AtomicU64,
    /// Requests rejected because no live shard existed.
    pub no_live_shard: AtomicU64,
}

impl RouterMetrics {
    /// Increment a counter.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot every router counter plus the per-shard gauges.
    pub fn snapshot(&self, shards: &[std::sync::Arc<ShardState>]) -> Json {
        let g = |c: &AtomicU64| Json::from(c.load(Ordering::Relaxed));
        let up = shards.iter().filter(|s| s.is_up()).count() as u64;
        Json::obj(vec![
            ("connections", g(&self.connections)),
            ("requests", g(&self.requests)),
            ("responses", g(&self.responses)),
            ("errors", g(&self.errors)),
            ("failovers", g(&self.failovers)),
            ("rerouted", g(&self.rerouted)),
            ("replication_writes", g(&self.replication_writes)),
            ("replication_dropped", g(&self.replication_dropped)),
            ("health_probes", g(&self.health_probes)),
            ("shards_marked_down", g(&self.shards_marked_down)),
            ("shards_added", g(&self.shards_added)),
            ("shards_removed", g(&self.shards_removed)),
            (
                "warm_spare_entries_shipped",
                g(&self.warm_spare_entries_shipped),
            ),
            ("no_live_shard", g(&self.no_live_shard)),
            ("shards_up", Json::from(up)),
            ("shards_down", Json::from(shards.len() as u64 - up)),
            (
                "shards",
                Json::Arr(shards.iter().map(|s| s.to_json()).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn failure_streaks_mark_down_and_success_marks_up() {
        let s = ShardState::new("unix:/tmp/a.sock");
        assert!(s.is_up());
        assert!(!s.record_failure(3));
        assert!(!s.record_failure(3));
        assert!(s.record_failure(3), "third consecutive failure flips it");
        assert!(!s.is_up());
        assert!(!s.record_failure(3), "already down: no second flip");
        assert!(s.record_success(), "success flips it back up");
        assert!(s.is_up());
        assert!(!s.record_success(), "already up: no flip");
        // The streak was reset: two more failures do not mark it down.
        assert!(!s.record_failure(3));
        assert!(!s.record_failure(3));
        assert!(s.is_up());
    }

    #[test]
    fn snapshot_reports_per_shard_gauges_and_up_down_counts() {
        let a = Arc::new(ShardState::new("a"));
        let b = Arc::new(ShardState::new("b"));
        b.record_failure(1);
        a.requests.store(7, Ordering::Relaxed);
        a.replication_writes.store(2, Ordering::Relaxed);
        let m = RouterMetrics::default();
        RouterMetrics::bump(&m.requests);
        let snap = m.snapshot(&[a, b]);
        assert_eq!(snap.get("requests").unwrap().as_u64(), Some(1));
        assert_eq!(snap.get("shards_up").unwrap().as_u64(), Some(1));
        assert_eq!(snap.get("shards_down").unwrap().as_u64(), Some(1));
        let shards = snap.get("shards").unwrap().as_arr().unwrap();
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].get("endpoint").unwrap().as_str(), Some("a"));
        assert_eq!(shards[0].get("up").unwrap().as_bool(), Some(true));
        assert_eq!(shards[0].get("requests").unwrap().as_u64(), Some(7));
        assert_eq!(
            shards[0].get("replication_writes").unwrap().as_u64(),
            Some(2)
        );
        assert_eq!(shards[1].get("up").unwrap().as_bool(), Some(false));
    }
}
