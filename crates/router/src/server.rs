//! The router daemon: accept loop, request forwarding with the
//! failover ladder, background replication, health probing, and
//! membership administration.
//!
//! # Failover ladder
//!
//! A request's key is the FNV-1a hash of its canonical JSON (the
//! `attempt` counter zeroed — the same idempotency identity the
//! shards' cache and quarantine use), so the same request always lands
//! on the same shard and its schedule cache stays hot. The ladder:
//!
//! 1. **Primary**: the first ring replica, with bounded retry
//!    ([`Client::request_with_retry`]) and automatic redial.
//! 2. **Ring successors**: the remaining R−1 replicas, in ring order.
//!    Each hop counts as a `failover`.
//! 3. **Any live shard**: when the whole replica set is down the
//!    request is still served — as a cache miss on a foreign shard,
//!    counted `rerouted`, never an error.
//! 4. **No live shard at all**: a retryable `busy` error with a retry
//!    hint; clients ride it out with their own backoff.
//!
//! Requests the shard *rejected* (bad request, parse error,
//! quarantined, deadline expired) are relayed as-is without failover —
//! they would fail identically everywhere, and the rejection proves
//! the shard is healthy.
//!
//! # Replication
//!
//! A fresh compile on the primary (`cache_misses > 0` in the reply)
//! enqueues the same canonical request for the key's second ring
//! replica. A background replicator drains the queue and re-issues the
//! request there, warming the successor's cache so the primary's death
//! does not cold-start its working set. The queue is bounded; when
//! replication cannot keep up, jobs are dropped and counted
//! (`replication_dropped`) rather than backpressuring the serving path.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use dagsched_proto::json::Json;
use dagsched_proto::{
    hex_decode, read_frame_or_eof, write_frame, AdminCommand, ErrorCode, ErrorReply, FrameKind,
    FrameReadError, ScheduleRequest, ScheduleResponse, DEFAULT_MAX_FRAME,
};
use dagsched_service::client::{Client, ClientError, RetryPolicy};
use dagsched_service::server::Listen;

use crate::ring::{fnv64, Ring};
use crate::shard::{RouterMetrics, ShardState};

/// How often the accept loop re-checks the drain flag while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Retry hint attached to `busy` rejections when no shard is live.
const NO_SHARD_RETRY_MS: u64 = 200;

/// Retry hint attached to `draining` rejections.
const DRAIN_RETRY_MS: u64 = 500;

/// Socket timeout for health probes (a hung shard must not wedge the
/// prober).
const PROBE_TIMEOUT: Duration = Duration::from_millis(2000);

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Initial shard endpoints (`unix:/path` or `host:port`).
    pub shards: Vec<String>,
    /// Replica-set size R: a key's primary plus R−1 ring successors.
    pub replicas: usize,
    /// Consecutive failures (probe or forward) before a shard is
    /// marked down.
    pub fail_threshold: u32,
    /// Milliseconds between health-probe sweeps.
    pub health_check_ms: u64,
    /// Largest accepted frame payload (client side and shard side).
    pub max_frame: usize,
    /// Per-connection read timeout for idle clients.
    pub read_timeout_ms: u64,
    /// Install a SIGTERM handler that triggers a graceful drain.
    pub handle_sigterm: bool,
    /// Retry policy for shard dials and forwarded requests.
    pub shard_retry: RetryPolicy,
    /// Bounded replication-queue depth.
    pub replication_queue: usize,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            shards: Vec::new(),
            replicas: 2,
            fail_threshold: 3,
            health_check_ms: 500,
            max_frame: DEFAULT_MAX_FRAME,
            read_timeout_ms: 10_000,
            handle_sigterm: false,
            shard_retry: RetryPolicy {
                max_retries: 2,
                base_delay: Duration::from_millis(10),
                max_delay: Duration::from_millis(200),
                per_attempt_timeout: Some(Duration::from_secs(10)),
                overall_timeout: Some(Duration::from_secs(30)),
                jitter_seed: 0x0C1A_57E2,
            },
            replication_queue: 256,
        }
    }
}

/// Ring membership plus per-shard state, guarded as one unit so a
/// membership change can never leave them disagreeing.
struct Cluster {
    ring: Ring,
    shards: Vec<Arc<ShardState>>,
}

impl Cluster {
    fn state_of(&self, endpoint: &str) -> Option<Arc<ShardState>> {
        self.shards
            .iter()
            .find(|s| s.endpoint == endpoint)
            .cloned()
    }

    fn add(&mut self, endpoint: &str) -> bool {
        if !self.ring.add(endpoint) {
            return false;
        }
        self.shards.push(Arc::new(ShardState::new(endpoint)));
        true
    }

    fn remove(&mut self, endpoint: &str) -> bool {
        if !self.ring.remove(endpoint) {
            return false;
        }
        self.shards.retain(|s| s.endpoint != endpoint);
        true
    }
}

/// One replication job: warm `target` with the canonical request.
struct ReplJob {
    target: String,
    request: ScheduleRequest,
}

/// State shared by every router thread.
struct Shared {
    cluster: Mutex<Cluster>,
    metrics: RouterMetrics,
    drain: AtomicBool,
    replicas: usize,
    fail_threshold: u32,
    health_check_ms: u64,
    max_frame: usize,
    shard_retry: RetryPolicy,
}

impl Shared {
    fn lock_cluster(&self) -> std::sync::MutexGuard<'_, Cluster> {
        self.cluster
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn metrics_snapshot(&self) -> Json {
        let shards = self.lock_cluster().shards.clone();
        self.metrics.snapshot(&shards)
    }
}

/// Keep-alive connections to shards, one map per router thread (no
/// cross-thread sharing: a poisoned stream only affects its owner).
#[derive(Default)]
struct ShardConns {
    conns: HashMap<String, Client>,
}

impl ShardConns {
    /// Forward `req` to `endpoint`, dialing (with retry) on first use
    /// and dropping the cached connection on any failure.
    fn request(
        &mut self,
        endpoint: &str,
        req: &ScheduleRequest,
        policy: &RetryPolicy,
    ) -> Result<ScheduleResponse, ClientError> {
        if !self.conns.contains_key(endpoint) {
            let (client, _) = Client::connect_with_retry(endpoint, policy)?;
            self.conns.insert(endpoint.to_string(), client);
        }
        let client = self.conns.get_mut(endpoint).expect("inserted above");
        match client.request_with_retry(req, policy) {
            Ok((resp, _)) => Ok(resp),
            Err(e) => {
                // `request_with_retry` already redialed what it could;
                // whatever is left is not worth keeping.
                self.conns.remove(endpoint);
                Err(e)
            }
        }
    }

    /// Send one admin command to `endpoint` on a fresh or cached
    /// connection.
    fn admin(
        &mut self,
        endpoint: &str,
        cmd: &AdminCommand,
        policy: &RetryPolicy,
    ) -> Result<Json, ClientError> {
        if !self.conns.contains_key(endpoint) {
            let (client, _) = Client::connect_with_retry(endpoint, policy)?;
            client.set_io_timeout(policy.per_attempt_timeout);
            self.conns.insert(endpoint.to_string(), client);
        }
        let client = self.conns.get_mut(endpoint).expect("inserted above");
        match client.admin(cmd) {
            Ok(v) => Ok(v),
            Err(e) => {
                self.conns.remove(endpoint);
                Err(e)
            }
        }
    }
}

/// One accepted client connection (either transport).
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

impl Conn {
    fn set_read_timeout(&self, timeout: Duration) {
        match self {
            Conn::Tcp(s) => {
                let _ = s.set_read_timeout(Some(timeout));
            }
            #[cfg(unix)]
            Conn::Unix(s) => {
                let _ = s.set_read_timeout(Some(timeout));
            }
        }
    }
}

enum ListenerImpl {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl ListenerImpl {
    fn accept(&self) -> io::Result<Conn> {
        match self {
            ListenerImpl::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            #[cfg(unix)]
            ListenerImpl::Unix(l, _) => l.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }
}

/// A running router. Dropping the handle does *not* stop it; call
/// [`RouterHandle::begin_drain`] then [`RouterHandle::join`].
pub struct RouterHandle {
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
    local_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
}

impl RouterHandle {
    /// The bound TCP address (useful with port 0).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// An endpoint string a client can connect to.
    pub fn endpoint(&self) -> String {
        match (&self.local_addr, &self.unix_path) {
            (Some(addr), _) => format!("tcp:{addr}"),
            (None, Some(path)) => format!("unix:{}", path.display()),
            (None, None) => unreachable!("router listens somewhere"),
        }
    }

    /// Stop accepting connections and begin a graceful drain.
    pub fn begin_drain(&self) {
        self.shared.drain.store(true, Ordering::SeqCst);
    }

    /// Snapshot the router counters (including per-shard gauges).
    pub fn metrics(&self) -> Json {
        self.shared.metrics_snapshot()
    }

    /// Wait for the accept thread, connection threads, replicator and
    /// prober to finish (after a drain was triggered).
    pub fn join(mut self) {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// SIGTERM flag (written from the signal handler: lock-free only).
static SIGTERM_SEEN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_sigterm_handler() {
    extern "C" fn on_term(_sig: i32) {
        SIGTERM_SEEN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_term);
    }
}

#[cfg(not(unix))]
fn install_sigterm_handler() {}

/// Bind `listen` and start routing under `config`.
pub fn serve_router(listen: Listen, config: RouterConfig) -> io::Result<RouterHandle> {
    let (listener, local_addr, unix_path) = match listen {
        Listen::Tcp(addr) => {
            let l = TcpListener::bind(&addr)?;
            l.set_nonblocking(true)?;
            let bound = l.local_addr()?;
            (ListenerImpl::Tcp(l), Some(bound), None)
        }
        #[cfg(unix)]
        Listen::Unix(path) => {
            if path.exists() && UnixStream::connect(&path).is_err() {
                let _ = std::fs::remove_file(&path);
            }
            let l = UnixListener::bind(&path)?;
            l.set_nonblocking(true)?;
            (ListenerImpl::Unix(l, path.clone()), None, Some(path))
        }
        #[cfg(not(unix))]
        Listen::Unix(_) => {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            ))
        }
    };

    if config.handle_sigterm {
        install_sigterm_handler();
    }

    let mut cluster = Cluster {
        ring: Ring::new(),
        shards: Vec::new(),
    };
    for endpoint in &config.shards {
        cluster.add(endpoint);
    }

    let shared = Arc::new(Shared {
        cluster: Mutex::new(cluster),
        metrics: RouterMetrics::default(),
        drain: AtomicBool::new(false),
        replicas: config.replicas.max(1),
        fail_threshold: config.fail_threshold.max(1),
        health_check_ms: config.health_check_ms.max(50),
        max_frame: config.max_frame,
        shard_retry: config.shard_retry.clone(),
    });

    let (repl_tx, repl_rx) = sync_channel::<ReplJob>(config.replication_queue.max(1));
    let repl_shared = Arc::clone(&shared);
    let replicator = std::thread::Builder::new()
        .name("dagsched-replicator".to_string())
        .spawn(move || replicate_loop(repl_shared, repl_rx))?;

    let probe_shared = Arc::clone(&shared);
    let prober = std::thread::Builder::new()
        .name("dagsched-prober".to_string())
        .spawn(move || probe_loop(probe_shared))?;

    let accept_shared = Arc::clone(&shared);
    let read_timeout = Duration::from_millis(config.read_timeout_ms.max(1));
    let thread = std::thread::Builder::new()
        .name("dagsched-router-accept".to_string())
        .spawn(move || {
            accept_loop(listener, accept_shared, repl_tx, read_timeout);
            let _ = replicator.join();
            let _ = prober.join();
        })?;

    Ok(RouterHandle {
        shared,
        thread: Some(thread),
        local_addr,
        unix_path,
    })
}

fn accept_loop(
    listener: ListenerImpl,
    shared: Arc<Shared>,
    repl_tx: SyncSender<ReplJob>,
    read_timeout: Duration,
) {
    let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if SIGTERM_SEEN.load(Ordering::SeqCst) {
            shared.drain.store(true, Ordering::SeqCst);
        }
        if shared.drain.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok(conn) => {
                RouterMetrics::bump(&shared.metrics.connections);
                conn.set_read_timeout(read_timeout);
                let conn_shared = Arc::clone(&shared);
                let conn_tx = repl_tx.clone();
                match std::thread::Builder::new()
                    .name("dagsched-router-conn".to_string())
                    .spawn(move || serve_conn(&conn_shared, conn, conn_tx))
                {
                    Ok(handle) => conn_threads.push(handle),
                    Err(_) => { /* thread limit: drop the connection */ }
                }
                conn_threads.retain(|t| !t.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                conn_threads.retain(|t| !t.is_finished());
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    // Sweep the kernel's accept backlog with explicit `draining`
    // replies (same contract as the daemon: no accepted connection is
    // left hanging without an answer).
    loop {
        match listener.accept() {
            Ok(mut conn) => {
                RouterMetrics::bump(&shared.metrics.connections);
                RouterMetrics::bump(&shared.metrics.errors);
                let reply = ErrorReply::new(ErrorCode::Draining, "router is draining")
                    .with_retry_after_ms(DRAIN_RETRY_MS);
                let _ = write_frame(
                    &mut conn,
                    FrameKind::Error,
                    reply.to_json().to_string().as_bytes(),
                );
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    // In-flight connections finish their work (their loops observe the
    // drain flag after the current request).
    drop(repl_tx);
    for t in conn_threads {
        let _ = t.join();
    }
    #[cfg(unix)]
    if let ListenerImpl::Unix(_, path) = &listener {
        let _ = std::fs::remove_file(path);
    }
}

fn send_error(shared: &Shared, conn: &mut Conn, reply: &ErrorReply) {
    RouterMetrics::bump(&shared.metrics.errors);
    let _ = write_frame(
        conn,
        FrameKind::Error,
        reply.to_json().to_string().as_bytes(),
    );
}

fn send_ok(conn: &mut Conn, kind: FrameKind, payload: &Json) {
    let _ = write_frame(conn, kind, payload.to_string().as_bytes());
}

/// Serve one keep-alive client connection until EOF, error, or drain.
fn serve_conn(shared: &Shared, mut conn: Conn, repl_tx: SyncSender<ReplJob>) {
    let mut conns = ShardConns::default();
    let mut served = 0usize;
    loop {
        let frame = match read_frame_or_eof(&mut conn, shared.max_frame) {
            Ok(None) => return,
            Ok(Some(frame)) => frame,
            Err(FrameReadError::Oversized { len, max }) => {
                send_error(
                    shared,
                    &mut conn,
                    &ErrorReply::new(
                        ErrorCode::OversizedFrame,
                        format!("frame payload of {len} bytes exceeds the {max}-byte cap"),
                    ),
                );
                return;
            }
            Err(FrameReadError::Io(e))
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                return;
            }
            Err(e) => {
                send_error(
                    shared,
                    &mut conn,
                    &ErrorReply::new(ErrorCode::MalformedFrame, e.to_string()),
                );
                return;
            }
        };
        match frame {
            (FrameKind::Ping, _) => send_ok(&mut conn, FrameKind::Pong, &Json::Null),
            (FrameKind::Metrics, _) => {
                let snap = shared.metrics_snapshot();
                send_ok(&mut conn, FrameKind::Metrics, &snap);
            }
            (FrameKind::Shutdown, _) => {
                shared.drain.store(true, Ordering::SeqCst);
                send_ok(&mut conn, FrameKind::Pong, &Json::Null);
                return;
            }
            (FrameKind::Admin, payload) => {
                match handle_admin(shared, &mut conns, &payload) {
                    Ok(reply) => send_ok(&mut conn, FrameKind::AdminReply, &reply),
                    Err(reply) => send_error(shared, &mut conn, &reply),
                }
            }
            (FrameKind::Request, payload) => {
                RouterMetrics::bump(&shared.metrics.requests);
                if shared.drain.load(Ordering::SeqCst) && served > 0 {
                    send_error(
                        shared,
                        &mut conn,
                        &ErrorReply::new(ErrorCode::Draining, "router is draining")
                            .with_retry_after_ms(DRAIN_RETRY_MS),
                    );
                    return;
                }
                match forward_request(shared, &mut conns, &repl_tx, &payload) {
                    Ok(body) => {
                        RouterMetrics::bump(&shared.metrics.responses);
                        send_ok(&mut conn, FrameKind::Response, &body);
                    }
                    Err(reply) => send_error(shared, &mut conn, &reply),
                }
                served += 1;
            }
            (other, _) => {
                send_error(
                    shared,
                    &mut conn,
                    &ErrorReply::new(
                        ErrorCode::BadRequest,
                        format!("unexpected client frame kind {other:?}"),
                    ),
                );
                return;
            }
        }
    }
}

/// The routing key: FNV-1a of the canonical request JSON with the
/// `attempt` counter zeroed — the same idempotency identity the
/// shards' cache and quarantine key on, so retries and repeats land on
/// the same shard.
fn routing_key(req: &ScheduleRequest) -> (ScheduleRequest, u64) {
    let mut canonical = req.clone();
    canonical.attempt = 0;
    let key = fnv64(canonical.to_json().to_string().as_bytes());
    (canonical, key)
}

/// Walk the failover ladder for one request; returns the response body
/// to relay.
fn forward_request(
    shared: &Shared,
    conns: &mut ShardConns,
    repl_tx: &SyncSender<ReplJob>,
    payload: &[u8],
) -> Result<Json, ErrorReply> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| ErrorReply::new(ErrorCode::ParseError, "request payload is not UTF-8"))?;
    let value = Json::parse(text)
        .map_err(|e| ErrorReply::new(ErrorCode::ParseError, format!("request is not JSON: {e}")))?;
    let req = ScheduleRequest::from_json(&value)?;
    let (canonical, key) = routing_key(&req);

    // Snapshot the ladder under the lock, then forward without it.
    let (replicas, others): (Vec<Arc<ShardState>>, Vec<Arc<ShardState>>) = {
        let cluster = shared.lock_cluster();
        let replica_eps: Vec<String> = cluster
            .ring
            .replicas(key, shared.replicas)
            .into_iter()
            .map(str::to_string)
            .collect();
        let replicas = replica_eps
            .iter()
            .filter_map(|e| cluster.state_of(e))
            .collect();
        let others = cluster
            .shards
            .iter()
            .filter(|s| !replica_eps.contains(&s.endpoint))
            .cloned()
            .collect();
        (replicas, others)
    };
    if replicas.is_empty() {
        RouterMetrics::bump(&shared.metrics.no_live_shard);
        return Err(
            ErrorReply::new(ErrorCode::Busy, "router has no shards configured")
                .with_retry_after_ms(NO_SHARD_RETRY_MS),
        );
    }

    let primary = Arc::clone(&replicas[0]);
    let mut last_err: Option<ErrorReply> = None;
    // Rungs 1–2: the replica set in ring order; rung 3: everything
    // else that is live (`rerouted`). Down shards are skipped without
    // burning a dial, but when *nothing* is believed up we still try
    // the replica set once — the belief may be stale, and the prober
    // only revives shards every `health_check_ms`.
    let any_up = replicas.iter().chain(others.iter()).any(|s| s.is_up());
    for (tier, shard) in replicas
        .iter()
        .map(|s| (0usize, s))
        .chain(others.iter().filter(|s| s.is_up()).map(|s| (1usize, s)))
    {
        if tier == 0 && !shard.is_up() && any_up {
            RouterMetrics::bump(&shard.failovers);
            continue;
        }
        RouterMetrics::bump(&shard.requests);
        shard.inflight.fetch_add(1, Ordering::Relaxed);
        let outcome = conns.request(&shard.endpoint, &req, &shared.shard_retry);
        shard.inflight.fetch_sub(1, Ordering::Relaxed);
        match outcome {
            Ok(resp) => {
                if shard.record_success() {
                    // Flipped back up: the prober will confirm.
                }
                if !Arc::ptr_eq(shard, &primary) {
                    RouterMetrics::bump(if tier == 0 {
                        &shared.metrics.failovers
                    } else {
                        &shared.metrics.rerouted
                    });
                }
                // Replicate fresh compiles from the primary to its
                // first ring successor (R ≥ 2 and a successor exists).
                if Arc::ptr_eq(shard, &primary) && resp.stats.cache_misses > 0 {
                    if let Some(successor) = replicas.get(1) {
                        let mut repl_req = canonical.clone();
                        repl_req.sim = false;
                        repl_req.linger_ms = 0;
                        repl_req.debug_panic = false;
                        match repl_tx.try_send(ReplJob {
                            target: successor.endpoint.clone(),
                            request: repl_req,
                        }) {
                            Ok(()) => {}
                            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                                RouterMetrics::bump(&shared.metrics.replication_dropped);
                            }
                        }
                    }
                }
                return Ok(resp.to_json());
            }
            Err(ClientError::Server(reply)) if !reply.code.is_retryable() => {
                // The shard answered: it is healthy, the request is
                // not. Failing over would reproduce the same rejection.
                shard.record_success();
                return Err(reply);
            }
            Err(err) => {
                let transport = !matches!(err, ClientError::Server(_));
                if transport && shard.record_failure(shared.fail_threshold) {
                    RouterMetrics::bump(&shared.metrics.shards_marked_down);
                }
                RouterMetrics::bump(&shard.failovers);
                last_err = Some(match err {
                    ClientError::Server(reply) => reply,
                    other => ErrorReply::new(
                        ErrorCode::Internal,
                        format!("shard {} unreachable: {other}", shard.endpoint),
                    ),
                });
            }
        }
    }
    RouterMetrics::bump(&shared.metrics.no_live_shard);
    Err(last_err
        .unwrap_or_else(|| ErrorReply::new(ErrorCode::Busy, "no live shard"))
        // Every rung failed: whatever the last error was, the client
        // should treat the condition as transient and back off.
        .with_retry_after_ms(NO_SHARD_RETRY_MS))
}

/// Answer one router admin command (cluster membership; shard-level
/// snapshot commands are refused with a pointer to the right tier).
fn handle_admin(
    shared: &Shared,
    conns: &mut ShardConns,
    payload: &[u8],
) -> Result<Json, ErrorReply> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| ErrorReply::new(ErrorCode::ParseError, "admin payload is not UTF-8"))?;
    let value = Json::parse(text)
        .map_err(|e| ErrorReply::new(ErrorCode::ParseError, format!("admin payload is not JSON: {e}")))?;
    match AdminCommand::from_json(&value)? {
        AdminCommand::AddShard { endpoint } => {
            if shared.lock_cluster().ring.contains(&endpoint) {
                return Err(ErrorReply::new(
                    ErrorCode::BadRequest,
                    format!("shard {endpoint} is already a ring member"),
                ));
            }
            // Warm-spare promotion: ship a snapshot from a live donor
            // *before* the joiner takes ring ownership, so its first
            // owned requests hit a warm cache.
            let donor = {
                let cluster = shared.lock_cluster();
                cluster
                    .shards
                    .iter()
                    .find(|s| s.is_up() && s.endpoint != endpoint)
                    .map(|s| s.endpoint.clone())
            };
            let mut installed = 0u64;
            let mut donor_generation = 0u64;
            if let Some(donor_ep) = &donor {
                let exported = conns
                    .admin(donor_ep, &AdminCommand::SnapshotExport, &shared.shard_retry)
                    .map_err(|e| {
                        ErrorReply::new(
                            ErrorCode::Internal,
                            format!("snapshot export from donor {donor_ep} failed: {e}"),
                        )
                    })?;
                let shipment = exported
                    .get("shipment")
                    .and_then(Json::as_str)
                    .and_then(hex_decode)
                    .ok_or_else(|| {
                        ErrorReply::new(
                            ErrorCode::Internal,
                            format!("donor {donor_ep} returned an undecodable shipment"),
                        )
                    })?;
                donor_generation = exported
                    .get("generation")
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
                let installed_reply = conns
                    .admin(
                        &endpoint,
                        &AdminCommand::SnapshotInstall { shipment },
                        &shared.shard_retry,
                    )
                    .map_err(|e| {
                        ErrorReply::new(
                            ErrorCode::Internal,
                            format!("snapshot install on joining shard {endpoint} failed: {e}"),
                        )
                    })?;
                installed = installed_reply
                    .get("installed")
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
            }
            // Only now does the joiner take ring ownership.
            shared.lock_cluster().add(&endpoint);
            RouterMetrics::bump(&shared.metrics.shards_added);
            shared
                .metrics
                .warm_spare_entries_shipped
                .fetch_add(installed, Ordering::Relaxed);
            Ok(Json::obj(vec![
                ("ok", Json::from(true)),
                ("endpoint", Json::from(endpoint.as_str())),
                (
                    "donor",
                    donor.map(|d| Json::from(d.as_str())).unwrap_or(Json::Null),
                ),
                ("installed", Json::from(installed)),
                ("donor_generation", Json::from(donor_generation)),
            ]))
        }
        AdminCommand::RemoveShard { endpoint } => {
            if !shared.lock_cluster().remove(&endpoint) {
                return Err(ErrorReply::new(
                    ErrorCode::BadRequest,
                    format!("shard {endpoint} is not a ring member"),
                ));
            }
            RouterMetrics::bump(&shared.metrics.shards_removed);
            Ok(Json::obj(vec![
                ("ok", Json::from(true)),
                ("endpoint", Json::from(endpoint.as_str())),
            ]))
        }
        AdminCommand::Status => {
            let cluster = shared.lock_cluster();
            Ok(Json::obj(vec![
                ("ok", Json::from(true)),
                (
                    "members",
                    Json::Arr(
                        cluster
                            .ring
                            .members()
                            .into_iter()
                            .map(Json::from)
                            .collect(),
                    ),
                ),
                (
                    "shards",
                    Json::Arr(cluster.shards.iter().map(|s| s.to_json()).collect()),
                ),
            ]))
        }
        AdminCommand::SnapshotExport | AdminCommand::SnapshotInstall { .. } => {
            Err(ErrorReply::new(
                ErrorCode::BadRequest,
                "snapshot commands target a shard daemon directly, not the router",
            ))
        }
    }
}

/// Drain the replication queue: re-issue each fresh compile on the
/// key's ring successor so a primary death finds a warm replica.
fn replicate_loop(shared: Arc<Shared>, rx: Receiver<ReplJob>) {
    let mut conns = ShardConns::default();
    while let Ok(job) = rx.recv() {
        let Some(shard) = shared.lock_cluster().state_of(&job.target) else {
            continue; // target left the ring while queued
        };
        if !shard.is_up() {
            RouterMetrics::bump(&shared.metrics.replication_dropped);
            continue;
        }
        match conns.request(&job.target, &job.request, &shared.shard_retry) {
            Ok(_) => {
                shard.record_success();
                RouterMetrics::bump(&shard.replication_writes);
                RouterMetrics::bump(&shared.metrics.replication_writes);
            }
            Err(ClientError::Server(_)) => {
                // The shard is alive but refused (e.g. draining):
                // replication is best-effort, drop the job.
                RouterMetrics::bump(&shared.metrics.replication_dropped);
            }
            Err(_) => {
                if shard.record_failure(shared.fail_threshold) {
                    RouterMetrics::bump(&shared.metrics.shards_marked_down);
                }
                RouterMetrics::bump(&shared.metrics.replication_dropped);
            }
        }
    }
}

/// Periodically ping every shard: successes revive down shards,
/// failure streaks mark them down without waiting for a request to
/// stumble over them.
fn probe_loop(shared: Arc<Shared>) {
    while !shared.drain.load(Ordering::SeqCst) {
        let shards = shared.lock_cluster().shards.clone();
        for shard in shards {
            RouterMetrics::bump(&shared.metrics.health_probes);
            if probe(&shard.endpoint) {
                shard.record_success();
            } else if shard.record_failure(shared.fail_threshold) {
                RouterMetrics::bump(&shared.metrics.shards_marked_down);
            }
        }
        // Sleep in small steps so a drain is honoured promptly.
        let mut slept = 0u64;
        while slept < shared.health_check_ms && !shared.drain.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(25));
            slept += 25;
        }
    }
}

/// One liveness probe: dial + ping with a bounded socket timeout.
fn probe(endpoint: &str) -> bool {
    match Client::connect(endpoint) {
        Ok(mut client) => {
            client.set_io_timeout(Some(PROBE_TIMEOUT));
            client.ping().is_ok()
        }
        Err(_) => false,
    }
}

/// Re-export for binaries that parse endpoint strings.
pub use dagsched_service::server::parse_endpoint as parse_router_endpoint;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_key_ignores_the_attempt_counter() {
        let mut a = ScheduleRequest::asm("add %o0, %o1, %o2");
        let mut b = a.clone();
        a.attempt = 0;
        b.attempt = 5;
        assert_eq!(routing_key(&a).1, routing_key(&b).1);
        let c = ScheduleRequest::asm("sub %o0, %o1, %o2");
        assert_ne!(routing_key(&a).1, routing_key(&c).1);
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = RouterConfig::default();
        assert_eq!(cfg.replicas, 2);
        assert!(cfg.fail_threshold >= 1);
        assert!(cfg.shard_retry.max_retries >= 1);
        assert!(cfg.replication_queue > 0);
    }
}
