//! The router daemon: a readiness-driven front end (the same
//! [`Reactor`] the shard daemon runs on), request forwarding with the
//! failover ladder, background replication, health probing, and
//! membership administration.
//!
//! # Front end
//!
//! One reactor thread owns every client socket: nonblocking accepts,
//! incremental frame decode, buffered writes, idle and slow-loris
//! timeouts. `Ping`/`Metrics`/`Shutdown` are answered inline; `Request`
//! and `Admin` frames are pushed onto a bounded job queue served by a
//! small pool of forwarding workers (each owning its keep-alive shard
//! connections), so one slow shard dial no longer stalls every other
//! client on the same connection thread. When the queue is full the
//! client gets a retryable `busy` with a hint instead of silence.
//!
//! # Failover ladder
//!
//! A request's key is the FNV-1a hash of its canonical JSON (the
//! `attempt` counter zeroed — the same idempotency identity the
//! shards' cache and quarantine use), so the same request always lands
//! on the same shard and its schedule cache stays hot. The ladder:
//!
//! 1. **Primary**: the first ring replica, with bounded retry
//!    ([`Client::request_with_retry`]) and automatic redial.
//! 2. **Ring successors**: the remaining R−1 replicas, in ring order.
//!    Each hop counts as a `failover`.
//! 3. **Any live shard**: when the whole replica set is down the
//!    request is still served — as a cache miss on a foreign shard,
//!    counted `rerouted`, never an error.
//! 4. **No live shard at all**: a retryable `busy` error with a retry
//!    hint; clients ride it out with their own backoff.
//!
//! Requests the shard *rejected* (bad request, parse error,
//! quarantined, deadline expired) are relayed as-is without failover —
//! they would fail identically everywhere, and the rejection proves
//! the shard is healthy.
//!
//! # Replication
//!
//! A fresh compile on the primary (`cache_misses > 0` in the reply)
//! enqueues the same canonical request for the key's second ring
//! replica. A background replicator drains the queue and re-issues the
//! request there, warming the successor's cache so the primary's death
//! does not cold-start its working set. The queue is bounded; when
//! replication cannot keep up, jobs are dropped and counted
//! (`replication_dropped`) rather than backpressuring the serving path.

use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use dagsched_proto::json::Json;
use dagsched_proto::{
    hex_decode, write_frame, AdminCommand, ErrorCode, ErrorReply, FrameKind, ScheduleRequest,
    ScheduleResponse, DEFAULT_MAX_FRAME, FRAME_HEADER_LEN,
};
use dagsched_service::client::{Client, ClientError, RetryPolicy};
use dagsched_service::pipeline::{PushError, StageQueue};
use dagsched_service::reactor::{
    install_sigterm_handler, Completion, Completions, ConnId, Ctx, Handler, Listener, Reactor,
    ReactorConfig,
};
use dagsched_service::server::Listen;

use crate::ring::{fnv64, Ring};
use crate::shard::{RouterMetrics, ShardState};

/// Retry hint attached to `busy` rejections when no shard is live.
const NO_SHARD_RETRY_MS: u64 = 200;

/// Retry hint attached to `busy` rejections when the forwarding queue
/// is full.
const BUSY_RETRY_MS: u64 = 50;

/// Retry hint attached to `draining` rejections.
const DRAIN_RETRY_MS: u64 = 500;

/// Socket timeout for health probes (a hung shard must not wedge the
/// prober).
const PROBE_TIMEOUT: Duration = Duration::from_millis(2000);

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Initial shard endpoints (`unix:/path` or `host:port`).
    pub shards: Vec<String>,
    /// Replica-set size R: a key's primary plus R−1 ring successors.
    pub replicas: usize,
    /// Consecutive failures (probe or forward) before a shard is
    /// marked down.
    pub fail_threshold: u32,
    /// Milliseconds between health-probe sweeps.
    pub health_check_ms: u64,
    /// Largest accepted frame payload (client side and shard side).
    pub max_frame: usize,
    /// Per-connection read timeout for idle clients (silent close
    /// between frames).
    pub read_timeout_ms: u64,
    /// Slow-loris bound: a connection stalled inside a frame (or that
    /// never completed one) gets a typed `idle-timeout` error.
    pub first_frame_timeout_ms: u64,
    /// Install a SIGTERM handler that triggers a graceful drain.
    pub handle_sigterm: bool,
    /// Retry policy for shard dials and forwarded requests.
    pub shard_retry: RetryPolicy,
    /// Bounded replication-queue depth.
    pub replication_queue: usize,
    /// Forwarding worker threads (each owns its shard connections).
    pub workers: usize,
    /// Bounded forwarding-queue depth; beyond it clients get `busy`.
    pub queue: usize,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            shards: Vec::new(),
            replicas: 2,
            fail_threshold: 3,
            health_check_ms: 500,
            max_frame: DEFAULT_MAX_FRAME,
            read_timeout_ms: 10_000,
            first_frame_timeout_ms: 2_000,
            handle_sigterm: false,
            shard_retry: RetryPolicy {
                max_retries: 2,
                base_delay: Duration::from_millis(10),
                max_delay: Duration::from_millis(200),
                per_attempt_timeout: Some(Duration::from_secs(10)),
                overall_timeout: Some(Duration::from_secs(30)),
                jitter_seed: 0x0C1A_57E2,
            },
            replication_queue: 256,
            workers: 4,
            queue: 256,
        }
    }
}

/// Ring membership plus per-shard state, guarded as one unit so a
/// membership change can never leave them disagreeing.
struct Cluster {
    ring: Ring,
    shards: Vec<Arc<ShardState>>,
}

impl Cluster {
    fn state_of(&self, endpoint: &str) -> Option<Arc<ShardState>> {
        self.shards
            .iter()
            .find(|s| s.endpoint == endpoint)
            .cloned()
    }

    fn add(&mut self, endpoint: &str) -> bool {
        if !self.ring.add(endpoint) {
            return false;
        }
        self.shards.push(Arc::new(ShardState::new(endpoint)));
        true
    }

    fn remove(&mut self, endpoint: &str) -> bool {
        if !self.ring.remove(endpoint) {
            return false;
        }
        self.shards.retain(|s| s.endpoint != endpoint);
        true
    }
}

/// One replication job: warm `target` with the canonical request.
struct ReplJob {
    target: String,
    request: ScheduleRequest,
}

/// State shared by every router thread.
struct Shared {
    cluster: Mutex<Cluster>,
    metrics: RouterMetrics,
    /// Shared with the reactor (which also flips it on SIGTERM).
    drain: Arc<AtomicBool>,
    replicas: usize,
    fail_threshold: u32,
    health_check_ms: u64,
    shard_retry: RetryPolicy,
}

impl Shared {
    fn lock_cluster(&self) -> std::sync::MutexGuard<'_, Cluster> {
        self.cluster
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn metrics_snapshot(&self) -> Json {
        let shards = self.lock_cluster().shards.clone();
        self.metrics.snapshot(&shards)
    }
}

/// Keep-alive connections to shards, one map per forwarding worker (no
/// cross-thread sharing: a poisoned stream only affects its owner).
#[derive(Default)]
struct ShardConns {
    conns: HashMap<String, Client>,
}

impl ShardConns {
    /// Forward `req` to `endpoint`, dialing (with retry) on first use
    /// and dropping the cached connection on any failure.
    fn request(
        &mut self,
        endpoint: &str,
        req: &ScheduleRequest,
        policy: &RetryPolicy,
    ) -> Result<ScheduleResponse, ClientError> {
        if !self.conns.contains_key(endpoint) {
            let (client, _) = Client::connect_with_retry(endpoint, policy)?;
            self.conns.insert(endpoint.to_string(), client);
        }
        let client = self.conns.get_mut(endpoint).expect("inserted above");
        match client.request_with_retry(req, policy) {
            Ok((resp, _)) => Ok(resp),
            Err(e) => {
                // `request_with_retry` already redialed what it could;
                // whatever is left is not worth keeping.
                self.conns.remove(endpoint);
                Err(e)
            }
        }
    }

    /// Send one admin command to `endpoint` on a fresh or cached
    /// connection.
    fn admin(
        &mut self,
        endpoint: &str,
        cmd: &AdminCommand,
        policy: &RetryPolicy,
    ) -> Result<Json, ClientError> {
        if !self.conns.contains_key(endpoint) {
            let (client, _) = Client::connect_with_retry(endpoint, policy)?;
            client.set_io_timeout(policy.per_attempt_timeout);
            self.conns.insert(endpoint.to_string(), client);
        }
        let client = self.conns.get_mut(endpoint).expect("inserted above");
        match client.admin(cmd) {
            Ok(v) => Ok(v),
            Err(e) => {
                self.conns.remove(endpoint);
                Err(e)
            }
        }
    }
}

/// A running router. Dropping the handle does *not* stop it; call
/// [`RouterHandle::begin_drain`] then [`RouterHandle::join`].
pub struct RouterHandle {
    shared: Arc<Shared>,
    completions: Arc<Completions>,
    thread: Option<JoinHandle<()>>,
    local_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
}

impl RouterHandle {
    /// The bound TCP address (useful with port 0).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// An endpoint string a client can connect to.
    pub fn endpoint(&self) -> String {
        match (&self.local_addr, &self.unix_path) {
            (Some(addr), _) => format!("tcp:{addr}"),
            (None, Some(path)) => format!("unix:{}", path.display()),
            (None, None) => unreachable!("router listens somewhere"),
        }
    }

    /// Stop accepting connections and begin a graceful drain.
    pub fn begin_drain(&self) {
        self.shared.drain.store(true, Ordering::SeqCst);
        // Interrupt the poll so the drain starts on this tick, not the
        // next timeout.
        self.completions.wake();
    }

    /// Snapshot the router counters (including per-shard gauges).
    pub fn metrics(&self) -> Json {
        self.shared.metrics_snapshot()
    }

    /// Wait for the reactor, forwarding workers, replicator and prober
    /// to finish (after a drain was triggered).
    pub fn join(mut self) {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// One offloaded frame: answered later via a [`Completion`].
struct RouterJob {
    conn: ConnId,
    work: Work,
}

enum Work {
    Request(Vec<u8>),
    Admin(Vec<u8>),
}

/// Encode one complete wire frame (the worker threads build replies
/// off the reactor thread).
fn encode_frame(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(payload.len().saturating_add(FRAME_HEADER_LEN));
    let _ = write_frame(&mut frame, kind, payload);
    frame
}

/// Forwarding worker: pops job batches, walks the failover ladder (or
/// runs the admin command) with its own keep-alive shard connections,
/// and pushes the encoded reply back to the reactor.
fn worker_loop(
    shared: Arc<Shared>,
    queue: Arc<StageQueue<RouterJob>>,
    completions: Arc<Completions>,
    inflight: Arc<AtomicU64>,
    repl_tx: SyncSender<ReplJob>,
) {
    let mut conns = ShardConns::default();
    let mut batch = Vec::new();
    while queue.pop_batch(&mut batch) {
        for job in batch.drain(..) {
            let bytes = match job.work {
                Work::Request(payload) => {
                    match forward_request(&shared, &mut conns, &repl_tx, &payload) {
                        Ok(body) => {
                            RouterMetrics::bump(&shared.metrics.responses);
                            encode_frame(FrameKind::Response, body.to_string().as_bytes())
                        }
                        Err(reply) => {
                            RouterMetrics::bump(&shared.metrics.errors);
                            encode_frame(FrameKind::Error, reply.to_json().to_string().as_bytes())
                        }
                    }
                }
                Work::Admin(payload) => match handle_admin(&shared, &mut conns, &payload) {
                    Ok(reply) => encode_frame(FrameKind::AdminReply, reply.to_string().as_bytes()),
                    Err(reply) => {
                        RouterMetrics::bump(&shared.metrics.errors);
                        encode_frame(FrameKind::Error, reply.to_json().to_string().as_bytes())
                    }
                },
            };
            // Push the completion *before* the inflight decrement: the
            // drain must never observe `idle` while a reply exists only
            // on this stack frame.
            completions.push(Completion {
                conn: job.conn,
                bytes,
                close: false,
            });
            inflight.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Protocol logic the router plugs into the [`Reactor`].
struct RouterHandler {
    shared: Arc<Shared>,
    queue: Arc<StageQueue<RouterJob>>,
    completions: Arc<Completions>,
    inflight: Arc<AtomicU64>,
}

impl RouterHandler {
    fn enqueue(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, work: Work) {
        match self.queue.try_push(RouterJob { conn, work }) {
            Ok(()) => {
                // Exactly one completion will come back for this job.
                self.inflight.fetch_add(1, Ordering::SeqCst);
                ctx.expect_reply(conn);
            }
            Err(PushError::Full(_)) => {
                RouterMetrics::bump(&self.shared.metrics.errors);
                ctx.send_error(
                    conn,
                    &ErrorReply::new(
                        ErrorCode::Busy,
                        "router workers busy and the queue is full; retry later",
                    )
                    .with_retry_after_ms(BUSY_RETRY_MS),
                );
            }
            Err(PushError::Closed(_)) => {
                RouterMetrics::bump(&self.shared.metrics.errors);
                ctx.send_error(
                    conn,
                    &ErrorReply::new(ErrorCode::Draining, "router is draining")
                        .with_retry_after_ms(DRAIN_RETRY_MS),
                );
                ctx.close_after_flush(conn);
            }
        }
    }
}

impl Handler for RouterHandler {
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, kind: FrameKind, payload: Vec<u8>) {
        match kind {
            FrameKind::Ping => {
                ctx.send(conn, FrameKind::Pong, Json::Null.to_string().as_bytes());
            }
            FrameKind::Metrics => {
                let snap = self.shared.metrics_snapshot().to_string();
                ctx.send(conn, FrameKind::Metrics, snap.as_bytes());
            }
            FrameKind::Shutdown => {
                ctx.begin_drain();
                self.completions.wake();
                ctx.send(conn, FrameKind::Pong, Json::Null.to_string().as_bytes());
                ctx.close_after_flush(conn);
            }
            FrameKind::Admin => self.enqueue(ctx, conn, Work::Admin(payload)),
            FrameKind::Request => {
                RouterMetrics::bump(&self.shared.metrics.requests);
                if ctx.draining() && ctx.requests_seen(conn) > 0 {
                    // In-flight work is completed during a drain, but a
                    // connection that already got its answer is asked
                    // to go away.
                    RouterMetrics::bump(&self.shared.metrics.errors);
                    ctx.send_error(
                        conn,
                        &ErrorReply::new(ErrorCode::Draining, "router is draining")
                            .with_retry_after_ms(DRAIN_RETRY_MS),
                    );
                    if !ctx.has_pending(conn) {
                        ctx.close_after_flush(conn);
                    }
                    return;
                }
                ctx.note_request(conn);
                self.enqueue(ctx, conn, Work::Request(payload));
            }
            other => {
                RouterMetrics::bump(&self.shared.metrics.errors);
                ctx.send_error(
                    conn,
                    &ErrorReply::new(
                        ErrorCode::BadRequest,
                        format!("unexpected client frame kind {other:?}"),
                    ),
                );
                ctx.close_after_flush(conn);
            }
        }
    }

    fn on_accept(&mut self) {
        RouterMetrics::bump(&self.shared.metrics.connections);
    }

    fn on_drain_reject(&mut self) {
        // `on_accept` already counted the connection.
        RouterMetrics::bump(&self.shared.metrics.errors);
    }

    fn on_frame_error(&mut self, _reply: &ErrorReply) {
        RouterMetrics::bump(&self.shared.metrics.errors);
    }

    fn on_idle_timeout(&mut self) {
        RouterMetrics::bump(&self.shared.metrics.errors);
    }

    fn idle(&self) -> bool {
        self.inflight.load(Ordering::SeqCst) == 0
    }
}

/// Bind `listen` and start routing under `config`.
pub fn serve_router(listen: Listen, config: RouterConfig) -> io::Result<RouterHandle> {
    let (listener, local_addr, unix_path) = Listener::bind(listen)?;

    if config.handle_sigterm {
        install_sigterm_handler();
    }

    let mut cluster = Cluster {
        ring: Ring::new(),
        shards: Vec::new(),
    };
    for endpoint in &config.shards {
        cluster.add(endpoint);
    }

    let drain = Arc::new(AtomicBool::new(false));
    let shared = Arc::new(Shared {
        cluster: Mutex::new(cluster),
        metrics: RouterMetrics::default(),
        drain: Arc::clone(&drain),
        replicas: config.replicas.max(1),
        fail_threshold: config.fail_threshold.max(1),
        health_check_ms: config.health_check_ms.max(50),
        shard_retry: config.shard_retry.clone(),
    });

    let reactor = Reactor::new(
        listener,
        ReactorConfig {
            max_frame: config.max_frame,
            idle_timeout: Duration::from_millis(config.read_timeout_ms.max(1)),
            first_frame_timeout: Duration::from_millis(config.first_frame_timeout_ms.max(1)),
            drain_message: "router is draining",
            drain_retry_ms: DRAIN_RETRY_MS,
        },
        Arc::clone(&drain),
    )?;
    let completions = reactor.completions();

    let (repl_tx, repl_rx) = sync_channel::<ReplJob>(config.replication_queue.max(1));
    let repl_shared = Arc::clone(&shared);
    let replicator = std::thread::Builder::new()
        .name("dagsched-replicator".to_string())
        .spawn(move || replicate_loop(repl_shared, repl_rx))?;

    let probe_shared = Arc::clone(&shared);
    let prober = std::thread::Builder::new()
        .name("dagsched-prober".to_string())
        .spawn(move || probe_loop(probe_shared))?;

    let worker_count = config.workers.max(1);
    let queue = Arc::new(StageQueue::<RouterJob>::new(
        config.queue.max(1),
        worker_count,
    ));
    let inflight = Arc::new(AtomicU64::new(0));
    let mut workers = Vec::new();
    let mut spawn_all = || -> io::Result<()> {
        for i in 0..worker_count {
            let s = Arc::clone(&shared);
            let q = Arc::clone(&queue);
            let c = Arc::clone(&completions);
            let inf = Arc::clone(&inflight);
            let tx = repl_tx.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("dagsched-router-{i}"))
                    .spawn(move || worker_loop(s, q, c, inf, tx))?,
            );
        }
        Ok(())
    };
    // The workers hold the only long-lived senders: once they are
    // joined the replicator's receiver disconnects and it exits after
    // draining its queue.
    let spawned = spawn_all();
    drop(repl_tx);
    if let Err(e) = spawned {
        drain.store(true, Ordering::SeqCst);
        queue.close();
        for h in workers {
            let _ = h.join();
        }
        let _ = replicator.join();
        let _ = prober.join();
        return Err(e);
    }

    let handler_shared = Arc::clone(&shared);
    let handler_queue = Arc::clone(&queue);
    let handler_completions = Arc::clone(&completions);
    let handler_inflight = Arc::clone(&inflight);
    let cleanup_path = reactor.unix_path();
    let thread = match std::thread::Builder::new()
        .name("dagsched-router".to_string())
        .spawn(move || {
            let mut handler = RouterHandler {
                shared: handler_shared,
                queue: handler_queue,
                completions: handler_completions,
                inflight: handler_inflight,
            };
            reactor.run(&mut handler);
            // Drain finished: no new jobs can arrive. Close the queue
            // so the workers exit, then let the replicator finish its
            // backlog and the prober notice the drain flag.
            handler.queue.close();
            for h in workers {
                let _ = h.join();
            }
            let _ = replicator.join();
            let _ = prober.join();
            #[cfg(unix)]
            if let Some(path) = &cleanup_path {
                let _ = std::fs::remove_file(path);
            }
            #[cfg(not(unix))]
            let _ = cleanup_path;
        }) {
        Ok(t) => t,
        Err(e) => {
            drain.store(true, Ordering::SeqCst);
            queue.close();
            return Err(e);
        }
    };

    Ok(RouterHandle {
        shared,
        completions,
        thread: Some(thread),
        local_addr,
        unix_path,
    })
}

/// The routing key: FNV-1a of the canonical request JSON with the
/// `attempt` counter zeroed — the same idempotency identity the
/// shards' cache and quarantine key on, so retries and repeats land on
/// the same shard.
fn routing_key(req: &ScheduleRequest) -> (ScheduleRequest, u64) {
    let mut canonical = req.clone();
    canonical.attempt = 0;
    let key = fnv64(canonical.to_json().to_string().as_bytes());
    (canonical, key)
}

/// Walk the failover ladder for one request; returns the response body
/// to relay.
fn forward_request(
    shared: &Shared,
    conns: &mut ShardConns,
    repl_tx: &SyncSender<ReplJob>,
    payload: &[u8],
) -> Result<Json, ErrorReply> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| ErrorReply::new(ErrorCode::ParseError, "request payload is not UTF-8"))?;
    let value = Json::parse(text)
        .map_err(|e| ErrorReply::new(ErrorCode::ParseError, format!("request is not JSON: {e}")))?;
    let req = ScheduleRequest::from_json(&value)?;
    let (canonical, key) = routing_key(&req);

    // Snapshot the ladder under the lock, then forward without it.
    let (replicas, others): (Vec<Arc<ShardState>>, Vec<Arc<ShardState>>) = {
        let cluster = shared.lock_cluster();
        let replica_eps: Vec<String> = cluster
            .ring
            .replicas(key, shared.replicas)
            .into_iter()
            .map(str::to_string)
            .collect();
        let replicas = replica_eps
            .iter()
            .filter_map(|e| cluster.state_of(e))
            .collect();
        let others = cluster
            .shards
            .iter()
            .filter(|s| !replica_eps.contains(&s.endpoint))
            .cloned()
            .collect();
        (replicas, others)
    };
    if replicas.is_empty() {
        RouterMetrics::bump(&shared.metrics.no_live_shard);
        return Err(
            ErrorReply::new(ErrorCode::Busy, "router has no shards configured")
                .with_retry_after_ms(NO_SHARD_RETRY_MS),
        );
    }

    let primary = Arc::clone(&replicas[0]);
    let mut last_err: Option<ErrorReply> = None;
    // Rungs 1–2: the replica set in ring order; rung 3: everything
    // else that is live (`rerouted`). Down shards are skipped without
    // burning a dial, but when *nothing* is believed up we still try
    // the replica set once — the belief may be stale, and the prober
    // only revives shards every `health_check_ms`.
    let any_up = replicas.iter().chain(others.iter()).any(|s| s.is_up());
    for (tier, shard) in replicas
        .iter()
        .map(|s| (0usize, s))
        .chain(others.iter().filter(|s| s.is_up()).map(|s| (1usize, s)))
    {
        if tier == 0 && !shard.is_up() && any_up {
            RouterMetrics::bump(&shard.failovers);
            continue;
        }
        RouterMetrics::bump(&shard.requests);
        shard.inflight.fetch_add(1, Ordering::Relaxed);
        let outcome = conns.request(&shard.endpoint, &req, &shared.shard_retry);
        shard.inflight.fetch_sub(1, Ordering::Relaxed);
        match outcome {
            Ok(resp) => {
                if shard.record_success() {
                    // Flipped back up: the prober will confirm.
                }
                if !Arc::ptr_eq(shard, &primary) {
                    RouterMetrics::bump(if tier == 0 {
                        &shared.metrics.failovers
                    } else {
                        &shared.metrics.rerouted
                    });
                }
                // Replicate fresh compiles from the primary to its
                // first ring successor (R ≥ 2 and a successor exists).
                if Arc::ptr_eq(shard, &primary) && resp.stats.cache_misses > 0 {
                    if let Some(successor) = replicas.get(1) {
                        let mut repl_req = canonical.clone();
                        repl_req.sim = false;
                        repl_req.linger_ms = 0;
                        repl_req.debug_panic = false;
                        match repl_tx.try_send(ReplJob {
                            target: successor.endpoint.clone(),
                            request: repl_req,
                        }) {
                            Ok(()) => {}
                            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                                RouterMetrics::bump(&shared.metrics.replication_dropped);
                            }
                        }
                    }
                }
                return Ok(resp.to_json());
            }
            Err(ClientError::Server(reply)) if !reply.code.is_retryable() => {
                // The shard answered: it is healthy, the request is
                // not. Failing over would reproduce the same rejection.
                shard.record_success();
                return Err(reply);
            }
            Err(err) => {
                let transport = !matches!(err, ClientError::Server(_));
                if transport && shard.record_failure(shared.fail_threshold) {
                    RouterMetrics::bump(&shared.metrics.shards_marked_down);
                }
                RouterMetrics::bump(&shard.failovers);
                last_err = Some(match err {
                    ClientError::Server(reply) => reply,
                    other => ErrorReply::new(
                        ErrorCode::Internal,
                        format!("shard {} unreachable: {other}", shard.endpoint),
                    ),
                });
            }
        }
    }
    RouterMetrics::bump(&shared.metrics.no_live_shard);
    Err(last_err
        .unwrap_or_else(|| ErrorReply::new(ErrorCode::Busy, "no live shard"))
        // Every rung failed: whatever the last error was, the client
        // should treat the condition as transient and back off.
        .with_retry_after_ms(NO_SHARD_RETRY_MS))
}

/// Answer one router admin command (cluster membership; shard-level
/// snapshot commands are refused with a pointer to the right tier).
fn handle_admin(
    shared: &Shared,
    conns: &mut ShardConns,
    payload: &[u8],
) -> Result<Json, ErrorReply> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| ErrorReply::new(ErrorCode::ParseError, "admin payload is not UTF-8"))?;
    let value = Json::parse(text)
        .map_err(|e| ErrorReply::new(ErrorCode::ParseError, format!("admin payload is not JSON: {e}")))?;
    match AdminCommand::from_json(&value)? {
        AdminCommand::AddShard { endpoint } => {
            if shared.lock_cluster().ring.contains(&endpoint) {
                return Err(ErrorReply::new(
                    ErrorCode::BadRequest,
                    format!("shard {endpoint} is already a ring member"),
                ));
            }
            // Warm-spare promotion: ship a snapshot from a live donor
            // *before* the joiner takes ring ownership, so its first
            // owned requests hit a warm cache.
            let donor = {
                let cluster = shared.lock_cluster();
                cluster
                    .shards
                    .iter()
                    .find(|s| s.is_up() && s.endpoint != endpoint)
                    .map(|s| s.endpoint.clone())
            };
            let mut installed = 0u64;
            let mut donor_generation = 0u64;
            if let Some(donor_ep) = &donor {
                let exported = conns
                    .admin(donor_ep, &AdminCommand::SnapshotExport, &shared.shard_retry)
                    .map_err(|e| {
                        ErrorReply::new(
                            ErrorCode::Internal,
                            format!("snapshot export from donor {donor_ep} failed: {e}"),
                        )
                    })?;
                let shipment = exported
                    .get("shipment")
                    .and_then(Json::as_str)
                    .and_then(hex_decode)
                    .ok_or_else(|| {
                        ErrorReply::new(
                            ErrorCode::Internal,
                            format!("donor {donor_ep} returned an undecodable shipment"),
                        )
                    })?;
                donor_generation = exported
                    .get("generation")
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
                let installed_reply = conns
                    .admin(
                        &endpoint,
                        &AdminCommand::SnapshotInstall { shipment },
                        &shared.shard_retry,
                    )
                    .map_err(|e| {
                        ErrorReply::new(
                            ErrorCode::Internal,
                            format!("snapshot install on joining shard {endpoint} failed: {e}"),
                        )
                    })?;
                installed = installed_reply
                    .get("installed")
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
            }
            // Only now does the joiner take ring ownership.
            shared.lock_cluster().add(&endpoint);
            RouterMetrics::bump(&shared.metrics.shards_added);
            shared
                .metrics
                .warm_spare_entries_shipped
                .fetch_add(installed, Ordering::Relaxed);
            Ok(Json::obj(vec![
                ("ok", Json::from(true)),
                ("endpoint", Json::from(endpoint.as_str())),
                (
                    "donor",
                    donor.map(|d| Json::from(d.as_str())).unwrap_or(Json::Null),
                ),
                ("installed", Json::from(installed)),
                ("donor_generation", Json::from(donor_generation)),
            ]))
        }
        AdminCommand::RemoveShard { endpoint } => {
            if !shared.lock_cluster().remove(&endpoint) {
                return Err(ErrorReply::new(
                    ErrorCode::BadRequest,
                    format!("shard {endpoint} is not a ring member"),
                ));
            }
            RouterMetrics::bump(&shared.metrics.shards_removed);
            Ok(Json::obj(vec![
                ("ok", Json::from(true)),
                ("endpoint", Json::from(endpoint.as_str())),
            ]))
        }
        AdminCommand::Status => {
            let cluster = shared.lock_cluster();
            Ok(Json::obj(vec![
                ("ok", Json::from(true)),
                (
                    "members",
                    Json::Arr(
                        cluster
                            .ring
                            .members()
                            .into_iter()
                            .map(Json::from)
                            .collect(),
                    ),
                ),
                (
                    "shards",
                    Json::Arr(cluster.shards.iter().map(|s| s.to_json()).collect()),
                ),
            ]))
        }
        AdminCommand::SnapshotExport | AdminCommand::SnapshotInstall { .. } => {
            Err(ErrorReply::new(
                ErrorCode::BadRequest,
                "snapshot commands target a shard daemon directly, not the router",
            ))
        }
    }
}

/// Drain the replication queue: re-issue each fresh compile on the
/// key's ring successor so a primary death finds a warm replica.
fn replicate_loop(shared: Arc<Shared>, rx: Receiver<ReplJob>) {
    let mut conns = ShardConns::default();
    while let Ok(job) = rx.recv() {
        let Some(shard) = shared.lock_cluster().state_of(&job.target) else {
            continue; // target left the ring while queued
        };
        if !shard.is_up() {
            RouterMetrics::bump(&shared.metrics.replication_dropped);
            continue;
        }
        match conns.request(&job.target, &job.request, &shared.shard_retry) {
            Ok(_) => {
                shard.record_success();
                RouterMetrics::bump(&shard.replication_writes);
                RouterMetrics::bump(&shared.metrics.replication_writes);
            }
            Err(ClientError::Server(_)) => {
                // The shard is alive but refused (e.g. draining):
                // replication is best-effort, drop the job.
                RouterMetrics::bump(&shared.metrics.replication_dropped);
            }
            Err(_) => {
                if shard.record_failure(shared.fail_threshold) {
                    RouterMetrics::bump(&shared.metrics.shards_marked_down);
                }
                RouterMetrics::bump(&shared.metrics.replication_dropped);
            }
        }
    }
}

/// Periodically ping every shard: successes revive down shards,
/// failure streaks mark them down without waiting for a request to
/// stumble over them.
fn probe_loop(shared: Arc<Shared>) {
    while !shared.drain.load(Ordering::SeqCst) {
        let shards = shared.lock_cluster().shards.clone();
        for shard in shards {
            RouterMetrics::bump(&shared.metrics.health_probes);
            if probe(&shard.endpoint) {
                shard.record_success();
            } else if shard.record_failure(shared.fail_threshold) {
                RouterMetrics::bump(&shared.metrics.shards_marked_down);
            }
        }
        // Sleep in small steps so a drain is honoured promptly.
        let mut slept = 0u64;
        while slept < shared.health_check_ms && !shared.drain.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(25));
            slept += 25;
        }
    }
}

/// One liveness probe: dial + ping with a bounded socket timeout.
fn probe(endpoint: &str) -> bool {
    match Client::connect(endpoint) {
        Ok(mut client) => {
            client.set_io_timeout(Some(PROBE_TIMEOUT));
            client.ping().is_ok()
        }
        Err(_) => false,
    }
}

/// Re-export for binaries that parse endpoint strings.
pub use dagsched_service::server::parse_endpoint as parse_router_endpoint;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_key_ignores_the_attempt_counter() {
        let mut a = ScheduleRequest::asm("add %o0, %o1, %o2");
        let mut b = a.clone();
        a.attempt = 0;
        b.attempt = 5;
        assert_eq!(routing_key(&a).1, routing_key(&b).1);
        let c = ScheduleRequest::asm("sub %o0, %o1, %o2");
        assert_ne!(routing_key(&a).1, routing_key(&c).1);
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = RouterConfig::default();
        assert_eq!(cfg.replicas, 2);
        assert!(cfg.fail_threshold >= 1);
        assert!(cfg.shard_retry.max_retries >= 1);
        assert!(cfg.replication_queue > 0);
        assert!(cfg.workers >= 1);
        assert!(cfg.queue >= 1);
    }
}
