//! The router daemon: a readiness-driven front end (the same
//! [`Reactor`] the shard daemon runs on), request forwarding with the
//! failover ladder, hedged requests, background replication, health
//! probing, and membership administration.
//!
//! # Front end
//!
//! One reactor thread owns every client socket: nonblocking accepts,
//! incremental frame decode, buffered writes, idle and slow-loris
//! timeouts. `Ping`/`Metrics`/`Shutdown` are answered inline; `Request`
//! and `Admin` frames are pushed onto a bounded job queue served by a
//! small pool of forwarding workers (each owning its keep-alive shard
//! connections), so one slow shard dial no longer stalls every other
//! client on the same connection thread. When the queue is full the
//! client gets a retryable `busy` with a hint instead of silence.
//!
//! # Failover ladder
//!
//! A request's key is the FNV-1a hash of its canonical JSON (the
//! `attempt` counter zeroed — the same idempotency identity the
//! shards' cache and quarantine use), so the same request always lands
//! on the same shard and its schedule cache stays hot. The ladder:
//!
//! 1. **Hedged primary**: the first ring replica; once the forward
//!    outlives the shard's recent latency quantile, the same request
//!    is raced against the next replica and the first answer wins (see
//!    below).
//! 2. **Ring successors**: the remaining R−1 replicas, in ring order.
//!    Each hop counts as a `failover`.
//! 3. **Any live shard**, ordered by [`ShardState::health_score`]:
//!    when the whole replica set is down the request is still served —
//!    as a cache miss on a foreign shard, counted `rerouted`, never an
//!    error.
//! 4. **No live shard at all**: a retryable `busy` error with a retry
//!    hint; clients ride it out with their own backoff.
//!
//! Requests the shard *rejected* (bad request, quarantined, deadline
//! expired) are relayed as-is without failover — they would fail
//! identically everywhere, and the rejection proves the shard is
//! healthy. Frame-level complaints (`malformed-frame`,
//! `oversized-frame`, `parse-error`) are the exception: the router
//! always emits well-formed frames, so a shard claiming otherwise read
//! corrupted bytes — those count as link evidence and the ladder moves
//! on.
//!
//! # Gray failures: breakers and hedges
//!
//! Binary health cannot express a shard that is *slow* — wedged disk,
//! half-dead link, asymmetric partition — so liveness is a per-shard
//! circuit breaker (see [`crate::shard`]) plus a latency EWMA. Only
//! `Closed` shards take live traffic; a tripped breaker is revived by
//! the prober through half-open trial pings and must string together
//! `revive_threshold` successes before re-entering the ring.
//!
//! Hedging bounds tail latency the breaker cannot see: when a forward
//! to the primary outlives that shard's observed `hedge_quantile`
//! latency (clamped to `[hedge_min_ms, hedge_max_ms]`), the router
//! launches the same request at the next replica and relays whichever
//! answer lands first, cancelling the loser (`hedged_requests`,
//! `hedge_wins`). Racing a compile is safe: requests are
//! content-addressed and idempotent, and replies are deterministic —
//! both racers return bit-identical bytes, so the client cannot
//! observe which one won.
//!
//! # Overload: deadline propagation and retry budgets
//!
//! A request that carried `deadline_ms` has its remaining budget
//! re-derived at every forward site: the time it spent queued in the
//! router (and burned on earlier rungs) is subtracted before the
//! deadline is re-encoded for the shard hop, so a shard never works a
//! budget the client has already given up on. When less than
//! [`dagsched_proto::MIN_FORWARD_DEADLINE_MS`] remains the router
//! fails fast with `deadline-expired` instead of forwarding
//! (`deadline_expired_in_router`), and when the *primary's* estimated
//! queue delay alone would blow the budget the ladder starts at the
//! healthiest other replica instead (`deadline_reroutes`). Remaining
//! budgets at forward time feed the `deadline_propagated_ms`
//! histogram.
//!
//! Every retry the router originates — client-level redials, failover
//! rungs past the first attempt, hedge launches — draws from one
//! shared token-bucket [`RetryBudget`] refilled by successful
//! forwards. Under a healthy cluster the bucket stays full and the
//! ladder behaves as before; when shards wedge, the bucket drains and
//! the router stops multiplying load (`retry_budget_exhausted`),
//! which is the difference between a recoverable overload and a
//! metastable retry storm.
//!
//! # Replication
//!
//! A fresh compile on the primary (`cache_misses > 0` in the reply)
//! enqueues the same canonical request for the key's second ring
//! replica. A background replicator drains the queue and re-issues the
//! request there, warming the successor's cache so the primary's death
//! does not cold-start its working set. The queue is bounded; when
//! replication cannot keep up, jobs are dropped and counted
//! (`replication_dropped`) rather than backpressuring the serving path.

use std::io;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{
    channel, sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError,
};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dagsched_proto::json::Json;
use dagsched_proto::{
    hex_decode, remaining_deadline_ms, write_frame, AdminCommand, ErrorCode, ErrorReply, FrameKind,
    ScheduleRequest, ScheduleResponse, DEFAULT_MAX_FRAME, FRAME_HEADER_LEN,
};
use dagsched_service::client::{CancelHandle, Client, ClientError, RetryBudget, RetryPolicy};
use dagsched_service::pipeline::{PushError, StageQueue};
use dagsched_service::reactor::{
    install_sigterm_handler, lock_recover, Completion, Completions, ConnId, Ctx, Handler, Listener,
    Reactor, ReactorConfig,
};
use dagsched_service::server::Listen;

use crate::ring::{fnv64, Ring};
use crate::shard::{RouterMetrics, ShardConns, ShardState, Transition};

/// Retry hint attached to `busy` rejections when no shard is live.
const NO_SHARD_RETRY_MS: u64 = 200;

/// Retry hint attached to `busy` rejections when the forwarding queue
/// is full.
const BUSY_RETRY_MS: u64 = 50;

/// Retry hint attached to `draining` rejections.
const DRAIN_RETRY_MS: u64 = 500;

/// Socket timeout for health probes (a hung shard must not wedge the
/// prober).
const PROBE_TIMEOUT: Duration = Duration::from_millis(2000);

/// Slack past the per-attempt socket timeout before a hedged race is
/// abandoned outright (both racers cancelled).
const HEDGE_RACE_SLACK: Duration = Duration::from_secs(5);

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Initial shard endpoints (`unix:/path` or `host:port`).
    pub shards: Vec<String>,
    /// Replica-set size R: a key's primary plus R−1 ring successors.
    pub replicas: usize,
    /// Consecutive failures (probe or forward) before a shard's
    /// breaker opens.
    pub fail_threshold: u32,
    /// Consecutive successes an open breaker must string together
    /// (half-open trials) before the shard rejoins the ring.
    pub revive_threshold: u32,
    /// Milliseconds between health-probe sweeps.
    pub health_check_ms: u64,
    /// Race a stuck primary forward against the next replica.
    pub hedge: bool,
    /// The latency quantile (per shard, over recent forwards) a
    /// forward must outlive before the hedge launches.
    pub hedge_quantile: f64,
    /// Lower clamp on the hedge delay, milliseconds.
    pub hedge_min_ms: u64,
    /// Upper clamp on the hedge delay (also the delay while a shard
    /// has too few samples), milliseconds.
    pub hedge_max_ms: u64,
    /// Largest accepted frame payload (client side and shard side).
    pub max_frame: usize,
    /// Per-connection read timeout for idle clients (silent close
    /// between frames).
    pub read_timeout_ms: u64,
    /// Slow-loris bound: a connection stalled inside a frame (or that
    /// never completed one) gets a typed `idle-timeout` error.
    pub first_frame_timeout_ms: u64,
    /// Install a SIGTERM handler that triggers a graceful drain.
    pub handle_sigterm: bool,
    /// Retry policy for shard dials and forwarded requests.
    pub shard_retry: RetryPolicy,
    /// Bounded replication-queue depth.
    pub replication_queue: usize,
    /// Forwarding worker threads (each owns its shard connections).
    pub workers: usize,
    /// Bounded forwarding-queue depth; beyond it clients get `busy`.
    pub queue: usize,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            shards: Vec::new(),
            replicas: 2,
            fail_threshold: 3,
            revive_threshold: 3,
            health_check_ms: 500,
            hedge: true,
            hedge_quantile: 0.95,
            hedge_min_ms: 10,
            hedge_max_ms: 400,
            max_frame: DEFAULT_MAX_FRAME,
            read_timeout_ms: 10_000,
            first_frame_timeout_ms: 2_000,
            handle_sigterm: false,
            shard_retry: RetryPolicy {
                max_retries: 2,
                base_delay: Duration::from_millis(10),
                max_delay: Duration::from_millis(200),
                per_attempt_timeout: Some(Duration::from_secs(10)),
                overall_timeout: Some(Duration::from_secs(30)),
                jitter_seed: 0x0C1A_57E2,
            },
            replication_queue: 256,
            workers: 4,
            queue: 256,
        }
    }
}

/// Ring membership plus per-shard state, guarded as one unit so a
/// membership change can never leave them disagreeing.
struct Cluster {
    ring: Ring,
    shards: Vec<Arc<ShardState>>,
}

impl Cluster {
    fn state_of(&self, endpoint: &str) -> Option<Arc<ShardState>> {
        self.shards.iter().find(|s| s.endpoint == endpoint).cloned()
    }

    fn add(&mut self, endpoint: &str) -> bool {
        if !self.ring.add(endpoint) {
            return false;
        }
        self.shards.push(Arc::new(ShardState::new(endpoint)));
        true
    }

    fn remove(&mut self, endpoint: &str) -> bool {
        if !self.ring.remove(endpoint) {
            return false;
        }
        self.shards.retain(|s| s.endpoint != endpoint);
        true
    }
}

/// One replication job: warm `target` with the canonical request.
struct ReplJob {
    target: String,
    request: ScheduleRequest,
}

/// Hedging knobs, resolved once at startup.
struct HedgeConfig {
    enabled: bool,
    quantile: f64,
    min: Duration,
    max: Duration,
}

/// State shared by every router thread.
struct Shared {
    cluster: Mutex<Cluster>,
    metrics: RouterMetrics,
    /// Shared with the reactor (which also flips it on SIGTERM).
    drain: Arc<AtomicBool>,
    replicas: usize,
    fail_threshold: u32,
    revive_threshold: u32,
    health_check_ms: u64,
    hedge: HedgeConfig,
    shard_retry: RetryPolicy,
    /// One shared token bucket for every retry the router originates
    /// (redials, failover rungs, hedges); refilled by successes.
    retry_budget: RetryBudget,
}

impl Shared {
    fn lock_cluster(&self) -> std::sync::MutexGuard<'_, Cluster> {
        lock_recover(&self.cluster)
    }

    fn metrics_snapshot(&self) -> Json {
        let shards = self.lock_cluster().shards.clone();
        self.metrics.snapshot(&shards)
    }
}

/// Record a success on `shard` and surface any breaker transition in
/// the router counters.
fn note_success(shared: &Shared, shard: &ShardState) {
    match shard.record_success(shared.revive_threshold) {
        Transition::HalfOpened => RouterMetrics::bump(&shared.metrics.breaker_half_open),
        Transition::Closed => RouterMetrics::bump(&shared.metrics.breaker_closed),
        Transition::Opened | Transition::None => {}
    }
}

/// Record a failed interaction on `shard` *iff* the error is health
/// evidence, surfacing a breaker trip in the router counters.
fn note_failure(shared: &Shared, shard: &ShardState, err: &ClientError) {
    if error_is_health_evidence(err)
        && shard.record_failure(shared.fail_threshold) == Transition::Opened
    {
        RouterMetrics::bump(&shared.metrics.shards_marked_down);
    }
}

/// Frame-level rejections from a *shard* are link evidence: the router
/// always emits well-formed frames and re-serialises the request
/// itself, so a shard claiming otherwise read corrupted bytes.
fn reply_is_link_evidence(reply: &ErrorReply) -> bool {
    matches!(
        reply.code,
        ErrorCode::MalformedFrame | ErrorCode::OversizedFrame | ErrorCode::ParseError
    )
}

/// Whether a forwarding error says something about the *shard or link*
/// (as opposed to the request): transport breakage always does, server
/// replies only when they are link evidence.
fn error_is_health_evidence(err: &ClientError) -> bool {
    match err {
        ClientError::Server(reply) => reply_is_link_evidence(reply),
        _ => true,
    }
}

/// The error to remember for the client when a rung fails. Link-level
/// server complaints are rewritten to a retryable `internal` — relaying
/// a corrupted link's `malformed-frame` verbatim would tell the client
/// *its* request was bad.
fn rung_error(shard: &ShardState, err: ClientError) -> ErrorReply {
    match err {
        ClientError::Server(reply) if !reply_is_link_evidence(&reply) => reply,
        other => ErrorReply::new(
            ErrorCode::Internal,
            format!("shard {} unreachable: {other}", shard.endpoint),
        ),
    }
}

/// A running router. Dropping the handle does *not* stop it; call
/// [`RouterHandle::begin_drain`] then [`RouterHandle::join`].
pub struct RouterHandle {
    shared: Arc<Shared>,
    completions: Arc<Completions>,
    thread: Option<JoinHandle<()>>,
    local_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
}

impl RouterHandle {
    /// The bound TCP address (useful with port 0).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// An endpoint string a client can connect to.
    pub fn endpoint(&self) -> String {
        match (&self.local_addr, &self.unix_path) {
            (Some(addr), _) => format!("tcp:{addr}"),
            (None, Some(path)) => format!("unix:{}", path.display()),
            (None, None) => {
                // `Listener::bind` always records one of the two; an
                // empty endpoint only means the handle was built by
                // hand without either.
                debug_assert!(false, "router handle has no bound endpoint");
                String::new()
            }
        }
    }

    /// Stop accepting connections and begin a graceful drain.
    pub fn begin_drain(&self) {
        self.shared.drain.store(true, Ordering::SeqCst);
        // Interrupt the poll so the drain starts on this tick, not the
        // next timeout.
        self.completions.wake();
    }

    /// Snapshot the router counters (including per-shard gauges).
    pub fn metrics(&self) -> Json {
        self.shared.metrics_snapshot()
    }

    /// Wait for the reactor, forwarding workers, replicator and prober
    /// to finish (after a drain was triggered).
    pub fn join(mut self) {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// One offloaded frame: answered later via a [`Completion`].
struct RouterJob {
    conn: ConnId,
    work: Work,
    /// When the frame was accepted — the anchor the forwarding worker
    /// subtracts from a request's `deadline_ms` so queue time in the
    /// router is not silently billed to the shard.
    arrival: Instant,
}

enum Work {
    Request(Vec<u8>),
    Admin(Vec<u8>),
}

/// Encode one complete wire frame (the worker threads build replies
/// off the reactor thread).
fn encode_frame(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(payload.len().saturating_add(FRAME_HEADER_LEN));
    let _ = write_frame(&mut frame, kind, payload);
    frame
}

/// Forwarding worker: pops job batches, walks the failover ladder (or
/// runs the admin command) with its own keep-alive shard connections,
/// and pushes the encoded reply back to the reactor.
fn worker_loop(
    shared: Arc<Shared>,
    queue: Arc<StageQueue<RouterJob>>,
    completions: Arc<Completions>,
    inflight: Arc<AtomicU64>,
    repl_tx: SyncSender<ReplJob>,
) {
    let mut conns = ShardConns::default();
    let mut batch = Vec::new();
    while queue.pop_batch(&mut batch) {
        for job in batch.drain(..) {
            let bytes = match job.work {
                Work::Request(payload) => {
                    match forward_request(&shared, &mut conns, &repl_tx, &payload, job.arrival) {
                        Ok(body) => {
                            RouterMetrics::bump(&shared.metrics.responses);
                            encode_frame(FrameKind::Response, body.to_string().as_bytes())
                        }
                        Err(reply) => {
                            RouterMetrics::bump(&shared.metrics.errors);
                            encode_frame(FrameKind::Error, reply.to_json().to_string().as_bytes())
                        }
                    }
                }
                Work::Admin(payload) => match handle_admin(&shared, &mut conns, &payload) {
                    Ok(reply) => encode_frame(FrameKind::AdminReply, reply.to_string().as_bytes()),
                    Err(reply) => {
                        RouterMetrics::bump(&shared.metrics.errors);
                        encode_frame(FrameKind::Error, reply.to_json().to_string().as_bytes())
                    }
                },
            };
            // Push the completion *before* the inflight decrement: the
            // drain must never observe `idle` while a reply exists only
            // on this stack frame.
            completions.push(Completion {
                conn: job.conn,
                bytes,
                close: false,
            });
            inflight.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Protocol logic the router plugs into the [`Reactor`].
struct RouterHandler {
    shared: Arc<Shared>,
    queue: Arc<StageQueue<RouterJob>>,
    completions: Arc<Completions>,
    inflight: Arc<AtomicU64>,
}

impl RouterHandler {
    fn enqueue(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, work: Work) {
        match self.queue.try_push(RouterJob {
            conn,
            work,
            arrival: Instant::now(),
        }) {
            Ok(()) => {
                // Exactly one completion will come back for this job.
                self.inflight.fetch_add(1, Ordering::SeqCst);
                ctx.expect_reply(conn);
            }
            Err(PushError::Full(_)) => {
                RouterMetrics::bump(&self.shared.metrics.errors);
                ctx.send_error(
                    conn,
                    &ErrorReply::new(
                        ErrorCode::Busy,
                        "router workers busy and the queue is full; retry later",
                    )
                    .with_retry_after_ms(BUSY_RETRY_MS),
                );
            }
            Err(PushError::Closed(_)) => {
                RouterMetrics::bump(&self.shared.metrics.errors);
                ctx.send_error(
                    conn,
                    &ErrorReply::new(ErrorCode::Draining, "router is draining")
                        .with_retry_after_ms(DRAIN_RETRY_MS),
                );
                ctx.close_after_flush(conn);
            }
        }
    }
}

impl Handler for RouterHandler {
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, kind: FrameKind, payload: Vec<u8>) {
        match kind {
            FrameKind::Ping => {
                ctx.send(conn, FrameKind::Pong, Json::Null.to_string().as_bytes());
            }
            FrameKind::Metrics => {
                let snap = self.shared.metrics_snapshot().to_string();
                ctx.send(conn, FrameKind::Metrics, snap.as_bytes());
            }
            FrameKind::Shutdown => {
                ctx.begin_drain();
                self.completions.wake();
                ctx.send(conn, FrameKind::Pong, Json::Null.to_string().as_bytes());
                ctx.close_after_flush(conn);
            }
            FrameKind::Admin => self.enqueue(ctx, conn, Work::Admin(payload)),
            FrameKind::Request => {
                RouterMetrics::bump(&self.shared.metrics.requests);
                if ctx.draining() && ctx.requests_seen(conn) > 0 {
                    // In-flight work is completed during a drain, but a
                    // connection that already got its answer is asked
                    // to go away.
                    RouterMetrics::bump(&self.shared.metrics.errors);
                    ctx.send_error(
                        conn,
                        &ErrorReply::new(ErrorCode::Draining, "router is draining")
                            .with_retry_after_ms(DRAIN_RETRY_MS),
                    );
                    if !ctx.has_pending(conn) {
                        ctx.close_after_flush(conn);
                    }
                    return;
                }
                ctx.note_request(conn);
                self.enqueue(ctx, conn, Work::Request(payload));
            }
            other => {
                RouterMetrics::bump(&self.shared.metrics.errors);
                ctx.send_error(
                    conn,
                    &ErrorReply::new(
                        ErrorCode::BadRequest,
                        format!("unexpected client frame kind {other:?}"),
                    ),
                );
                ctx.close_after_flush(conn);
            }
        }
    }

    fn on_accept(&mut self) {
        RouterMetrics::bump(&self.shared.metrics.connections);
    }

    fn on_drain_reject(&mut self) {
        // `on_accept` already counted the connection.
        RouterMetrics::bump(&self.shared.metrics.errors);
    }

    fn on_frame_error(&mut self, _reply: &ErrorReply) {
        RouterMetrics::bump(&self.shared.metrics.errors);
    }

    fn on_idle_timeout(&mut self) {
        RouterMetrics::bump(&self.shared.metrics.errors);
    }

    fn idle(&self) -> bool {
        self.inflight.load(Ordering::SeqCst) == 0
    }
}

/// Bind `listen` and start routing under `config`.
pub fn serve_router(listen: Listen, config: RouterConfig) -> io::Result<RouterHandle> {
    let (listener, local_addr, unix_path) = Listener::bind(listen)?;

    if config.handle_sigterm {
        install_sigterm_handler();
    }

    let mut cluster = Cluster {
        ring: Ring::new(),
        shards: Vec::new(),
    };
    for endpoint in &config.shards {
        cluster.add(endpoint);
    }

    let drain = Arc::new(AtomicBool::new(false));
    let hedge_min = Duration::from_millis(config.hedge_min_ms);
    let shared = Arc::new(Shared {
        cluster: Mutex::new(cluster),
        metrics: RouterMetrics::default(),
        drain: Arc::clone(&drain),
        replicas: config.replicas.max(1),
        fail_threshold: config.fail_threshold.max(1),
        revive_threshold: config.revive_threshold.max(1),
        health_check_ms: config.health_check_ms.max(50),
        hedge: HedgeConfig {
            enabled: config.hedge,
            quantile: config.hedge_quantile.clamp(0.5, 0.999),
            min: hedge_min,
            max: Duration::from_millis(config.hedge_max_ms).max(hedge_min),
        },
        shard_retry: config.shard_retry.clone(),
        retry_budget: RetryBudget::default(),
    });

    let reactor = Reactor::new(
        listener,
        ReactorConfig {
            max_frame: config.max_frame,
            idle_timeout: Duration::from_millis(config.read_timeout_ms.max(1)),
            first_frame_timeout: Duration::from_millis(config.first_frame_timeout_ms.max(1)),
            drain_message: "router is draining",
            drain_retry_ms: DRAIN_RETRY_MS,
        },
        Arc::clone(&drain),
    )?;
    let completions = reactor.completions();

    let (repl_tx, repl_rx) = sync_channel::<ReplJob>(config.replication_queue.max(1));
    let repl_shared = Arc::clone(&shared);
    let replicator = std::thread::Builder::new()
        .name("dagsched-replicator".to_string())
        .spawn(move || replicate_loop(repl_shared, repl_rx))?;

    let probe_shared = Arc::clone(&shared);
    let prober = std::thread::Builder::new()
        .name("dagsched-prober".to_string())
        .spawn(move || probe_loop(probe_shared))?;

    let worker_count = config.workers.max(1);
    let queue = Arc::new(StageQueue::<RouterJob>::new(
        config.queue.max(1),
        worker_count,
    ));
    let inflight = Arc::new(AtomicU64::new(0));
    let mut workers = Vec::new();
    let mut spawn_all = || -> io::Result<()> {
        for i in 0..worker_count {
            let s = Arc::clone(&shared);
            let q = Arc::clone(&queue);
            let c = Arc::clone(&completions);
            let inf = Arc::clone(&inflight);
            let tx = repl_tx.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("dagsched-router-{i}"))
                    .spawn(move || worker_loop(s, q, c, inf, tx))?,
            );
        }
        Ok(())
    };
    // The workers hold the only long-lived senders: once they are
    // joined the replicator's receiver disconnects and it exits after
    // draining its queue.
    let spawned = spawn_all();
    drop(repl_tx);
    if let Err(e) = spawned {
        drain.store(true, Ordering::SeqCst);
        queue.close();
        for h in workers {
            let _ = h.join();
        }
        let _ = replicator.join();
        let _ = prober.join();
        return Err(e);
    }

    let handler_shared = Arc::clone(&shared);
    let handler_queue = Arc::clone(&queue);
    let handler_completions = Arc::clone(&completions);
    let handler_inflight = Arc::clone(&inflight);
    let cleanup_path = reactor.unix_path();
    let thread = match std::thread::Builder::new()
        .name("dagsched-router".to_string())
        .spawn(move || {
            let mut handler = RouterHandler {
                shared: handler_shared,
                queue: handler_queue,
                completions: handler_completions,
                inflight: handler_inflight,
            };
            reactor.run(&mut handler);
            // Drain finished: no new jobs can arrive. Close the queue
            // so the workers exit, then let the replicator finish its
            // backlog and the prober notice the drain flag.
            handler.queue.close();
            for h in workers {
                let _ = h.join();
            }
            let _ = replicator.join();
            let _ = prober.join();
            #[cfg(unix)]
            if let Some(path) = &cleanup_path {
                let _ = std::fs::remove_file(path);
            }
            #[cfg(not(unix))]
            let _ = cleanup_path;
        }) {
        Ok(t) => t,
        Err(e) => {
            drain.store(true, Ordering::SeqCst);
            queue.close();
            return Err(e);
        }
    };

    Ok(RouterHandle {
        shared,
        completions,
        thread: Some(thread),
        local_addr,
        unix_path,
    })
}

/// The routing key: FNV-1a of the canonical request JSON with the
/// `attempt` counter zeroed — the same idempotency identity the
/// shards' cache and quarantine key on, so retries and repeats land on
/// the same shard.
pub fn routing_key(req: &ScheduleRequest) -> (ScheduleRequest, u64) {
    let mut canonical = req.clone();
    canonical.attempt = 0;
    let key = fnv64(canonical.to_json().to_string().as_bytes());
    (canonical, key)
}

/// Which rung of the ladder produced a successful answer.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Rung {
    /// The key's primary replica (hedged or not).
    Primary,
    /// A ring successor after the primary failed.
    Failover,
    /// A shard outside the replica set (whole set down).
    Rerouted,
    /// The hedge secondary beat a slow-but-alive primary. Not a
    /// failover: the primary never failed, it was merely outraced.
    HedgeWin,
}

/// Success bookkeeping shared by the hedge fast path and the ladder:
/// failover/reroute counters and the replication enqueue.
fn finish_success(
    shared: &Shared,
    repl_tx: &SyncSender<ReplJob>,
    replicas: &[Arc<ShardState>],
    rung: Rung,
    canonical: &ScheduleRequest,
    resp: ScheduleResponse,
) -> Json {
    match rung {
        Rung::Primary | Rung::HedgeWin => {}
        Rung::Failover => RouterMetrics::bump(&shared.metrics.failovers),
        Rung::Rerouted => RouterMetrics::bump(&shared.metrics.rerouted),
    }
    // Replicate fresh compiles from the primary to its first ring
    // successor (R ≥ 2 and a successor exists).
    if rung == Rung::Primary && resp.stats.cache_misses > 0 {
        if let Some(successor) = replicas.get(1) {
            let mut repl_req = canonical.clone();
            repl_req.sim = false;
            repl_req.linger_ms = 0;
            repl_req.debug_panic = false;
            match repl_tx.try_send(ReplJob {
                target: successor.endpoint.clone(),
                request: repl_req,
            }) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                    RouterMetrics::bump(&shared.metrics.replication_dropped);
                }
            }
        }
    }
    resp.to_json()
}

/// Subtract the time since `arrival` from the request's original
/// deadline and re-encode the remainder for the next shard hop, so
/// queue time in the router is never silently billed to the shard.
/// Returns the remaining budget (`None` when the request never had a
/// deadline); fails fast with `deadline-expired` when less than
/// [`dagsched_proto::MIN_FORWARD_DEADLINE_MS`] is left — compiling for
/// a client that has already given up only deepens an overload.
fn propagate_deadline(
    shared: &Shared,
    req: &mut ScheduleRequest,
    orig_deadline: Option<u64>,
    arrival: Instant,
) -> Result<Option<u64>, ErrorReply> {
    let Some(total) = orig_deadline else {
        return Ok(None);
    };
    let elapsed = u64::try_from(arrival.elapsed().as_millis()).unwrap_or(u64::MAX);
    match remaining_deadline_ms(total, elapsed) {
        Some(rem) => {
            shared.metrics.deadline_propagated_ms.observe(rem);
            req.deadline_ms = Some(rem);
            Ok(Some(rem))
        }
        None => {
            RouterMetrics::bump(&shared.metrics.deadline_expired_in_router);
            Err(ErrorReply::new(
                ErrorCode::DeadlineExpired,
                format!(
                    "deadline of {total}ms expired in the router after {elapsed}ms; not forwarded"
                ),
            ))
        }
    }
}

/// A shard's estimated queue delay in milliseconds: its EWMA service
/// latency times the forwards already in flight to it (plus the one
/// being placed). Zero while the shard has no latency observations.
fn estimated_queue_delay_ms(shard: &ShardState) -> u64 {
    let depth = shard.inflight.load(Ordering::Relaxed).saturating_add(1);
    shard.ewma_us().saturating_mul(depth) / 1000
}

/// Walk the failover ladder for one request; returns the response body
/// to relay.
fn forward_request(
    shared: &Shared,
    conns: &mut ShardConns,
    repl_tx: &SyncSender<ReplJob>,
    payload: &[u8],
    arrival: Instant,
) -> Result<Json, ErrorReply> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| ErrorReply::new(ErrorCode::ParseError, "request payload is not UTF-8"))?;
    let value = Json::parse(text)
        .map_err(|e| ErrorReply::new(ErrorCode::ParseError, format!("request is not JSON: {e}")))?;
    let mut req = ScheduleRequest::from_json(&value)?;
    let (canonical, key) = routing_key(&req);

    // Deadline propagation: bill the queue time this frame already
    // spent in the router against the client's budget before any
    // forward — a request that died waiting is shed, not compiled.
    let orig_deadline = req.deadline_ms;
    let budget = propagate_deadline(shared, &mut req, orig_deadline, arrival)?;

    // Snapshot the ladder under the lock, then forward without it.
    let (mut replicas, others): (Vec<Arc<ShardState>>, Vec<Arc<ShardState>>) = {
        let cluster = shared.lock_cluster();
        let replica_eps: Vec<String> = cluster
            .ring
            .replicas(key, shared.replicas)
            .into_iter()
            .map(str::to_string)
            .collect();
        let replicas = replica_eps
            .iter()
            .filter_map(|e| cluster.state_of(e))
            .collect();
        let others = cluster
            .shards
            .iter()
            .filter(|s| !replica_eps.contains(&s.endpoint))
            .cloned()
            .collect();
        (replicas, others)
    };
    if replicas.is_empty() {
        RouterMetrics::bump(&shared.metrics.no_live_shard);
        return Err(
            ErrorReply::new(ErrorCode::Busy, "router has no shards configured")
                .with_retry_after_ms(NO_SHARD_RETRY_MS),
        );
    }

    // Deadline-aware replica preference: when the primary's estimated
    // queue delay alone would blow the remaining budget, start the
    // ladder at the healthiest other live replica — it may still make
    // the deadline; the primary almost certainly will not.
    if let Some(rem) = budget {
        let est = estimated_queue_delay_ms(&replicas[0]);
        if est > rem {
            let best = (1..replicas.len())
                .filter(|&i| replicas[i].is_up())
                .min_by_key(|&i| replicas[i].health_score());
            if let Some(best) = best.filter(|&i| estimated_queue_delay_ms(&replicas[i]) < est) {
                replicas.swap(0, best);
                RouterMetrics::bump(&shared.metrics.deadline_reroutes);
            }
        }
    }

    let primary = Arc::clone(&replicas[0]);
    let mut last_err: Option<ErrorReply> = None;
    let mut skip_primary = false;

    // Hedged fast path: the primary is believed healthy and a live
    // replica exists to race against.
    if shared.hedge.enabled && primary.is_up() {
        if let Some(secondary) = replicas.get(1).filter(|s| s.is_up()) {
            match hedged_request(shared, conns, &primary, secondary, &req) {
                HedgeOutcome::Answer {
                    shard,
                    resp,
                    latency,
                } => {
                    shard.observe_latency(latency, true);
                    note_success(shared, &shard);
                    // Racer forwards bypass the budgeted client path,
                    // so their successes refill the bucket here.
                    shared.retry_budget.record_success();
                    let rung = if Arc::ptr_eq(&shard, &primary) {
                        Rung::Primary
                    } else {
                        Rung::HedgeWin
                    };
                    return Ok(finish_success(
                        shared, repl_tx, &replicas, rung, &canonical, resp,
                    ));
                }
                HedgeOutcome::Reject(reply) => return Err(reply),
                HedgeOutcome::Failed(reply) => {
                    // Health evidence was already recorded inside the
                    // race; the ladder resumes past the primary.
                    RouterMetrics::bump(&primary.failovers);
                    last_err = Some(reply);
                    skip_primary = true;
                }
            }
        }
    }

    // Rungs 1–2: the replica set in ring order; rung 3: every other
    // live shard, cheapest health score first. Down shards are skipped
    // without burning a dial, but when *nothing* is believed up we
    // still try the replica set once — the belief may be stale, and the
    // prober only revives shards every `health_check_ms`.
    let any_up = replicas.iter().chain(others.iter()).any(|s| s.is_up());
    let mut reroute: Vec<&Arc<ShardState>> = others.iter().filter(|s| s.is_up()).collect();
    reroute.sort_by_key(|s| s.health_score());
    let mut attempted: u32 = u32::from(skip_primary);
    for (tier, shard) in replicas
        .iter()
        .map(|s| (0usize, s))
        .chain(reroute.into_iter().map(|s| (1usize, s)))
    {
        if tier == 0 && skip_primary && Arc::ptr_eq(shard, &primary) {
            continue; // the hedged race already spent this rung
        }
        if tier == 0 && !shard.is_up() && any_up {
            RouterMetrics::bump(&shard.failovers);
            continue;
        }
        // Every rung past the first attempt re-sends the same logical
        // request: it spends from the shared retry budget, and when
        // the bucket is dry the ladder stops rather than multiplying
        // load onto an already-struggling cluster.
        if attempted > 0 && !shared.retry_budget.try_spend() {
            RouterMetrics::bump(&shared.metrics.retry_budget_exhausted);
            break;
        }
        // Earlier rungs burned real time: re-derive the deadline for
        // this hop (and shed if nothing usable is left).
        propagate_deadline(shared, &mut req, orig_deadline, arrival)?;
        attempted += 1;
        RouterMetrics::bump(&shard.requests);
        shard.inflight.fetch_add(1, Ordering::Relaxed);
        let outcome = conns.request_budgeted(
            &shard.endpoint,
            &req,
            &shared.shard_retry,
            Some(&shared.retry_budget),
        );
        shard.inflight.fetch_sub(1, Ordering::Relaxed);
        match outcome {
            Ok((resp, latency)) => {
                shard.observe_latency(latency, true);
                note_success(shared, shard);
                let rung = if Arc::ptr_eq(shard, &primary) {
                    Rung::Primary
                } else if tier == 0 {
                    Rung::Failover
                } else {
                    Rung::Rerouted
                };
                return Ok(finish_success(
                    shared, repl_tx, &replicas, rung, &canonical, resp,
                ));
            }
            Err(ClientError::Server(reply))
                if !reply.code.is_retryable() && !reply_is_link_evidence(&reply) =>
            {
                // The shard answered: it is healthy, the request is
                // not. Failing over would reproduce the same rejection.
                note_success(shared, shard);
                return Err(reply);
            }
            Err(err) => {
                note_failure(shared, shard, &err);
                RouterMetrics::bump(&shard.failovers);
                last_err = Some(rung_error(shard, err));
            }
        }
    }
    RouterMetrics::bump(&shared.metrics.no_live_shard);
    Err(last_err
        .unwrap_or_else(|| ErrorReply::new(ErrorCode::Busy, "no live shard"))
        // Every rung failed: whatever the last error was, the client
        // should treat the condition as transient and back off.
        .with_retry_after_ms(NO_SHARD_RETRY_MS))
}

/// One racer's report back to the coordinating worker.
struct HedgeMsg {
    from_secondary: bool,
    result: Result<ScheduleResponse, ClientError>,
    /// The racer's connection, riding along so a winner's socket goes
    /// back into the keep-alive map (`None` if the thread never ran).
    client: Option<Client>,
    latency: Duration,
}

/// How a (possibly hedged) primary forward ended.
enum HedgeOutcome {
    /// A racer answered; relay its response.
    Answer {
        shard: Arc<ShardState>,
        resp: ScheduleResponse,
        latency: Duration,
    },
    /// A healthy shard rejected the request itself — terminal, relay
    /// the rejection without failover.
    Reject(ErrorReply),
    /// Every racer failed (health evidence already recorded); the
    /// ladder continues past the primary.
    Failed(ErrorReply),
}

/// Launch one single-attempt forward on its own thread. The per-shard
/// request/inflight counters are kept here so both racers are
/// accounted exactly like ladder forwards.
fn spawn_racer(
    shard: &Arc<ShardState>,
    mut client: Client,
    req: &ScheduleRequest,
    from_secondary: bool,
    tx: &Sender<HedgeMsg>,
) {
    RouterMetrics::bump(&shard.requests);
    shard.inflight.fetch_add(1, Ordering::Relaxed);
    let thread_shard = Arc::clone(shard);
    let req = req.clone();
    let thread_tx = tx.clone();
    let spawned = std::thread::Builder::new()
        .name("dagsched-hedge".to_string())
        .spawn(move || {
            let started = Instant::now();
            let result = client.request(&req);
            thread_shard.inflight.fetch_sub(1, Ordering::Relaxed);
            // The coordinator may already have returned with the other
            // racer's answer; a closed channel is fine.
            let _ = thread_tx.send(HedgeMsg {
                from_secondary,
                result,
                client: Some(client),
                latency: started.elapsed(),
            });
        });
    if let Err(e) = spawned {
        // The closure (and its client) never ran: undo the inflight
        // and report the spawn failure as this racer's result.
        shard.inflight.fetch_sub(1, Ordering::Relaxed);
        let _ = tx.send(HedgeMsg {
            from_secondary,
            result: Err(ClientError::Io(e)),
            client: None,
            latency: Duration::ZERO,
        });
    }
}

/// Settle a race that ended with the primary answering before the
/// hedge delay elapsed (the common case: no hedge was launched).
fn settle_primary(
    shared: &Shared,
    conns: &mut ShardConns,
    primary: &Arc<ShardState>,
    msg: HedgeMsg,
) -> HedgeOutcome {
    match msg.result {
        Ok(resp) => {
            if let Some(client) = msg.client {
                conns.put(&primary.endpoint, client);
            }
            HedgeOutcome::Answer {
                shard: Arc::clone(primary),
                resp,
                latency: msg.latency,
            }
        }
        Err(ClientError::Server(reply))
            if !reply.code.is_retryable() && !reply_is_link_evidence(&reply) =>
        {
            note_success(shared, primary);
            HedgeOutcome::Reject(reply)
        }
        Err(err) => {
            note_failure(shared, primary, &err);
            HedgeOutcome::Failed(rung_error(primary, err))
        }
    }
}

/// Forward to the primary with a hedge: if the answer outlives the
/// primary's recent latency quantile, the same request is raced
/// against `secondary` and the first answer wins. The loser is
/// cancelled via its [`CancelHandle`] — a shutdown unblocks its read
/// immediately instead of letting it wait out the socket timeout.
///
/// Racing is safe because requests are content-addressed and
/// idempotent and replies deterministic: both racers produce
/// bit-identical bytes, so relaying either is correct, and a
/// duplicated compile only warms a cache.
fn hedged_request(
    shared: &Shared,
    conns: &mut ShardConns,
    primary: &Arc<ShardState>,
    secondary: &Arc<ShardState>,
    req: &ScheduleRequest,
) -> HedgeOutcome {
    let policy = &shared.shard_retry;
    let delay = primary.hedge_delay(shared.hedge.quantile, shared.hedge.min, shared.hedge.max);

    let pclient = match conns.take_or_dial(&primary.endpoint, policy) {
        Ok(c) => c,
        Err(err) => {
            note_failure(shared, primary, &err);
            return HedgeOutcome::Failed(rung_error(primary, err));
        }
    };
    pclient.set_io_timeout(policy.per_attempt_timeout);
    let pcancel = pclient.cancel_handle();

    let (tx, rx) = channel::<HedgeMsg>();
    spawn_racer(primary, pclient, req, false, &tx);

    // Give the primary its quantile head start.
    match rx.recv_timeout(delay) {
        Ok(msg) => return settle_primary(shared, conns, primary, msg),
        Err(RecvTimeoutError::Timeout) => {}
        Err(RecvTimeoutError::Disconnected) => {
            return HedgeOutcome::Failed(ErrorReply::new(
                ErrorCode::Internal,
                format!("hedge racer for shard {} vanished", primary.endpoint),
            ));
        }
    }

    // The primary is past its quantile: launch the hedge — unless the
    // shared retry budget is dry, in which case the router waits out
    // the primary alone instead of putting a second copy of the
    // request on the wire (a hedge is a speculative retry, and retry
    // amplification is exactly what a drained bucket forbids).
    let mut outstanding = 1usize;
    let scancel: Option<CancelHandle> = if !shared.retry_budget.try_spend() {
        RouterMetrics::bump(&shared.metrics.retry_budget_exhausted);
        None
    } else {
        RouterMetrics::bump(&shared.metrics.hedged_requests);
        RouterMetrics::bump(&primary.hedges);
        match conns.take_or_dial(&secondary.endpoint, policy) {
            Ok(sclient) => {
                sclient.set_io_timeout(policy.per_attempt_timeout);
                let handle = sclient.cancel_handle();
                spawn_racer(secondary, sclient, req, true, &tx);
                outstanding += 1;
                handle
            }
            Err(err) => {
                // The hedge could not even dial: record the evidence
                // and fall back to waiting out the primary alone.
                note_failure(shared, secondary, &err);
                None
            }
        }
    };
    drop(tx);

    let cancel_all = || {
        if let Some(c) = &pcancel {
            c.cancel();
        }
        if let Some(c) = &scancel {
            c.cancel();
        }
    };

    // First terminal answer wins. Each racer is bounded by its
    // per-attempt socket timeout; the slack bounds the race itself.
    let deadline = Instant::now()
        + policy
            .per_attempt_timeout
            .unwrap_or(Duration::from_secs(30))
        + HEDGE_RACE_SLACK;
    let mut race_err: Option<ErrorReply> = None;
    while outstanding > 0 {
        let left = deadline
            .saturating_duration_since(Instant::now())
            .max(Duration::from_millis(1));
        let msg = match rx.recv_timeout(left) {
            Ok(m) => m,
            // Timeout (both racers wedged past their socket timeouts)
            // or every sender gone without a message: give up.
            Err(_) => break,
        };
        outstanding -= 1;
        let (shard, other_cancel) = if msg.from_secondary {
            (secondary, &pcancel)
        } else {
            (primary, &scancel)
        };
        match msg.result {
            Ok(resp) => {
                if let Some(c) = other_cancel {
                    c.cancel();
                }
                if msg.from_secondary {
                    RouterMetrics::bump(&shared.metrics.hedge_wins);
                    RouterMetrics::bump(&secondary.hedge_wins);
                }
                if let Some(client) = msg.client {
                    conns.put(&shard.endpoint, client);
                }
                return HedgeOutcome::Answer {
                    shard: Arc::clone(shard),
                    resp,
                    latency: msg.latency,
                };
            }
            Err(ClientError::Server(reply))
                if !reply.code.is_retryable() && !reply_is_link_evidence(&reply) =>
            {
                // A healthy shard rejected the request itself: that is
                // the answer, the race cannot change it.
                note_success(shared, shard);
                cancel_all();
                return HedgeOutcome::Reject(reply);
            }
            Err(err) => {
                // The cancelled-loser path never reaches here: a loser
                // is only cancelled after this function returns with
                // the winner, so any failure seen in this loop is a
                // genuine one.
                note_failure(shared, shard, &err);
                race_err = Some(rung_error(shard, err));
            }
        }
    }
    cancel_all();
    HedgeOutcome::Failed(race_err.unwrap_or_else(|| {
        ErrorReply::new(
            ErrorCode::Internal,
            format!("hedged forward to shard {} timed out", primary.endpoint),
        )
        .with_retry_after_ms(NO_SHARD_RETRY_MS)
    }))
}

/// Answer one router admin command (cluster membership; shard-level
/// snapshot commands are refused with a pointer to the right tier).
fn handle_admin(
    shared: &Shared,
    conns: &mut ShardConns,
    payload: &[u8],
) -> Result<Json, ErrorReply> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| ErrorReply::new(ErrorCode::ParseError, "admin payload is not UTF-8"))?;
    let value = Json::parse(text).map_err(|e| {
        ErrorReply::new(
            ErrorCode::ParseError,
            format!("admin payload is not JSON: {e}"),
        )
    })?;
    match AdminCommand::from_json(&value)? {
        AdminCommand::AddShard { endpoint } => {
            if shared.lock_cluster().ring.contains(&endpoint) {
                return Err(ErrorReply::new(
                    ErrorCode::BadRequest,
                    format!("shard {endpoint} is already a ring member"),
                ));
            }
            // Warm-spare promotion: ship a snapshot from a live donor
            // *before* the joiner takes ring ownership, so its first
            // owned requests hit a warm cache.
            let donor = {
                let cluster = shared.lock_cluster();
                cluster
                    .shards
                    .iter()
                    .find(|s| s.is_up() && s.endpoint != endpoint)
                    .map(|s| s.endpoint.clone())
            };
            let mut installed = 0u64;
            let mut donor_generation = 0u64;
            if let Some(donor_ep) = &donor {
                let exported = conns
                    .admin(donor_ep, &AdminCommand::SnapshotExport, &shared.shard_retry)
                    .map_err(|e| {
                        ErrorReply::new(
                            ErrorCode::Internal,
                            format!("snapshot export from donor {donor_ep} failed: {e}"),
                        )
                    })?;
                let shipment = exported
                    .get("shipment")
                    .and_then(Json::as_str)
                    .and_then(hex_decode)
                    .ok_or_else(|| {
                        ErrorReply::new(
                            ErrorCode::Internal,
                            format!("donor {donor_ep} returned an undecodable shipment"),
                        )
                    })?;
                donor_generation = exported
                    .get("generation")
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
                let installed_reply = conns
                    .admin(
                        &endpoint,
                        &AdminCommand::SnapshotInstall { shipment },
                        &shared.shard_retry,
                    )
                    .map_err(|e| {
                        ErrorReply::new(
                            ErrorCode::Internal,
                            format!("snapshot install on joining shard {endpoint} failed: {e}"),
                        )
                    })?;
                installed = installed_reply
                    .get("installed")
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
            }
            // Only now does the joiner take ring ownership.
            shared.lock_cluster().add(&endpoint);
            RouterMetrics::bump(&shared.metrics.shards_added);
            shared
                .metrics
                .warm_spare_entries_shipped
                .fetch_add(installed, Ordering::Relaxed);
            Ok(Json::obj(vec![
                ("ok", Json::from(true)),
                ("endpoint", Json::from(endpoint.as_str())),
                (
                    "donor",
                    donor.map(|d| Json::from(d.as_str())).unwrap_or(Json::Null),
                ),
                ("installed", Json::from(installed)),
                ("donor_generation", Json::from(donor_generation)),
            ]))
        }
        AdminCommand::RemoveShard { endpoint } => {
            if !shared.lock_cluster().remove(&endpoint) {
                return Err(ErrorReply::new(
                    ErrorCode::BadRequest,
                    format!("shard {endpoint} is not a ring member"),
                ));
            }
            RouterMetrics::bump(&shared.metrics.shards_removed);
            Ok(Json::obj(vec![
                ("ok", Json::from(true)),
                ("endpoint", Json::from(endpoint.as_str())),
            ]))
        }
        AdminCommand::Status => {
            let cluster = shared.lock_cluster();
            Ok(Json::obj(vec![
                ("ok", Json::from(true)),
                (
                    "members",
                    Json::Arr(cluster.ring.members().into_iter().map(Json::from).collect()),
                ),
                (
                    "shards",
                    Json::Arr(cluster.shards.iter().map(|s| s.to_json()).collect()),
                ),
            ]))
        }
        AdminCommand::SnapshotExport | AdminCommand::SnapshotInstall { .. } => {
            Err(ErrorReply::new(
                ErrorCode::BadRequest,
                "snapshot commands target a shard daemon directly, not the router",
            ))
        }
    }
}

/// Drain the replication queue: re-issue each fresh compile on the
/// key's ring successor so a primary death finds a warm replica.
fn replicate_loop(shared: Arc<Shared>, rx: Receiver<ReplJob>) {
    let mut conns = ShardConns::default();
    while let Ok(job) = rx.recv() {
        let Some(shard) = shared.lock_cluster().state_of(&job.target) else {
            continue; // target left the ring while queued
        };
        if !shard.is_up() {
            RouterMetrics::bump(&shared.metrics.replication_dropped);
            continue;
        }
        match conns.request(&job.target, &job.request, &shared.shard_retry) {
            Ok((_, latency)) => {
                // Background writes feed the EWMA but not the hedge
                // window — the quantile must reflect client forwards.
                shard.observe_latency(latency, false);
                note_success(&shared, &shard);
                RouterMetrics::bump(&shard.replication_writes);
                RouterMetrics::bump(&shared.metrics.replication_writes);
            }
            Err(err) => {
                // Link evidence (including frame-level complaints)
                // feeds the breaker; a plain rejection — e.g. draining
                // — does not: replication is best-effort either way.
                note_failure(&shared, &shard, &err);
                RouterMetrics::bump(&shared.metrics.replication_dropped);
            }
        }
    }
}

/// Periodically ping every shard: successes walk open breakers through
/// half-open trials back to closed, failure streaks trip them without
/// waiting for a request to stumble over them, and the measured
/// round-trip feeds the latency EWMA.
fn probe_loop(shared: Arc<Shared>) {
    while !shared.drain.load(Ordering::SeqCst) {
        let shards = shared.lock_cluster().shards.clone();
        for shard in shards {
            RouterMetrics::bump(&shared.metrics.health_probes);
            let started = Instant::now();
            if probe(&shard.endpoint) {
                shard.observe_latency(started.elapsed(), false);
                note_success(&shared, &shard);
            } else if shard.record_failure(shared.fail_threshold) == Transition::Opened {
                RouterMetrics::bump(&shared.metrics.shards_marked_down);
            }
        }
        // Sleep in small steps so a drain is honoured promptly.
        let mut slept = 0u64;
        while slept < shared.health_check_ms && !shared.drain.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(25));
            slept += 25;
        }
    }
}

/// One liveness probe: dial + ping with a bounded socket timeout.
fn probe(endpoint: &str) -> bool {
    match Client::connect(endpoint) {
        Ok(mut client) => {
            client.set_io_timeout(Some(PROBE_TIMEOUT));
            client.ping().is_ok()
        }
        Err(_) => false,
    }
}

/// Re-export for binaries that parse endpoint strings.
pub use dagsched_service::server::parse_endpoint as parse_router_endpoint;

#[cfg(test)]
mod tests {
    use super::*;

    /// A [`Shared`] with the given shard endpoints and fast-failing
    /// retry policy, for exercising `forward_request` directly.
    fn test_shared(shards: &[&str]) -> Shared {
        let mut cluster = Cluster {
            ring: Ring::new(),
            shards: Vec::new(),
        };
        for s in shards {
            cluster.add(s);
        }
        Shared {
            cluster: Mutex::new(cluster),
            metrics: RouterMetrics::default(),
            drain: Arc::new(AtomicBool::new(false)),
            replicas: 2,
            fail_threshold: 3,
            revive_threshold: 3,
            health_check_ms: 500,
            hedge: HedgeConfig {
                enabled: false,
                quantile: 0.95,
                min: Duration::from_millis(10),
                max: Duration::from_millis(400),
            },
            shard_retry: RetryPolicy {
                max_retries: 0,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(2),
                per_attempt_timeout: Some(Duration::from_millis(200)),
                overall_timeout: Some(Duration::from_secs(2)),
                jitter_seed: 1,
            },
            retry_budget: RetryBudget::default(),
        }
    }

    fn deadline_req(deadline_ms: u64) -> Vec<u8> {
        let mut req = ScheduleRequest::asm("add %o0, %o1, %o2");
        req.deadline_ms = Some(deadline_ms);
        req.to_json().to_string().into_bytes()
    }

    #[test]
    fn a_delayed_forward_subtracts_elapsed_time_and_fails_fast() {
        let shared = test_shared(&[]);
        let mut conns = ShardConns::default();
        let (tx, _rx) = sync_channel::<ReplJob>(1);

        // The frame sat queued for ~100ms against a 50ms deadline: the
        // old behaviour forwarded the original deadline unmodified (or
        // here, fell through to the no-shards busy); the fix sheds it
        // before any shard sees it.
        let arrival = Instant::now()
            .checked_sub(Duration::from_millis(100))
            .expect("monotonic clock is past 100ms");
        let err = forward_request(&shared, &mut conns, &tx, &deadline_req(50), arrival)
            .expect_err("the deadline expired while queued");
        assert_eq!(err.code, ErrorCode::DeadlineExpired);
        assert_eq!(
            shared
                .metrics
                .deadline_expired_in_router
                .load(Ordering::Relaxed),
            1
        );
        assert_eq!(
            shared.metrics.deadline_propagated_ms.count(),
            0,
            "an expired request must not count as propagated"
        );

        // Under the forward floor but not yet past the deadline is
        // shed too: ~2ms of budget cannot survive a shard hop.
        let err = forward_request(&shared, &mut conns, &tx, &deadline_req(102), arrival)
            .expect_err("less than the floor remains");
        assert_eq!(err.code, ErrorCode::DeadlineExpired);

        // With real budget left the deadline propagates and the next
        // failure is the ordinary no-shards busy.
        let err = forward_request(
            &shared,
            &mut conns,
            &tx,
            &deadline_req(5_000),
            Instant::now(),
        )
        .expect_err("no shards are configured");
        assert_eq!(err.code, ErrorCode::Busy);
        assert_eq!(shared.metrics.deadline_propagated_ms.count(), 1);
    }

    #[test]
    fn an_exhausted_retry_budget_stops_the_failover_ladder() {
        let a = "unix:/tmp/dagsched-test-noshard-a.sock";
        let b = "unix:/tmp/dagsched-test-noshard-b.sock";
        let mut shared = test_shared(&[a, b]);
        shared.retry_budget = RetryBudget::new(0, 8, 100);
        let mut conns = ShardConns::default();
        let (tx, _rx) = sync_channel::<ReplJob>(1);
        let payload = ScheduleRequest::asm("add %o0, %o1, %o2")
            .to_json()
            .to_string()
            .into_bytes();
        let err = forward_request(&shared, &mut conns, &tx, &payload, Instant::now())
            .expect_err("neither endpoint exists");
        assert!(err.code.is_retryable(), "{err}");
        assert_eq!(
            shared
                .metrics
                .retry_budget_exhausted
                .load(Ordering::Relaxed),
            1,
            "the second rung was denied"
        );
        let attempts: u64 = {
            let cluster = shared.lock_cluster();
            cluster
                .shards
                .iter()
                .map(|s| s.requests.load(Ordering::Relaxed))
                .sum()
        };
        assert_eq!(attempts, 1, "the first attempt is free, retries are not");
    }

    #[test]
    fn a_blown_primary_budget_starts_the_ladder_at_a_healthier_replica() {
        let a = "unix:/tmp/dagsched-test-slow-a.sock";
        let b = "unix:/tmp/dagsched-test-slow-b.sock";
        let shared = test_shared(&[a, b]);
        let req = {
            let mut r = ScheduleRequest::asm("add %o0, %o1, %o2");
            r.deadline_ms = Some(500);
            r
        };
        // Find the key's ring primary and make it look wedged: a 60s
        // EWMA with queued forwards estimates far past the 500ms
        // budget, while the secondary has no observations (estimate 0).
        let key = routing_key(&req).1;
        let primary_ep = {
            let cluster = shared.lock_cluster();
            cluster.ring.replicas(key, 2)[0].to_string()
        };
        let primary = shared
            .lock_cluster()
            .state_of(&primary_ep)
            .expect("primary state");
        primary.observe_latency(Duration::from_secs(60), false);
        primary.inflight.fetch_add(5, Ordering::Relaxed);

        let mut conns = ShardConns::default();
        let (tx, _rx) = sync_channel::<ReplJob>(1);
        let payload = req.to_json().to_string().into_bytes();
        let _ = forward_request(&shared, &mut conns, &tx, &payload, Instant::now())
            .expect_err("neither endpoint exists");
        assert_eq!(
            shared.metrics.deadline_reroutes.load(Ordering::Relaxed),
            1,
            "the ladder must not start at a primary that cannot make the deadline"
        );
    }

    #[test]
    fn routing_key_ignores_the_attempt_counter() {
        let mut a = ScheduleRequest::asm("add %o0, %o1, %o2");
        let mut b = a.clone();
        a.attempt = 0;
        b.attempt = 5;
        assert_eq!(routing_key(&a).1, routing_key(&b).1);
        let c = ScheduleRequest::asm("sub %o0, %o1, %o2");
        assert_ne!(routing_key(&a).1, routing_key(&c).1);
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = RouterConfig::default();
        assert_eq!(cfg.replicas, 2);
        assert!(cfg.fail_threshold >= 1);
        assert!(cfg.revive_threshold >= 1, "half-open revive by default");
        assert!(cfg.hedge, "hedging is on by default");
        assert!(cfg.hedge_quantile > 0.5 && cfg.hedge_quantile < 1.0);
        assert!(cfg.hedge_min_ms <= cfg.hedge_max_ms);
        assert!(cfg.shard_retry.max_retries >= 1);
        assert!(cfg.replication_queue > 0);
        assert!(cfg.workers >= 1);
        assert!(cfg.queue >= 1);
    }

    #[test]
    fn link_level_shard_replies_are_health_evidence_not_relays() {
        for code in [
            ErrorCode::MalformedFrame,
            ErrorCode::OversizedFrame,
            ErrorCode::ParseError,
        ] {
            let err = ClientError::Server(ErrorReply::new(code, "x"));
            assert!(
                error_is_health_evidence(&err),
                "{code:?} from a shard means the link corrupted our frame"
            );
        }
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::Quarantined,
            ErrorCode::DeadlineExpired,
        ] {
            let err = ClientError::Server(ErrorReply::new(code, "x"));
            assert!(
                !error_is_health_evidence(&err),
                "{code:?} is a verdict on the request, not the shard"
            );
        }
        let io = ClientError::Io(io::Error::new(io::ErrorKind::BrokenPipe, "x"));
        assert!(error_is_health_evidence(&io));
    }

    #[test]
    fn rung_errors_rewrite_link_complaints_as_retryable() {
        let shard = ShardState::new("unix:/tmp/s.sock");
        let frame = ClientError::Server(ErrorReply::new(ErrorCode::MalformedFrame, "x"));
        let rewritten = rung_error(&shard, frame);
        assert_eq!(rewritten.code, ErrorCode::Internal);
        let verdict = ClientError::Server(ErrorReply::new(ErrorCode::BadRequest, "x"));
        assert_eq!(rung_error(&shard, verdict).code, ErrorCode::BadRequest);
    }
}
