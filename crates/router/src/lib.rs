//! # dagsched-router — sharded serving for the scheduling daemon
//!
//! A std-only front-end that speaks the same length-prefixed wire
//! protocol as `dagsched-service` and fans requests out to N shard
//! daemons:
//!
//! - **Placement** ([`ring`]): a consistent-hash ring with virtual
//!   nodes over the request's content-addressed cache key, so the same
//!   request always lands on the same shard (hot caches) and
//!   membership changes move only ≈ 1/N of the key space.
//! - **Health** ([`shard`]): a per-shard circuit breaker
//!   (closed → open on a failure streak, open → half-open → closed
//!   through trial probes) plus a latency EWMA fed by probes and
//!   forwards, so gray failures — slow shards, flapping links — are
//!   scored, not just binary up/down.
//! - **Failover** ([`server`]): hedged primary (a forward that
//!   outlives the shard's recent latency quantile is raced against the
//!   next replica; first answer wins, the loser is cancelled) →
//!   replica set in ring order → any other live shard ordered by
//!   health score (`rerouted`, a cache miss rather than an error) →
//!   retryable `busy` only when nothing at all is live.
//! - **Replication**: fresh compiles on a key's primary are re-issued
//!   asynchronously on its first ring successor (R = 2 by default), so
//!   losing the primary finds a warm replica.
//! - **Membership**: `add-shard` ships a generation-numbered snapshot
//!   (the PR-5 store's portable [`dagsched_store::Shipment`] encoding)
//!   from a live donor to the joiner *before* it takes ring ownership
//!   — warm-spare promotion — and `remove-shard` drops it with minimal
//!   remap.
//!
//! The router exposes the daemon's `Ping`/`Metrics`/`Shutdown` frames
//! plus the shared `Admin` frame for membership, so the existing
//! [`dagsched_service::client::Client`] (retry policy included) talks
//! to a router and a single daemon interchangeably.

pub mod ring;
pub mod server;
pub mod shard;

pub use ring::{fnv64, Ring, VNODES_PER_SHARD};
pub use server::{routing_key, serve_router, RouterConfig, RouterHandle};
pub use shard::{BreakerState, RouterMetrics, ShardState, Transition};
