//! The consistent-hash ring: stable key → shard placement with
//! virtual nodes.
//!
//! Each shard endpoint is hashed onto [`VNODES_PER_SHARD`] points of a
//! 64-bit ring (a `BTreeMap` keyed by point). A request key owns the
//! first point clockwise from its own hash; its R-replica set is the
//! next R *distinct* shards along the ring. Virtual nodes smooth the
//! load (one physical shard owns many small arcs instead of one big
//! one), and membership changes move only the arcs adjacent to the
//! joining/leaving shard's points — ≈ `1/N` of the key space, never a
//! full reshuffle. That minimal-remap property is what keeps the
//! shards' content-addressed caches hot across membership changes, and
//! it is pinned by property tests in `tests/ring_properties.rs`.

use std::collections::BTreeMap;

/// Virtual nodes per shard. 512 points keeps the per-shard load share
/// within a few percent of uniform (σ ≈ 1/√V ≈ 4.4%) at every cluster
/// size the property tests cover; the ring stays tiny (≤ 8K points at
/// 16 shards) so membership ops remain microseconds.
pub const VNODES_PER_SHARD: u32 = 512;

/// FNV-1a over `bytes` (the same stable hash the rest of the workspace
/// uses for content identity).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: spreads FNV's low-entropy tail bits across
/// the whole word so ring points land uniformly.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The ring point for virtual node `vnode` of `endpoint`.
fn point(endpoint: &str, vnode: u32) -> u64 {
    mix(fnv64(endpoint.as_bytes()) ^ ((u64::from(vnode) << 32) | u64::from(vnode)))
}

/// A consistent-hash ring over shard endpoint strings.
#[derive(Debug, Clone, Default)]
pub struct Ring {
    /// Ring point → index into `members`.
    points: BTreeMap<u64, usize>,
    /// Shard endpoints in join order. Removal leaves a `None` hole so
    /// surviving indices (and therefore their ring points) stay put.
    members: Vec<Option<String>>,
}

impl Ring {
    /// An empty ring.
    pub fn new() -> Ring {
        Ring::default()
    }

    /// A ring over `endpoints`, in order.
    pub fn with_members<I, S>(endpoints: I) -> Ring
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut ring = Ring::new();
        for e in endpoints {
            ring.add(e.into());
        }
        ring
    }

    /// Live member endpoints, join order.
    pub fn members(&self) -> Vec<&str> {
        self.members.iter().filter_map(|m| m.as_deref()).collect()
    }

    /// Number of live members.
    pub fn len(&self) -> usize {
        self.members.iter().filter(|m| m.is_some()).count()
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `endpoint` is a member.
    pub fn contains(&self, endpoint: &str) -> bool {
        self.members.iter().any(|m| m.as_deref() == Some(endpoint))
    }

    /// Add a shard. Returns `false` (and changes nothing) when it is
    /// already a member. On a hash-point collision with an existing
    /// member the incumbent keeps the point, so either insertion order
    /// converges to the same ring.
    pub fn add(&mut self, endpoint: impl Into<String>) -> bool {
        let endpoint = endpoint.into();
        if self.contains(&endpoint) {
            return false;
        }
        let index = match self.members.iter().position(|m| m.is_none()) {
            Some(hole) => {
                self.members[hole] = Some(endpoint.clone());
                hole
            }
            None => {
                self.members.push(Some(endpoint.clone()));
                self.members.len() - 1
            }
        };
        for vnode in 0..VNODES_PER_SHARD {
            self.points.entry(point(&endpoint, vnode)).or_insert(index);
        }
        true
    }

    /// Remove a shard. Returns `false` when it was not a member.
    pub fn remove(&mut self, endpoint: &str) -> bool {
        let Some(index) = self
            .members
            .iter()
            .position(|m| m.as_deref() == Some(endpoint))
        else {
            return false;
        };
        self.points.retain(|_, i| *i != index);
        self.members[index] = None;
        true
    }

    /// The shard owning `key` (`None` on an empty ring).
    pub fn primary(&self, key: u64) -> Option<&str> {
        self.replicas(key, 1).into_iter().next()
    }

    /// The first `r` *distinct* shards clockwise from `key` — the
    /// key's replica set, primary first. Fewer than `r` when the ring
    /// has fewer members.
    pub fn replicas(&self, key: u64, r: usize) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::with_capacity(r.min(self.len()));
        if r == 0 {
            return out;
        }
        // One clockwise walk: the range above the key, then the wrap.
        for (_, &index) in self.points.range(key..).chain(self.points.range(..key)) {
            let Some(endpoint) = self.members[index].as_deref() else {
                continue;
            };
            if !out.contains(&endpoint) {
                out.push(endpoint);
                if out.len() == r {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_routes_nothing() {
        let ring = Ring::new();
        assert!(ring.is_empty());
        assert_eq!(ring.primary(42), None);
        assert!(ring.replicas(42, 2).is_empty());
    }

    #[test]
    fn single_shard_owns_everything() {
        let ring = Ring::with_members(["unix:/tmp/a.sock"]);
        for key in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(ring.primary(key), Some("unix:/tmp/a.sock"));
        }
    }

    #[test]
    fn replica_sets_are_distinct_and_primary_first() {
        let ring = Ring::with_members(["a", "b", "c"]);
        for key in 0..1000u64 {
            let reps = ring.replicas(mix(key), 2);
            assert_eq!(reps.len(), 2);
            assert_ne!(reps[0], reps[1]);
            assert_eq!(ring.primary(mix(key)), Some(reps[0]));
        }
        // Asking for more replicas than members yields all members.
        assert_eq!(ring.replicas(7, 5).len(), 3);
    }

    #[test]
    fn placement_ignores_insertion_order() {
        let forward = Ring::with_members(["a", "b", "c", "d"]);
        let backward = Ring::with_members(["d", "c", "b", "a"]);
        for key in 0..2000u64 {
            assert_eq!(
                forward.primary(mix(key)),
                backward.primary(mix(key)),
                "key {key}"
            );
        }
    }

    #[test]
    fn add_remove_round_trips() {
        let mut ring = Ring::with_members(["a", "b", "c"]);
        let before: Vec<Option<String>> = (0..500u64)
            .map(|k| ring.primary(mix(k)).map(str::to_string))
            .collect();
        assert!(ring.remove("b"));
        assert!(!ring.remove("b"), "double remove is a no-op");
        assert!(!ring.contains("b"));
        assert!(ring.add("b"));
        assert!(!ring.add("b"), "double add is a no-op");
        let after: Vec<Option<String>> = (0..500u64)
            .map(|k| ring.primary(mix(k)).map(str::to_string))
            .collect();
        assert_eq!(before, after, "remove+add restores every placement");
    }

    #[test]
    fn removed_shards_never_appear_in_replica_sets() {
        let mut ring = Ring::with_members(["a", "b", "c", "d"]);
        ring.remove("c");
        assert_eq!(ring.len(), 3);
        for key in 0..2000u64 {
            for rep in ring.replicas(mix(key), 3) {
                assert_ne!(rep, "c");
            }
        }
    }
}
