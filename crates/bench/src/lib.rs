//! The experiment harness: regenerates every table and figure of the
//! paper (Tables 1–5, Figure 1) plus the ablations behind its findings.
//!
//! * [`pipeline`] — the §6 measurement pipeline (DAG construction →
//!   intermediate heuristic pass → simple forward scheduling pass).
//! * [`rows`] — one function per paper artifact, each returning a
//!   printable table.
//! * the `tables` binary — `cargo run -p dagsched-bench --bin tables
//!   --release -- all` prints everything; see `EXPERIMENTS.md` for
//!   recorded output.
//! * Criterion benches (`benches/`) — statistically sound timing per
//!   table.

pub mod pipeline;
pub mod rows;

pub use pipeline::{
    run_benchmark, run_benchmark_jobs, simple_forward_scheduler, PipelineError, PipelineResult,
};
