//! The paper's §6 measurement pipeline.
//!
//! "In this comparison we emphasize not the particular heuristics nor
//! their order of application, but instead the pairing of DAG
//! construction algorithms with a simple forward scheduling pass. ...
//! The following backward static heuristics are used: max path to leaf,
//! max delay to leaf, and max delay to child. Each algorithm makes two
//! passes over the instructions and then one scheduling pass over the
//! DAG."
//!
//! [`run_benchmark`] executes exactly that over every block of a
//! generated benchmark and accumulates the structural statistics of
//! Tables 4 and 5.

use dagsched_core::{
    annotate_backward_cp, annotate_construction, BackwardOrder, ConstructionAlgorithm,
    HeuristicSet, MemDepPolicy, PreparedBlock,
};
use dagsched_isa::MachineModel;
use dagsched_sched::{
    Criterion, Gating, HeurKey, ListScheduler, SchedDirection, Schedule, SelectStrategy,
};
use dagsched_stats::DagStructure;
use dagsched_workloads::Benchmark;

/// The simple forward scheduling pass of §6: earliest-execution gating
/// with a critical-path winnowing stack over the three backward static
/// heuristics.
pub fn simple_forward_scheduler() -> ListScheduler {
    ListScheduler {
        direction: SchedDirection::Forward,
        gating: Gating::ByEarliestExec {
            include_fpu_busy: false,
        },
        strategy: SelectStrategy::Winnowing(vec![
            Criterion::max(HeurKey::MaxDelayToLeaf),
            Criterion::max(HeurKey::MaxPathToLeaf),
            Criterion::max(HeurKey::MaxDelayToChild),
        ]),
        pin_terminator: true,
        birthing_boost: 0,
    }
}

/// Aggregated result of scheduling a whole benchmark.
#[derive(Debug)]
pub struct PipelineResult {
    /// DAG structural statistics (children/inst, arcs/block).
    pub structure: DagStructure,
    /// Total instructions scheduled.
    pub insts: usize,
    /// Sum of schedule makespans (cycles) across blocks.
    pub total_cycles: u64,
}

/// Run construction + heuristic calculation + scheduling on every block
/// of `bench`, using `algo`, and accumulate statistics.
///
/// `verify` additionally checks every schedule against its DAG (used by
/// the test suite; disabled in timing runs).
pub fn run_benchmark(
    bench: &Benchmark,
    model: &MachineModel,
    algo: ConstructionAlgorithm,
    policy: MemDepPolicy,
    heur_order: BackwardOrder,
    verify: bool,
) -> PipelineResult {
    let scheduler = simple_forward_scheduler();
    let mut structure = DagStructure::new();
    let mut insts = 0usize;
    let mut total_cycles = 0u64;
    for block in &bench.blocks {
        let block_insns = bench.program.block_insns(block);
        if block_insns.is_empty() {
            continue;
        }
        // Pass 1 over the instructions: preparation + DAG construction.
        let prepared = PreparedBlock::new(block_insns);
        let dag = algo.run(&prepared, model, policy);
        // Pass 2: the intermediate heuristic calculation step.
        let mut heur = HeuristicSet::default();
        annotate_construction(&mut heur, &dag, block_insns, model);
        annotate_backward_cp(&mut heur, &dag, heur_order);
        // Pass 3: the scheduling pass over the DAG.
        let schedule: Schedule = scheduler.run(&dag, block_insns, model, &heur);
        if verify {
            schedule
                .verify(&dag)
                .unwrap_or_else(|e| panic!("{}/{algo}: {e}", bench.name));
        }
        structure.add_dag(&dag);
        insts += block_insns.len();
        total_cycles += schedule.makespan(block_insns, model);
    }
    PipelineResult {
        structure,
        insts,
        total_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_workloads::{generate, BenchmarkProfile, PAPER_SEED};

    #[test]
    fn pipeline_schedules_grep_validly_under_every_algorithm() {
        let bench = generate(BenchmarkProfile::by_name("grep").unwrap(), PAPER_SEED);
        let model = MachineModel::sparc2();
        for &algo in ConstructionAlgorithm::MEASURED {
            let r = run_benchmark(
                &bench,
                &model,
                algo,
                MemDepPolicy::SymbolicExpr,
                BackwardOrder::ReverseWalk,
                true,
            );
            assert_eq!(r.insts, 1739, "{algo}");
            assert!(r.total_cycles > 0);
        }
    }

    #[test]
    fn n2_produces_more_arcs_than_table_building() {
        let bench = generate(BenchmarkProfile::by_name("tomcatv").unwrap(), PAPER_SEED);
        let model = MachineModel::sparc2();
        let n2 = run_benchmark(
            &bench,
            &model,
            ConstructionAlgorithm::N2Forward,
            MemDepPolicy::SymbolicExpr,
            BackwardOrder::ReverseWalk,
            false,
        );
        let tb = run_benchmark(
            &bench,
            &model,
            ConstructionAlgorithm::TableBackward,
            MemDepPolicy::SymbolicExpr,
            BackwardOrder::ReverseWalk,
            false,
        );
        let n2_arcs = n2.structure.arcs_per_block().avg;
        let tb_arcs = tb.structure.arcs_per_block().avg;
        assert!(
            n2_arcs > 2.0 * tb_arcs,
            "paper shape: n**2 arcs/block ({n2_arcs:.1}) >> table ({tb_arcs:.1})"
        );
    }

    #[test]
    fn forward_and_backward_tables_agree_on_structure() {
        let bench = generate(BenchmarkProfile::by_name("linpack").unwrap(), PAPER_SEED);
        let model = MachineModel::sparc2();
        let f = run_benchmark(
            &bench,
            &model,
            ConstructionAlgorithm::TableForward,
            MemDepPolicy::SymbolicExpr,
            BackwardOrder::ReverseWalk,
            false,
        );
        let b = run_benchmark(
            &bench,
            &model,
            ConstructionAlgorithm::TableBackward,
            MemDepPolicy::SymbolicExpr,
            BackwardOrder::ReverseWalk,
            false,
        );
        // §6: "the two table-building methods are essentially equivalent";
        // they may differ by a handful of arcs on may-alias chains, so
        // compare within 2%.
        let fa = f.structure.arcs_per_block().avg;
        let ba = b.structure.arcs_per_block().avg;
        assert!(
            (fa - ba).abs() / fa.max(ba) < 0.02,
            "forward {fa:.2} vs backward {ba:.2}"
        );
    }
}
