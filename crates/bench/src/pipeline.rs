//! The paper's §6 measurement pipeline.
//!
//! "In this comparison we emphasize not the particular heuristics nor
//! their order of application, but instead the pairing of DAG
//! construction algorithms with a simple forward scheduling pass. ...
//! The following backward static heuristics are used: max path to leaf,
//! max delay to leaf, and max delay to child. Each algorithm makes two
//! passes over the instructions and then one scheduling pass over the
//! DAG."
//!
//! [`run_benchmark`] executes exactly that over every block of a
//! generated benchmark and accumulates the structural statistics of
//! Tables 4 and 5.

use dagsched_core::{
    annotate_backward_cp, annotate_construction, map_blocks_with_scratch, BackwardOrder,
    ConstructionAlgorithm, HeuristicSet, MemDepPolicy, PhaseStats, PreparedBlock, Scratch,
};
use dagsched_isa::{Instruction, MachineModel};
use dagsched_sched::{
    Criterion, Gating, HeurKey, ListScheduler, SchedDirection, Schedule, SelectStrategy,
};
use dagsched_stats::DagStructure;
use dagsched_workloads::Benchmark;

/// The simple forward scheduling pass of §6: earliest-execution gating
/// with a critical-path winnowing stack over the three backward static
/// heuristics.
pub fn simple_forward_scheduler() -> ListScheduler {
    ListScheduler {
        direction: SchedDirection::Forward,
        gating: Gating::ByEarliestExec {
            include_fpu_busy: false,
        },
        strategy: SelectStrategy::Winnowing(vec![
            Criterion::max(HeurKey::MaxDelayToLeaf),
            Criterion::max(HeurKey::MaxPathToLeaf),
            Criterion::max(HeurKey::MaxDelayToChild),
        ]),
        pin_terminator: true,
        birthing_boost: 0,
    }
}

/// A schedule that failed verification against its DAG.
///
/// Surfaced as a typed error instead of a worker panic so harnesses
/// (and the scheduling service, which shares the no-panic policy) can
/// report the offending benchmark/algorithm pair and move on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineError {
    /// The benchmark being scheduled.
    pub bench: String,
    /// The construction algorithm in use.
    pub algo: ConstructionAlgorithm,
    /// The verifier's message.
    pub message: String,
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}: invalid schedule: {}",
            self.bench, self.algo, self.message
        )
    }
}

impl std::error::Error for PipelineError {}

/// Aggregated result of scheduling a whole benchmark.
#[derive(Debug)]
pub struct PipelineResult {
    /// DAG structural statistics (children/inst, arcs/block).
    pub structure: DagStructure,
    /// Total instructions scheduled.
    pub insts: usize,
    /// Sum of schedule makespans (cycles) across blocks.
    pub total_cycles: u64,
    /// Per-phase counters aggregated over every block (comparisons,
    /// table probes, arcs added/suppressed, nanoseconds per phase).
    pub stats: PhaseStats,
}

/// One block's contribution to a [`PipelineResult`].
#[allow(clippy::too_many_arguments)]
fn run_block(
    bench: &Benchmark,
    block_insns: &[Instruction],
    model: &MachineModel,
    algo: ConstructionAlgorithm,
    policy: MemDepPolicy,
    heur_order: BackwardOrder,
    verify: bool,
    scheduler: &ListScheduler,
    scratch: &mut Scratch,
) -> Result<(DagStructure, usize, u64), PipelineError> {
    // Pass 1 over the instructions: preparation + DAG construction.
    let prepared = PreparedBlock::new(block_insns);
    let dag = algo.run_with_scratch(&prepared, model, policy, scratch);
    // Pass 2: the intermediate heuristic calculation step.
    let t_heur = std::time::Instant::now();
    let mut heur = HeuristicSet::default();
    annotate_construction(&mut heur, &dag, block_insns, model);
    annotate_backward_cp(&mut heur, &dag, heur_order);
    scratch.stats.heur_ns += t_heur.elapsed().as_nanos() as u64;
    // Pass 3: the scheduling pass over the DAG.
    let t_sched = std::time::Instant::now();
    let schedule: Schedule = scheduler.run(&dag, block_insns, model, &heur);
    scratch.stats.sched_ns += t_sched.elapsed().as_nanos() as u64;
    if verify {
        schedule.verify(&dag).map_err(|e| PipelineError {
            bench: bench.name.to_string(),
            algo,
            message: e.to_string(),
        })?;
    }
    let mut structure = DagStructure::new();
    structure.add_dag(&dag);
    Ok((
        structure,
        block_insns.len(),
        schedule.makespan(block_insns, model),
    ))
}

/// Run construction + heuristic calculation + scheduling on every block
/// of `bench`, using `algo`, and accumulate statistics.
///
/// `verify` additionally checks every schedule against its DAG (used by
/// the test suite; disabled in timing runs). A verification failure is
/// reported as a typed [`PipelineError`], not a panic.
pub fn run_benchmark(
    bench: &Benchmark,
    model: &MachineModel,
    algo: ConstructionAlgorithm,
    policy: MemDepPolicy,
    heur_order: BackwardOrder,
    verify: bool,
) -> Result<PipelineResult, PipelineError> {
    run_benchmark_jobs(bench, model, algo, policy, heur_order, verify, 1)
}

/// [`run_benchmark`] sharded across `jobs` worker threads, each with a
/// reusable [`Scratch`] arena.
///
/// Blocks are distributed by a fixed stride and every per-block result is
/// folded back in original block order, so the statistics — structure,
/// instruction and cycle totals, and the count-fields of
/// [`PipelineResult::stats`] — are identical for every `jobs` value
/// (timing fields genuinely vary). `jobs == 1` is the serial path used
/// by [`run_benchmark`].
#[allow(clippy::too_many_arguments)]
pub fn run_benchmark_jobs(
    bench: &Benchmark,
    model: &MachineModel,
    algo: ConstructionAlgorithm,
    policy: MemDepPolicy,
    heur_order: BackwardOrder,
    verify: bool,
    jobs: usize,
) -> Result<PipelineResult, PipelineError> {
    let scheduler = simple_forward_scheduler();
    let items: Vec<&[Instruction]> = bench
        .blocks
        .iter()
        .map(|b| bench.program.block_insns(b))
        .filter(|insns| !insns.is_empty())
        .collect();
    let (per_block, stats) = map_blocks_with_scratch(&items, jobs, |_, block_insns, scratch| {
        run_block(
            bench,
            block_insns,
            model,
            algo,
            policy,
            heur_order,
            verify,
            &scheduler,
            scratch,
        )
    });
    let mut structure = DagStructure::new();
    let mut insts = 0usize;
    let mut total_cycles = 0u64;
    for result in per_block {
        let (s, n, cycles) = result?;
        structure.merge(&s);
        insts += n;
        total_cycles += cycles;
    }
    Ok(PipelineResult {
        structure,
        insts,
        total_cycles,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_workloads::{generate, BenchmarkProfile, PAPER_SEED};

    #[test]
    fn pipeline_schedules_grep_validly_under_every_algorithm() {
        let bench = generate(BenchmarkProfile::by_name("grep").unwrap(), PAPER_SEED);
        let model = MachineModel::sparc2();
        for &algo in ConstructionAlgorithm::MEASURED {
            let r = run_benchmark(
                &bench,
                &model,
                algo,
                MemDepPolicy::SymbolicExpr,
                BackwardOrder::ReverseWalk,
                true,
            )
            .expect("schedule verification");
            assert_eq!(r.insts, 1739, "{algo}");
            assert!(r.total_cycles > 0);
        }
    }

    #[test]
    fn n2_produces_more_arcs_than_table_building() {
        let bench = generate(BenchmarkProfile::by_name("tomcatv").unwrap(), PAPER_SEED);
        let model = MachineModel::sparc2();
        let n2 = run_benchmark(
            &bench,
            &model,
            ConstructionAlgorithm::N2Forward,
            MemDepPolicy::SymbolicExpr,
            BackwardOrder::ReverseWalk,
            false,
        )
        .unwrap();
        let tb = run_benchmark(
            &bench,
            &model,
            ConstructionAlgorithm::TableBackward,
            MemDepPolicy::SymbolicExpr,
            BackwardOrder::ReverseWalk,
            false,
        )
        .unwrap();
        let n2_arcs = n2.structure.arcs_per_block().avg;
        let tb_arcs = tb.structure.arcs_per_block().avg;
        assert!(
            n2_arcs > 2.0 * tb_arcs,
            "paper shape: n**2 arcs/block ({n2_arcs:.1}) >> table ({tb_arcs:.1})"
        );
    }

    #[test]
    fn forward_and_backward_tables_agree_on_structure() {
        let bench = generate(BenchmarkProfile::by_name("linpack").unwrap(), PAPER_SEED);
        let model = MachineModel::sparc2();
        let f = run_benchmark(
            &bench,
            &model,
            ConstructionAlgorithm::TableForward,
            MemDepPolicy::SymbolicExpr,
            BackwardOrder::ReverseWalk,
            false,
        )
        .unwrap();
        let b = run_benchmark(
            &bench,
            &model,
            ConstructionAlgorithm::TableBackward,
            MemDepPolicy::SymbolicExpr,
            BackwardOrder::ReverseWalk,
            false,
        )
        .unwrap();
        // §6: "the two table-building methods are essentially equivalent";
        // they may differ by a handful of arcs on may-alias chains, so
        // compare within 2%.
        let fa = f.structure.arcs_per_block().avg;
        let ba = b.structure.arcs_per_block().avg;
        assert!(
            (fa - ba).abs() / fa.max(ba) < 0.02,
            "forward {fa:.2} vs backward {ba:.2}"
        );
    }
}
