//! `loadgen` — closed-plus-paced load harness for `dagsched-service`.
//!
//! Replays the paper's workload profiles against a scheduling daemon at
//! a target request rate and reports client-observed latency
//! percentiles plus the server's cache hit rate:
//!
//! ```text
//! loadgen --qps 200 --requests 400 --clients 4 --out service-load.json
//! loadgen --connect unix:/tmp/dagsched.sock --profiles grep,yacc
//! ```
//!
//! Without `--connect` the harness starts an in-process server on an
//! ephemeral TCP port, so a single binary produces the whole
//! measurement. Requests cycle over `profiles x seeds`; with the
//! default `--seeds 8` and hundreds of requests, the steady state is
//! dominated by cache hits — exactly the regime the daemon exists for.
//! The run is summarized into a JSON artifact (default
//! `service-load.json`).
//!
//! # Chaos mode
//!
//! Built with `--features chaos`, the harness gains a `--chaos` flag
//! that turns the run into a fault-tolerance audit: the in-process
//! server is configured with deterministic fault injection (10% worker
//! panics, 10% slow replies, plus truncated/corrupted/reset response
//! frames), every request goes through the retrying client, and the
//! run *fails* unless all of the following hold:
//!
//! 1. the daemon survives — it still answers a ping after the last
//!    request and drains cleanly;
//! 2. every request reaches a terminal outcome — a response or a typed
//!    error — rather than hanging;
//! 3. every `degraded: false` response is bit-identical to a fresh
//!    serial compile of the same program;
//! 4. every `degraded: true` response passes the standalone validity
//!    oracle (`dagsched_verify::check_reordering_text`).
//!
//! ```text
//! loadgen --chaos --seed 1991 --deadline-ms 200 --out service-chaos.json
//! ```
//!
//! The same `--seed` replays the same fault stream bit-for-bit, so a
//! chaos run that found a bug is a reproducer, not an anecdote.
//!
//! # Crash-loop mode
//!
//! Also behind `--features chaos`, `--crash-loop N` audits the *other*
//! failure axis: process death. The harness spawns the daemon as a
//! child process (this same binary, re-executed in a hidden serve-only
//! mode) with a persistent `--state-dir`, then runs N kill cycles:
//! pump requests, `SIGKILL` the daemon mid-load, corrupt the surviving
//! store files with the seeded storage-fault injector (torn final
//! record, WAL bit flip, truncated snapshot, duplicated WAL tail),
//! restart, repeat. The run *fails* unless:
//!
//! 1. no corrupt reply is ever served — every successful response is
//!    bit-identical to a fresh serial compile of the same program;
//! 2. the final restart recovers a warm cache — post-restart hit rate
//!    is at least half the pre-crash hit rate, and the server reports
//!    `recovered_entries > 0`;
//! 3. after a graceful final drain, `fsck` finds the store clean.
//!
//! ```text
//! loadgen --crash-loop 5 --seed 7 --out service-crash-loop.json
//! ```
//!
//! # Cluster mode
//!
//! `--cluster N` audits the router tier: the harness spawns N shard
//! daemons as child processes (this binary re-executed in the hidden
//! serve-only mode), stands up an in-process `dagsched-router` over
//! them, and drives the whole load through the router. Every reply is
//! verified bit-identical to a fresh serial compile — routed and
//! direct answers must be the same bytes. With `--kill-shard`, one
//! shard is `SIGKILL`ed mid-run; the run *fails* unless:
//!
//! 1. zero invariant violations — every reply (before, during, and
//!    after the kill) matches the serial compile, and no request ends
//!    in an error despite the retry budget;
//! 2. the post-failover hit rate is at least half the pre-kill rate
//!    (the ring's stable placement plus replication keeps the
//!    surviving caches useful).
//!
//! ```text
//! loadgen --cluster 3 --kill-shard --requests 300 --out service-cluster.json
//! ```
//!
//! # Netchaos mode
//!
//! `--netchaos` (composes with `--cluster N`) audits the *gray*-failure
//! axis: instead of killing a shard, every router→shard link runs
//! through a seeded `dagsched-netchaos` wire proxy injecting latency,
//! bandwidth caps, mid-frame stalls, one-way partitions, resets, and
//! byte corruption on at least 10% of connections (`--faults`, in ‰).
//! On top of the seeded background faults, one scripted episode fires
//! mid-run: link 0's request direction is blackholed (the nastiest
//! gray failure — replies flow, requests vanish), held until the
//! victim's circuit breaker opens on probe evidence, exercised with an
//! open-breaker pass, then healed so the breaker must walk back
//! through half-open trials. The run *fails* unless:
//!
//! 1. zero crashes — the router still answers a ping and every shard
//!    drains gracefully after the run;
//! 2. every request reaches a terminal outcome — a verified response
//!    or a typed error — rather than hanging;
//! 3. every reply is bit-identical to a fresh serial compile (the
//!    frame checksum turns in-flight corruption into retries, never
//!    silently-wrong schedules);
//! 4. the gray-failure machinery demonstrably engaged: at least one
//!    failover, one breaker-open, one hedged request, and one hedge
//!    win.
//!
//! ```text
//! loadgen --cluster 3 --netchaos --seed 1991 --out service-netchaos.json
//! ```
//!
//! # Overload mode
//!
//! `--overload` audits the *load* axis: metastable failure under a
//! demand spike. The harness first measures the in-process daemon's
//! capacity closed-loop, then steps offered load 1× → 3× → 1× of that
//! capacity over a Canon-style heavy DAG-shape mix (`canon-*`
//! profiles: G(n,p), layered, fan-in, fan-out at varied sizes), with
//! every request carrying a deadline and every client retrying through
//! one shared token-bucket [`RetryBudget`]. The run *fails* unless:
//!
//! 1. goodput during the 3× spike stays at ≥70% of measured capacity —
//!    the daemon sheds excess instead of collapsing;
//! 2. p99 latency of *admitted* requests stays bounded by the deadline
//!    plus a fixed slack — queueing is controlled, not unbounded;
//! 3. retry amplification (wire requests ÷ logical requests) stays
//!    under 1.3× — the budget prevents a retry storm;
//! 4. goodput recovers to ≥95% of baseline within 10 s of the spike
//!    ending — no metastable sustained collapse;
//! 5. the daemon sheds some work by deadline (`shed_expired > 0`),
//!    answers a ping afterwards, and every request reaches a terminal
//!    outcome.
//!
//! ```text
//! loadgen --overload --out service-overload.json
//! ```

use std::collections::HashMap;
use std::io;
use std::path::Path;
#[cfg(feature = "chaos")]
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dagsched_driver::{schedule_program_batch, DriverConfig, Limits, NoCache};
use dagsched_isa::MachineModel;
use dagsched_netchaos::{serve_proxy, ChaosConfig, Direction, ProxyHandle};
use dagsched_router::{serve_router, RouterConfig};
use dagsched_sched::{Scheduler, SchedulerKind};
use dagsched_service::json::Json;
use dagsched_service::server::{serve, Listen, ServerConfig};
use dagsched_service::{Client, RetryBudget, RetryPolicy, ScheduleRequest};
use dagsched_stats::percentile;
use dagsched_workloads::{generate, BenchmarkProfile, PAPER_SEED};

struct Options {
    /// Endpoint to dial; `None` starts an in-process server.
    connect: Option<String>,
    /// Bind the in-process server to this Unix socket path instead of
    /// an ephemeral TCP port.
    unix: Option<String>,
    /// Target aggregate request rate (requests/second).
    qps: f64,
    /// Total requests to issue.
    requests: usize,
    /// Concurrent client connections.
    clients: usize,
    /// Workload profiles to cycle over.
    profiles: Vec<String>,
    /// Distinct generator seeds per profile (controls the hit rate:
    /// the working set is `profiles x seeds` distinct programs).
    seeds: u64,
    /// Worker threads for the in-process server.
    workers: usize,
    /// Entry bound for the in-process server's schedule cache.
    cache_entries: usize,
    /// Output artifact path (`None` = mode-dependent default).
    out: Option<String>,
    /// Chaos mode: inject faults, retry, audit invariants.
    chaos: bool,
    /// Seed for the injected-fault stream (chaos mode).
    chaos_seed: u64,
    /// Base injection rate in ‰ (chaos mode): applied to panics and
    /// slow replies; frame faults run at 40% of it.
    fault_per_mille: u16,
    /// Injected delay for slow replies, in milliseconds (chaos mode).
    slow_ms: u64,
    /// Retry budget per request (chaos mode).
    retries: u32,
    /// Per-request deadline tagged on every request, if any.
    deadline_ms: Option<u64>,
    /// Crash-loop mode: SIGKILL the daemon this many times.
    crash_loop: Option<u32>,
    /// Crash-loop: where the daemon persists its state (default: a
    /// fresh temp directory).
    state_dir: Option<String>,
    /// Hidden: run as the crash-loop's serve-only child process.
    serve_child: bool,
    /// Cluster mode: spawn this many shard daemons behind a router.
    cluster: Option<usize>,
    /// Cluster mode: SIGKILL shard 0 once a third of the load is in.
    kill_shard: bool,
    /// Netchaos mode: run every router→shard link through a seeded
    /// fault-injecting wire proxy and audit gray-failure tolerance.
    netchaos: bool,
    /// Exit nonzero unless the achieved QPS reaches this floor
    /// (standard mode only: a self-asserting soak gate for CI).
    min_qps: Option<f64>,
    /// Exit nonzero unless the server coalesced at least one request
    /// (standard mode only; requires reaching the server's metrics).
    expect_coalesced: bool,
    /// Overload mode: measure capacity, then step offered load
    /// 1x -> 3x -> 1x of it and audit the overload-control machinery.
    overload: bool,
    /// Byte-accounted admission budget for the in-process server
    /// (`ServerConfig::mem_budget`).
    mem_budget: Option<u64>,
    /// Whether `--profiles` / `--clients` / `--workers` were given
    /// explicitly: overload mode picks heavier defaults otherwise.
    profiles_explicit: bool,
    clients_explicit: bool,
    workers_explicit: bool,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            connect: None,
            unix: None,
            qps: 200.0,
            requests: 400,
            clients: 4,
            profiles: vec![
                "grep".to_string(),
                "cccp".to_string(),
                "linpack".to_string(),
            ],
            seeds: 8,
            workers: 4,
            cache_entries: dagsched_service::CacheConfig::default().max_entries,
            out: None,
            chaos: false,
            chaos_seed: 1991,
            fault_per_mille: 100,
            slow_ms: 20,
            retries: 4,
            deadline_ms: None,
            crash_loop: None,
            state_dir: None,
            serve_child: false,
            cluster: None,
            kill_shard: false,
            netchaos: false,
            min_qps: None,
            expect_coalesced: false,
            overload: false,
            mem_budget: None,
            profiles_explicit: false,
            clients_explicit: false,
            workers_explicit: false,
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--connect" => opts.connect = Some(args.next().ok_or("--connect needs an endpoint")?),
            "--unix" => opts.unix = Some(args.next().ok_or("--unix needs a socket path")?),
            "--qps" => {
                opts.qps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&q: &f64| q > 0.0)
                    .ok_or("--qps needs a positive rate")?;
            }
            "--requests" => {
                opts.requests = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or("--requests needs a positive count")?;
            }
            "--clients" => {
                opts.clients = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or("--clients needs a positive count")?;
                opts.clients_explicit = true;
            }
            "--profiles" => {
                let v = args
                    .next()
                    .ok_or("--profiles needs a comma-separated list")?;
                opts.profiles = v.split(',').map(|s| s.trim().to_string()).collect();
                if opts.profiles.iter().any(|p| p.is_empty()) {
                    return Err("--profiles has an empty entry".to_string());
                }
                opts.profiles_explicit = true;
            }
            "--seeds" => {
                opts.seeds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &u64| n > 0)
                    .ok_or("--seeds needs a positive count")?;
            }
            "--workers" => {
                opts.workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or("--workers needs a positive count")?;
                opts.workers_explicit = true;
            }
            "--cache-entries" => {
                opts.cache_entries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or("--cache-entries needs a positive count")?;
            }
            "--out" => opts.out = Some(args.next().ok_or("--out needs a path")?),
            "--chaos" => opts.chaos = true,
            "--seed" => {
                opts.chaos_seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs an integer")?;
            }
            "--faults" => {
                opts.fault_per_mille = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &u16| n <= 1000)
                    .ok_or("--faults needs a per-mille rate (0..=1000)")?;
            }
            "--slow-ms" => {
                opts.slow_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--slow-ms needs a millisecond count")?;
            }
            "--retries" => {
                opts.retries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--retries needs a count")?;
            }
            "--deadline-ms" => {
                opts.deadline_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--deadline-ms needs a millisecond count")?,
                );
            }
            "--crash-loop" => {
                opts.crash_loop = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &u32| n > 0)
                        .ok_or("--crash-loop needs a positive kill count")?,
                );
            }
            "--state-dir" => {
                opts.state_dir = Some(args.next().ok_or("--state-dir needs a directory")?);
            }
            "--serve-child" => opts.serve_child = true,
            "--cluster" => {
                opts.cluster = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &usize| n > 0)
                        .ok_or("--cluster needs a positive shard count")?,
                );
            }
            "--kill-shard" => opts.kill_shard = true,
            "--netchaos" => opts.netchaos = true,
            "--min-qps" => {
                opts.min_qps = Some(
                    args.next()
                        .and_then(|v| v.parse::<f64>().ok())
                        .filter(|q| *q > 0.0)
                        .ok_or("--min-qps needs a positive rate")?,
                );
            }
            "--expect-coalesced" => opts.expect_coalesced = true,
            "--overload" => opts.overload = true,
            "--mem-budget" => {
                opts.mem_budget = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &u64| n > 0)
                        .ok_or("--mem-budget needs a positive byte count")?,
                );
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: loadgen [--connect EP | --unix PATH] [--qps N] [--requests N] [--clients N]\n\
                     \x20              [--profiles a,b,c] [--seeds N] [--workers N]\n\
                     \x20              [--cache-entries N] [--deadline-ms N] [--out FILE]\n\
                     \x20              [--chaos] [--seed N] [--faults PERMILLE] [--slow-ms N]\n\
                     \x20              [--retries N]\n\
                     \x20              [--crash-loop N] [--state-dir DIR]\n\
                     \x20              [--cluster N] [--kill-shard | --netchaos]\n\
                     \x20              [--min-qps N] [--expect-coalesced]\n\
                     \x20              [--overload] [--mem-budget BYTES]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if opts.chaos && opts.connect.is_some() {
        return Err(
            "--chaos installs fault injection on the in-process server; \
                    it cannot target a remote daemon (omit --connect)"
                .to_string(),
        );
    }
    if opts.unix.is_some() && opts.connect.is_some() {
        return Err("--unix binds the in-process server; it conflicts with --connect".to_string());
    }
    if opts.crash_loop.is_some() && opts.connect.is_some() {
        return Err(
            "--crash-loop spawns its own child daemon; it cannot target a \
                    remote one (omit --connect)"
                .to_string(),
        );
    }
    if opts.crash_loop.is_some() && opts.chaos {
        return Err(
            "--crash-loop and --chaos are separate audits; run them separately".to_string(),
        );
    }
    if opts.serve_child && opts.unix.is_none() {
        return Err("--serve-child needs --unix".to_string());
    }
    if opts.cluster.is_some() {
        if opts.connect.is_some() || opts.unix.is_some() {
            return Err(
                "--cluster spawns its own shards and router; it conflicts with \
                        --connect / --unix"
                    .to_string(),
            );
        }
        if opts.chaos || opts.crash_loop.is_some() {
            return Err(
                "--cluster, --chaos and --crash-loop are separate audits; run \
                        them separately"
                    .to_string(),
            );
        }
        if opts.deadline_ms.is_some() {
            return Err(
                "--cluster verifies replies against undegraded serial compiles; \
                        it runs without --deadline-ms"
                    .to_string(),
            );
        }
    }
    if opts.kill_shard && opts.cluster.is_none_or(|n| n < 2) {
        return Err("--kill-shard needs --cluster with at least 2 shards".to_string());
    }
    if opts.netchaos {
        if opts.cluster.is_none_or(|n| n < 2) {
            return Err("--netchaos needs --cluster with at least 2 shards".to_string());
        }
        if opts.kill_shard {
            return Err(
                "--netchaos and --kill-shard are separate audits; a SIGKILLed \
                        shard would hide which machinery absorbed the fault"
                    .to_string(),
            );
        }
        if opts.fault_per_mille < 100 {
            return Err(
                "--netchaos audits gray-failure tolerance at >=10% link faults; \
                        --faults must be at least 100"
                    .to_string(),
            );
        }
    }
    if (opts.min_qps.is_some() || opts.expect_coalesced)
        && (opts.chaos || opts.crash_loop.is_some() || opts.cluster.is_some() || opts.overload)
    {
        return Err(
            "--min-qps / --expect-coalesced are standard-mode gates; the chaos, \
                    crash-loop, cluster and overload audits assert their own invariants"
                .to_string(),
        );
    }
    if opts.overload {
        if opts.connect.is_some() {
            return Err(
                "--overload calibrates against the in-process server's measured \
                        capacity; it cannot target a remote daemon (omit --connect)"
                    .to_string(),
            );
        }
        if opts.chaos || opts.crash_loop.is_some() || opts.cluster.is_some() {
            return Err(
                "--overload, --chaos, --crash-loop and --cluster are separate \
                        audits; run them separately"
                    .to_string(),
            );
        }
    }
    if opts.mem_budget.is_some() && opts.connect.is_some() {
        return Err(
            "--mem-budget configures the in-process server; it conflicts with \
                    --connect"
                .to_string(),
        );
    }
    Ok(opts)
}

/// Where the in-process server listens: an ephemeral TCP port, or the
/// `--unix` socket path.
fn listen_for(opts: &Options) -> Listen {
    match &opts.unix {
        Some(path) => Listen::Unix(std::path::PathBuf::from(path)),
        None => Listen::Tcp("127.0.0.1:0".to_string()),
    }
}

/// `(profile, generator seed)` for request number `k`: profile
/// `k % profiles` with seed `PAPER_SEED + (k / profiles) % seeds`.
/// Deterministic, so reruns replay the same stream.
fn mix_key(opts: &Options, k: usize) -> (String, u64) {
    let profile = opts.profiles[k % opts.profiles.len()].clone();
    let seed = PAPER_SEED + (k / opts.profiles.len()) as u64 % opts.seeds;
    (profile, seed)
}

fn request_for(opts: &Options, k: usize) -> ScheduleRequest {
    let (profile, seed) = mix_key(opts, k);
    let mut req = ScheduleRequest::profile(profile, seed);
    req.deadline_ms = opts.deadline_ms;
    req
}

struct ClientTally {
    latencies_ns: Vec<u64>,
    cache_hits: u64,
    cache_misses: u64,
    errors: u64,
}

fn run_client(
    endpoint: &str,
    opts: &Options,
    next: &AtomicUsize,
    start: Instant,
) -> Result<ClientTally, String> {
    let mut client = Client::connect(endpoint).map_err(|e| format!("connect: {e}"))?;
    let mut tally = ClientTally {
        latencies_ns: Vec::new(),
        cache_hits: 0,
        cache_misses: 0,
        errors: 0,
    };
    loop {
        let k = next.fetch_add(1, Ordering::Relaxed);
        if k >= opts.requests {
            return Ok(tally);
        }
        // Open-loop pacing: request `k` is due at `start + k/qps`;
        // sleeping until its slot keeps the aggregate rate at the
        // target regardless of how the clients interleave.
        let due = start + Duration::from_secs_f64(k as f64 / opts.qps);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let req = request_for(opts, k);
        let t = Instant::now();
        match client.request(&req) {
            Ok(resp) => {
                tally.latencies_ns.push(t.elapsed().as_nanos() as u64);
                tally.cache_hits += resp.stats.cache_hits;
                tally.cache_misses += resp.stats.cache_misses;
            }
            Err(e) => {
                tally.errors += 1;
                eprintln!("loadgen: request {k}: {e}");
                // A transport error poisons the connection; redial.
                if matches!(
                    e,
                    dagsched_service::ClientError::Io(_) | dagsched_service::ClientError::Frame(_)
                ) {
                    client = Client::connect(endpoint).map_err(|e| format!("redial: {e}"))?;
                }
            }
        }
    }
}

/// Ground truth for one `(profile, seed)` in the working set.
struct Reference {
    /// The generated program, rendered one instruction per line.
    /// Consumed by the chaos audit's validity oracle.
    #[cfg_attr(not(feature = "chaos"), allow(dead_code))]
    original: String,
    /// The serial, uncached driver's schedule under the server's
    /// default configuration.
    scheduled: Vec<String>,
}

/// Serially compile every program the run will request, before any
/// daemon (or fault) is involved, so the audits compare against ground
/// truth produced outside the blast radius.
fn references(opts: &Options) -> Result<HashMap<(String, u64), Reference>, String> {
    let model = MachineModel::sparc2();
    let config = DriverConfig {
        scheduler: Scheduler::new(SchedulerKind::Warren),
        ..DriverConfig::default()
    };
    let mut refs = HashMap::new();
    let keys = opts.profiles.len() * opts.seeds as usize;
    for k in 0..keys.min(opts.requests) {
        let (profile, seed) = mix_key(opts, k);
        if refs.contains_key(&(profile.clone(), seed)) {
            continue;
        }
        let bp = BenchmarkProfile::by_name(&profile)
            .ok_or_else(|| format!("unknown profile `{profile}`"))?;
        let bench = generate(bp, seed);
        let (result, _) = schedule_program_batch(
            &bench.program,
            &model,
            &config,
            1,
            &Limits::none(),
            &NoCache,
        )
        .map_err(|e| format!("serial reference for {profile}/{seed}: {e:?}"))?;
        let original = bench
            .program
            .insns
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n");
        let scheduled = result.insns.iter().map(|i| i.to_string()).collect();
        refs.insert(
            (profile, seed),
            Reference {
                original,
                scheduled,
            },
        );
    }
    Ok(refs)
}

/// The chaos audit. Gated behind the `chaos` feature because it
/// installs [`dagsched_service::FaultConfig`] on the in-process server,
/// which only exists when the service is built with `fault-injection`.
#[cfg(feature = "chaos")]
mod chaos {
    use super::*;

    use dagsched_service::{ClientError, FaultConfig};
    use dagsched_verify::check_reordering_text;

    /// The injected mix at the default `--faults 100`: 10% panics, 10%
    /// slow replies, and 4% each of truncated / corrupted / reset
    /// response frames — every failure class the retry + supervision
    /// machinery claims to absorb. `--faults N` scales the whole mix.
    pub fn fault_config(opts: &Options) -> FaultConfig {
        let base = opts.fault_per_mille;
        let frame = base * 2 / 5;
        FaultConfig {
            seed: opts.chaos_seed,
            panic_per_mille: base,
            slow_per_mille: base,
            slow_ms: opts.slow_ms,
            truncate_per_mille: frame,
            corrupt_per_mille: frame,
            reset_per_mille: frame,
        }
    }

    #[derive(Default)]
    pub struct ChaosTally {
        pub latencies_ns: Vec<u64>,
        /// `degraded: false` responses, checked bit-identical.
        pub ok_exact: u64,
        /// `degraded: true` responses, checked semantically valid.
        pub ok_degraded: u64,
        /// Typed server errors by wire code (all terminal).
        pub server_errors: HashMap<String, u64>,
        /// Requests whose retry budget ran out on transport errors.
        pub transport_failures: u64,
        /// Client-side retry/redial work (successful requests only).
        pub retries: u64,
        pub redials: u64,
        pub server_hints_honoured: u64,
        /// Invariant violations; any entry fails the run.
        pub violations: Vec<String>,
    }

    pub fn run_chaos_client(
        endpoint: &str,
        opts: &Options,
        refs: &HashMap<(String, u64), Reference>,
        next: &AtomicUsize,
        start: Instant,
        client_idx: usize,
    ) -> Result<ChaosTally, String> {
        let mut client = Client::connect(endpoint).map_err(|e| format!("connect: {e}"))?;
        let policy = RetryPolicy {
            max_retries: opts.retries,
            per_attempt_timeout: Some(Duration::from_secs(5)),
            jitter_seed: opts.chaos_seed ^ (client_idx as u64).wrapping_mul(0x9E37_79B9),
            ..RetryPolicy::default()
        };
        let mut tally = ChaosTally::default();
        loop {
            let k = next.fetch_add(1, Ordering::Relaxed);
            if k >= opts.requests {
                return Ok(tally);
            }
            let due = start + Duration::from_secs_f64(k as f64 / opts.qps);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
            let req = request_for(opts, k);
            let key = mix_key(opts, k);
            let t = Instant::now();
            match client.request_with_retry(&req, &policy) {
                Ok((resp, stats)) => {
                    tally.latencies_ns.push(t.elapsed().as_nanos() as u64);
                    tally.retries += u64::from(stats.retries);
                    tally.redials += u64::from(stats.redials);
                    tally.server_hints_honoured += u64::from(stats.server_hints_honoured);
                    let reference = refs.get(&key).expect("precomputed reference");
                    if resp.degraded {
                        tally.ok_degraded += 1;
                        // Invariant 4: a degraded schedule is still a
                        // *correct* schedule.
                        if let Err(e) = check_reordering_text(
                            &reference.original,
                            &resp.insns.join("\n"),
                            3,
                            opts.chaos_seed,
                        ) {
                            tally.violations.push(format!(
                                "request {k} ({}/{}): degraded reply fails validity: {e}",
                                key.0, key.1
                            ));
                        }
                    } else {
                        tally.ok_exact += 1;
                        // Invariant 3: no silent degradation — an
                        // undegraded reply is the serial compile.
                        if resp.insns != reference.scheduled {
                            tally.violations.push(format!(
                                "request {k} ({}/{}): degraded=false reply differs from \
                                 the serial compile",
                                key.0, key.1
                            ));
                        }
                    }
                }
                Err(ClientError::Server(reply)) => {
                    // Terminal typed error: Internal after retries ran
                    // out, Quarantined, DeadlineExpired, ... — a valid
                    // end state under invariant 2.
                    tally.latencies_ns.push(t.elapsed().as_nanos() as u64);
                    *tally
                        .server_errors
                        .entry(format!("{:?}", reply.code))
                        .or_insert(0) += 1;
                }
                Err(e) => {
                    // The retry budget ran out on transport errors.
                    // Still terminal; redial before the next request.
                    tally.transport_failures += 1;
                    eprintln!("loadgen: request {k}: retries exhausted: {e}");
                    client = Client::connect(endpoint).map_err(|e| format!("redial: {e}"))?;
                }
            }
        }
    }
}

/// The crash-loop audit. Gated behind the `chaos` feature because the
/// storage-fault injector only exists when `dagsched-store` is built
/// with `fault-injection`.
#[cfg(feature = "chaos")]
mod crash_loop {
    use super::*;

    use dagsched_service::{RetryPolicy, ScheduleResponse};

    pub fn endpoint(sock: &Path) -> String {
        format!("unix:{}", sock.display())
    }

    /// Dial policy that rides out the restart window: the child was
    /// just spawned (or just respawned over recovered state), so the
    /// socket appears some milliseconds from now.
    pub fn connect_policy() -> RetryPolicy {
        RetryPolicy {
            max_retries: 2000,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(40),
            per_attempt_timeout: Some(Duration::from_secs(10)),
            overall_timeout: Some(Duration::from_secs(30)),
            ..RetryPolicy::default()
        }
    }

    /// Re-execute this binary as a serve-only child the parent can
    /// `SIGKILL`.
    pub fn spawn_daemon(sock: &Path, state: &Path, opts: &Options) -> io::Result<Child> {
        Command::new(std::env::current_exe()?)
            .arg("--serve-child")
            .arg("--unix")
            .arg(sock)
            .arg("--state-dir")
            .arg(state)
            .arg("--workers")
            .arg(opts.workers.to_string())
            .arg("--cache-entries")
            .arg(opts.cache_entries.to_string())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
    }

    /// Invariant: every successful reply is bit-identical to the
    /// serial, uncached compile. Crash-loop requests never carry a
    /// deadline, so a degraded reply is also a violation.
    fn verify_reply(
        k: usize,
        key: &(String, u64),
        resp: &ScheduleResponse,
        refs: &HashMap<(String, u64), Reference>,
    ) -> Option<String> {
        let reference = refs.get(key).expect("precomputed reference");
        if resp.degraded {
            return Some(format!(
                "request {k} ({}/{}): unexpected degraded reply (no deadline was set)",
                key.0, key.1
            ));
        }
        if resp.insns != reference.scheduled {
            return Some(format!(
                "request {k} ({}/{}): reply differs from the serial compile \
                 (corrupt recovered entry?)",
                key.0, key.1
            ));
        }
        None
    }

    #[derive(Default)]
    pub struct SessionTally {
        /// Successful (and verified) responses.
        pub ok: u64,
        /// Requests that died with the daemon (expected once the kill
        /// fires; a violation otherwise).
        pub failed: u64,
        pub hits: u64,
        pub misses: u64,
        pub violations: Vec<String>,
    }

    impl SessionTally {
        pub fn hit_rate(&self) -> f64 {
            if self.hits + self.misses == 0 {
                0.0
            } else {
                self.hits as f64 / (self.hits + self.misses) as f64
            }
        }
    }

    /// Pump `budget` requests from the deterministic working-set mix.
    /// With `kill_at = Some(n)`, a side thread SIGKILLs the daemon once
    /// `n` requests have completed — while the pump is still
    /// mid-request, so the WAL is cut off at an arbitrary byte, not at
    /// a polite boundary.
    pub fn pump_session(
        child: &Mutex<Child>,
        sock: &Path,
        opts: &Options,
        refs: &HashMap<(String, u64), Reference>,
        budget: usize,
        kill_at: Option<usize>,
    ) -> Result<SessionTally, String> {
        let (mut client, _) = Client::connect_with_retry(&endpoint(sock), &connect_policy())
            .map_err(|e| format!("daemon did not come up: {e}"))?;
        let progress = AtomicUsize::new(0);
        let mut tally = SessionTally::default();
        std::thread::scope(|scope| {
            let progress = &progress;
            if let Some(at) = kill_at {
                scope.spawn(move || {
                    while progress.load(Ordering::Relaxed) < at {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    let _ = child.lock().unwrap().kill();
                });
            }
            for k in 0..budget {
                let req = request_for(opts, k);
                let key = mix_key(opts, k);
                match client.request(&req) {
                    Ok(resp) => {
                        tally.ok += 1;
                        tally.hits += resp.stats.cache_hits;
                        tally.misses += resp.stats.cache_misses;
                        if let Some(v) = verify_reply(k, &key, &resp, refs) {
                            tally.violations.push(v);
                        }
                    }
                    Err(e) => {
                        tally.failed += 1;
                        if kill_at.is_none() {
                            tally
                                .violations
                                .push(format!("request {k}: failed with no kill pending: {e}"));
                        }
                    }
                }
                // Count *completed* requests so the kill lands while
                // request `at` (or a later one) is on the wire.
                progress.store(k + 1, Ordering::Relaxed);
            }
        });
        Ok(tally)
    }
}

/// The hidden serve-only child mode backing `--crash-loop`: a real
/// daemon process the parent can `SIGKILL`, persisting to
/// `--state-dir`. Compiled unconditionally (it needs nothing from the
/// chaos feature) so the flag always behaves the same.
fn serve_child_main(opts: &Options) -> ! {
    let sock = opts.unix.as_ref().expect("checked in parse_args");
    let config = ServerConfig {
        workers: opts.workers,
        cache: dagsched_service::CacheConfig {
            max_entries: opts.cache_entries,
            ..dagsched_service::CacheConfig::default()
        },
        state_dir: opts.state_dir.as_ref().map(std::path::PathBuf::from),
        // Snapshot early and often: crash-loop runs are small, and a
        // low threshold exercises compaction + snapshot recovery too.
        wal_snapshot_threshold: 256 << 10,
        fsync_every: 4,
        ..ServerConfig::default()
    };
    let handle = serve(Listen::Unix(std::path::PathBuf::from(sock)), config).unwrap_or_else(|e| {
        eprintln!("loadgen[child]: serve: {e}");
        std::process::exit(1);
    });
    handle.join(); // until SIGKILL, or a client-driven drain
    std::process::exit(0);
}

/// Re-execute this binary as a RAM-only shard child for `--cluster`.
/// No `--state-dir`: the cluster audit grades the *ring* (placement,
/// replication, failover), so a killed shard's cache is genuinely
/// gone — surviving it is the router's job, not the store's.
fn spawn_shard_child(sock: &Path, opts: &Options) -> io::Result<Child> {
    Command::new(std::env::current_exe()?)
        .arg("--serve-child")
        .arg("--unix")
        .arg(sock)
        .arg("--workers")
        .arg(opts.workers.to_string())
        .arg("--cache-entries")
        .arg(opts.cache_entries.to_string())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
}

/// Retry policy for requests routed through the cluster front-end.
/// Generous on purpose: the audit's invariant is that the *client*
/// never sees an error, so the budget must ride out a shard death plus
/// the router's down-marking window.
fn cluster_retry_policy(opts: &Options, client_idx: usize) -> RetryPolicy {
    // Netchaos rungs can each burn a couple of seconds against a
    // blackholed link before the router's ladder moves on, so the
    // client's patience per attempt is doubled there.
    let (per_attempt, overall) = if opts.netchaos { (20, 60) } else { (10, 30) };
    RetryPolicy {
        max_retries: opts.retries.max(8),
        base_delay: Duration::from_millis(10),
        max_delay: Duration::from_millis(250),
        per_attempt_timeout: Some(Duration::from_secs(per_attempt)),
        overall_timeout: Some(Duration::from_secs(overall)),
        jitter_seed: 0x0C1A_57E2 ^ (client_idx as u64).wrapping_mul(0x9E37_79B9),
    }
}

#[derive(Default)]
struct ClusterTally {
    latencies_ns: Vec<u64>,
    ok: u64,
    hits: u64,
    misses: u64,
    retries: u64,
    redials: u64,
    /// Terminal typed server errors by wire code. Only populated under
    /// `--netchaos`, where a typed error after the retry budget is a
    /// legal end state; the plain cluster audit treats any error as a
    /// violation.
    typed_errors: HashMap<String, u64>,
    violations: Vec<String>,
}

fn run_cluster_client(
    endpoint: &str,
    opts: &Options,
    refs: &HashMap<(String, u64), Reference>,
    next: &AtomicUsize,
    start: Instant,
    client_idx: usize,
) -> Result<ClusterTally, String> {
    let policy = cluster_retry_policy(opts, client_idx);
    let (mut client, _) =
        Client::connect_with_retry(endpoint, &policy).map_err(|e| format!("connect: {e}"))?;
    let mut tally = ClusterTally::default();
    loop {
        let k = next.fetch_add(1, Ordering::Relaxed);
        if k >= opts.requests {
            return Ok(tally);
        }
        let due = start + Duration::from_secs_f64(k as f64 / opts.qps);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let req = request_for(opts, k);
        let key = mix_key(opts, k);
        let t = Instant::now();
        match client.request_with_retry(&req, &policy) {
            Ok((resp, stats)) => {
                tally.latencies_ns.push(t.elapsed().as_nanos() as u64);
                tally.ok += 1;
                tally.hits += resp.stats.cache_hits;
                tally.misses += resp.stats.cache_misses;
                tally.retries += u64::from(stats.retries);
                tally.redials += u64::from(stats.redials);
                let reference = refs.get(&key).expect("precomputed reference");
                if resp.degraded {
                    tally.violations.push(format!(
                        "request {k} ({}/{}): degraded reply with no deadline set",
                        key.0, key.1
                    ));
                } else if resp.insns != reference.scheduled {
                    tally.violations.push(format!(
                        "request {k} ({}/{}): routed reply differs from the serial compile",
                        key.0, key.1
                    ));
                }
            }
            Err(dagsched_service::ClientError::Server(reply)) if opts.netchaos => {
                // Netchaos tolerates a typed error as a terminal
                // outcome: the invariant is terminality and
                // bit-identity, not zero errors under a 10%+ fault
                // rate. Still counted, so a pathological run is
                // visible in the artifact.
                tally.latencies_ns.push(t.elapsed().as_nanos() as u64);
                *tally
                    .typed_errors
                    .entry(format!("{:?}", reply.code))
                    .or_insert(0) += 1;
            }
            Err(e) => {
                // Invariant: failover + retries absorb a shard death.
                // Anything terminal here is client-visible, so it fails
                // the audit. (Under netchaos the client↔router link is
                // clean, so a transport error still means the router
                // itself misbehaved.) Redial for the next request.
                tally.violations.push(format!(
                    "request {k} ({}/{}): client-visible error despite failover: {e}",
                    key.0, key.1
                ));
                if let Ok((c, _)) = Client::connect_with_retry(endpoint, &policy) {
                    client = c;
                }
            }
        }
    }
}

/// One sequential pass over the whole working set through the router,
/// verifying every reply and returning `(hits, misses)` — used to fill
/// the shard caches and to measure hit rates before/after the kill.
fn cluster_pass(
    endpoint: &str,
    opts: &Options,
    refs: &HashMap<(String, u64), Reference>,
    working: usize,
    label: &str,
    violations: &mut Vec<String>,
) -> Result<(u64, u64), String> {
    let policy = cluster_retry_policy(opts, 97);
    let (mut client, _) =
        Client::connect_with_retry(endpoint, &policy).map_err(|e| format!("{label}: {e}"))?;
    let (mut hits, mut misses) = (0u64, 0u64);
    for k in 0..working {
        let req = request_for(opts, k);
        let key = mix_key(opts, k);
        match client.request_with_retry(&req, &policy) {
            Ok((resp, _)) => {
                hits += resp.stats.cache_hits;
                misses += resp.stats.cache_misses;
                let reference = refs.get(&key).expect("precomputed reference");
                if resp.degraded || resp.insns != reference.scheduled {
                    violations.push(format!(
                        "{label}, request {k} ({}/{}): reply differs from the serial compile",
                        key.0, key.1
                    ));
                }
            }
            Err(dagsched_service::ClientError::Server(reply)) if opts.netchaos => {
                // Terminal typed error: tolerated under netchaos (see
                // the paced clients), logged so the pass stays honest.
                eprintln!(
                    "loadgen: {label}, request {k}: typed error {:?} (terminal)",
                    reply.code
                );
            }
            Err(e) => violations.push(format!("{label}, request {k}: {e}")),
        }
    }
    Ok((hits, misses))
}

fn cluster_main(opts: Options) {
    let fatal = |msg: String| -> ! {
        eprintln!("loadgen: {msg}");
        std::process::exit(1);
    };
    let shards_wanted = opts.cluster.expect("dispatched on cluster");
    let root = std::env::temp_dir().join(format!("dagsched-cluster-{}", std::process::id()));
    std::fs::create_dir_all(&root)
        .unwrap_or_else(|e| fatal(format!("creating {}: {e}", root.display())));
    let working = opts.profiles.len() * opts.seeds as usize;
    eprintln!(
        "loadgen: {} audit: {shards_wanted} shards, {} requests at {} qps over {} clients, \
         working set {working} programs, kill-shard {}",
        if opts.netchaos { "netchaos" } else { "cluster" },
        opts.requests,
        opts.qps,
        opts.clients,
        opts.kill_shard
    );
    let refs = references(&opts).unwrap_or_else(|e| fatal(format!("serial references: {e}")));

    // Spawn the shard children and wait until each one answers a dial.
    let mut children = Vec::new();
    let mut shard_eps = Vec::new();
    let dial = RetryPolicy {
        max_retries: 2000,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(40),
        per_attempt_timeout: Some(Duration::from_secs(10)),
        overall_timeout: Some(Duration::from_secs(30)),
        ..RetryPolicy::default()
    };
    for i in 0..shards_wanted {
        let sock = root.join(format!("shard-{i}.sock"));
        children
            .push(Mutex::new(spawn_shard_child(&sock, &opts).unwrap_or_else(
                |e| fatal(format!("spawning shard {i}: {e}")),
            )));
        shard_eps.push(format!("unix:{}", sock.display()));
    }
    for (i, ep) in shard_eps.iter().enumerate() {
        Client::connect_with_retry(ep, &dial)
            .unwrap_or_else(|e| fatal(format!("shard {i} did not come up: {e}")));
    }

    // Netchaos: interpose a seeded fault-injecting wire proxy on every
    // router→shard link. The router only ever sees the proxy
    // endpoints; the real shard sockets stay clean for teardown.
    let mut proxies: Vec<ProxyHandle> = Vec::new();
    let router_shards: Vec<String> = if opts.netchaos {
        eprintln!(
            "loadgen: netchaos: seed {}, {}‰ of link connections faulted \
             (latency/bandwidth/stall/partition/reset/corrupt)",
            opts.chaos_seed, opts.fault_per_mille
        );
        shard_eps
            .iter()
            .enumerate()
            .map(|(i, ep)| {
                let listen = format!("unix:{}", root.join(format!("link-{i}.sock")).display());
                let chaos = ChaosConfig::standard(
                    opts.chaos_seed.wrapping_add(i as u64),
                    opts.fault_per_mille,
                );
                let proxy = serve_proxy(&listen, ep, chaos)
                    .unwrap_or_else(|e| fatal(format!("netchaos proxy {i}: {e}")));
                let endpoint = proxy.endpoint().to_string();
                proxies.push(proxy);
                endpoint
            })
            .collect()
    } else {
        shard_eps.clone()
    };

    // The router runs in-process so the harness can read its metrics
    // directly; the shards are real killable processes.
    let mut router_config = RouterConfig {
        shards: router_shards.clone(),
        health_check_ms: 100,
        ..RouterConfig::default()
    };
    if opts.netchaos {
        // Snappy forwards: a blackholed write must be abandoned fast
        // enough that the hedge race and the failover ladder both fit
        // inside the paced clients' patience.
        router_config.shard_retry = RetryPolicy {
            max_retries: 1,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(50),
            per_attempt_timeout: Some(Duration::from_secs(2)),
            overall_timeout: Some(Duration::from_secs(8)),
            jitter_seed: opts.chaos_seed,
        };
    }
    let router = serve_router(Listen::Unix(root.join("router.sock")), router_config)
        .unwrap_or_else(|e| fatal(format!("router: {e}")));
    let endpoint = router.endpoint();

    // Two warm passes: fill the shard caches cold, then measure the
    // steady-state hit rate the post-kill measurement must defend.
    let mut violations: Vec<String> = Vec::new();
    cluster_pass(
        &endpoint,
        &opts,
        &refs,
        working,
        "fill pass",
        &mut violations,
    )
    .unwrap_or_else(|e| fatal(e));
    let (warm_hits, warm_misses) = cluster_pass(
        &endpoint,
        &opts,
        &refs,
        working,
        "warm pass",
        &mut violations,
    )
    .unwrap_or_else(|e| fatal(e));
    let rate = |h: u64, m: u64| {
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    };
    let pre_kill_hit_rate = rate(warm_hits, warm_misses);

    // The main paced pass. With --kill-shard, a side thread SIGKILLs
    // shard 0 once a third of the load is in flight.
    let next = AtomicUsize::new(0);
    let start = Instant::now();
    let mut merged = ClusterTally::default();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for idx in 0..opts.clients {
            let endpoint = &endpoint;
            let opts = &opts;
            let refs = &refs;
            let next = &next;
            handles.push(
                scope.spawn(move || run_cluster_client(endpoint, opts, refs, next, start, idx)),
            );
        }
        if opts.kill_shard {
            let next = &next;
            let children = &children;
            let at = (opts.requests / 3).max(1);
            scope.spawn(move || {
                while next.load(Ordering::Relaxed) < at {
                    std::thread::sleep(Duration::from_millis(1));
                }
                let _ = children[0].lock().unwrap().kill();
                eprintln!("loadgen: SIGKILLed shard 0 after ~{at} requests");
            });
        }
        if opts.netchaos {
            // The scripted gray-failure episode, on top of the seeded
            // background faults: blackhole link 0's request direction
            // once a third of the load is in. Replies still flow, so
            // the link "looks" half alive — the case binary health
            // checks cannot see. Healed only after the breaker walk
            // below.
            let next = &next;
            let proxies = &proxies;
            let at = (opts.requests / 3).max(1);
            scope.spawn(move || {
                while next.load(Ordering::Relaxed) < at {
                    std::thread::sleep(Duration::from_millis(1));
                }
                proxies[0].set_partition(Direction::ClientToUpstream, true);
                eprintln!(
                    "loadgen: netchaos: partitioned link 0 router→shard after ~{at} requests"
                );
            });
        }
        for h in handles {
            match h.join().expect("cluster client panicked") {
                Ok(tally) => {
                    merged.latencies_ns.extend(tally.latencies_ns);
                    merged.ok += tally.ok;
                    merged.hits += tally.hits;
                    merged.misses += tally.misses;
                    merged.retries += tally.retries;
                    merged.redials += tally.redials;
                    for (code, n) in tally.typed_errors {
                        *merged.typed_errors.entry(code).or_insert(0) += n;
                    }
                    merged.violations.extend(tally.violations);
                }
                Err(e) => merged
                    .violations
                    .push(format!("cluster client aborted: {e}")),
            }
        }
    });
    let elapsed = start.elapsed();
    violations.append(&mut merged.violations);
    if opts.kill_shard {
        let _ = children[0].lock().unwrap().wait();
    }

    if opts.netchaos {
        // Walk the breaker state machine end to end: the partition
        // stays up until probe evidence opens the victim's breaker, a
        // sequential pass then exercises the open-breaker ladder (the
        // failover rung — the primary is skipped outright), and only
        // then does the link heal, forcing revival through half-open
        // trial probes.
        let breaker_of = |ep: &str| -> String {
            router
                .metrics()
                .get("shards")
                .and_then(Json::as_arr)
                .and_then(|arr| {
                    arr.iter()
                        .find(|s| s.get("endpoint").and_then(Json::as_str) == Some(ep))
                        .and_then(|s| s.get("breaker"))
                        .and_then(Json::as_str)
                        .map(str::to_string)
                })
                .unwrap_or_default()
        };
        let wait_for = |cond: &dyn Fn() -> bool, what: &str, violations: &mut Vec<String>| {
            let deadline = Instant::now() + Duration::from_secs(20);
            while !cond() {
                if Instant::now() >= deadline {
                    violations.push(format!("netchaos: timed out waiting for {what}"));
                    return false;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
            true
        };
        let victim = router_shards[0].as_str();
        if wait_for(
            &|| breaker_of(victim) == "open",
            "the partitioned link's breaker to open",
            &mut violations,
        ) {
            eprintln!("loadgen: netchaos: breaker open on link 0; driving the failover ladder");
            cluster_pass(
                &endpoint,
                &opts,
                &refs,
                working,
                "breaker-open pass",
                &mut violations,
            )
            .unwrap_or_else(|e| fatal(e));
        }
        proxies[0].set_partition(Direction::ClientToUpstream, false);
        eprintln!("loadgen: netchaos: healed link 0; waiting for half-open revival");
        wait_for(
            &|| breaker_of(victim) == "closed",
            "the healed link's breaker to close through half-open trials",
            &mut violations,
        );
    }

    // Post-failover pass: the surviving replicas must keep the working
    // set at least half as warm as before the kill.
    let (post_hits, post_misses) = cluster_pass(
        &endpoint,
        &opts,
        &refs,
        working,
        "post-failover pass",
        &mut violations,
    )
    .unwrap_or_else(|e| fatal(e));
    let post_kill_hit_rate = rate(post_hits, post_misses);
    if opts.kill_shard && pre_kill_hit_rate > 0.0 && post_kill_hit_rate < 0.5 * pre_kill_hit_rate {
        violations.push(format!(
            "post-failover hit rate {:.1}% is below half the pre-kill {:.1}%",
            100.0 * post_kill_hit_rate,
            100.0 * pre_kill_hit_rate
        ));
    }

    let router_metrics = router.metrics();

    if opts.netchaos {
        // Gate 1: zero crashes — the router must still answer through
        // the front door after everything above.
        match Client::connect(&endpoint) {
            Ok(mut c) => {
                if let Err(e) = c.ping() {
                    violations.push(format!("router did not answer a ping after the run: {e}"));
                }
            }
            Err(e) => violations.push(format!("router unreachable after the run: {e}")),
        }
        // Gate 2: every request terminal. Each request index draws
        // exactly one outcome per client (verified response, typed
        // error, or a violation-recording failure), so with no
        // violations the arithmetic must close; a shortfall means the
        // harness silently dropped requests.
        let typed_total: u64 = merged.typed_errors.values().sum();
        if violations.is_empty() && merged.ok + typed_total < opts.requests as u64 {
            violations.push(format!(
                "{} terminal outcomes for {} requests",
                merged.ok + typed_total,
                opts.requests
            ));
        }
        // Gate 4: the gray-failure machinery demonstrably engaged.
        let counter = |name: &str| router_metrics.get(name).and_then(Json::as_u64).unwrap_or(0);
        for (name, what) in [
            ("failovers", "failover (open-breaker ladder)"),
            ("shards_marked_down", "breaker-open event"),
            ("hedged_requests", "hedged request"),
            ("hedge_wins", "hedge win"),
        ] {
            if counter(name) == 0 {
                violations.push(format!("netchaos gate: no {what} recorded ({name} = 0)"));
            }
        }
    }

    // Clean teardown: drain the router first (it drops its shard
    // connections), then the netchaos proxies, then gracefully shut
    // down the surviving shards over their real (clean) sockets.
    router.begin_drain();
    router.join();
    let proxy_snapshots: Vec<(String, dagsched_netchaos::ProxySnapshot)> = proxies
        .iter()
        .map(|p| (p.endpoint().to_string(), p.metrics()))
        .collect();
    for p in proxies {
        p.shutdown();
    }
    for (i, ep) in shard_eps.iter().enumerate() {
        if opts.kill_shard && i == 0 {
            continue; // already SIGKILLed and reaped
        }
        match Client::connect(ep) {
            Ok(mut client) => {
                if let Err(e) = client.shutdown_server() {
                    violations.push(format!("shard {i} graceful shutdown: {e}"));
                }
            }
            Err(e) => violations.push(format!("shard {i} unreachable at teardown: {e}")),
        }
        let _ = children[i].lock().unwrap().wait();
    }
    let _ = std::fs::remove_dir_all(&root);

    merged.latencies_ns.sort_unstable();
    let ms = |ns: u64| ns as f64 / 1e6;
    let p50 = percentile(&merged.latencies_ns, 50.0);
    let p95 = percentile(&merged.latencies_ns, 95.0);
    let p99 = percentile(&merged.latencies_ns, 99.0);

    let mut report = vec![
        (
            "mode",
            Json::from(if opts.netchaos { "netchaos" } else { "cluster" }),
        ),
        ("shards", Json::from(shards_wanted)),
        ("kill_shard", Json::from(opts.kill_shard)),
        ("requests", Json::from(opts.requests)),
        ("clients", Json::from(opts.clients)),
        ("target_qps", Json::from(opts.qps)),
        ("working_set", Json::from(working)),
        ("completed", Json::from(merged.ok)),
        ("elapsed_ms", Json::from(elapsed.as_secs_f64() * 1e3)),
        (
            "achieved_qps",
            Json::from(merged.ok as f64 / elapsed.as_secs_f64().max(1e-9)),
        ),
        ("latency_ms_p50", Json::from(ms(p50))),
        ("latency_ms_p95", Json::from(ms(p95))),
        ("latency_ms_p99", Json::from(ms(p99))),
        ("cache_hits", Json::from(merged.hits)),
        ("cache_misses", Json::from(merged.misses)),
        (
            "cache_hit_rate",
            Json::from(rate(merged.hits, merged.misses)),
        ),
        ("pre_kill_hit_rate", Json::from(pre_kill_hit_rate)),
        ("post_failover_hit_rate", Json::from(post_kill_hit_rate)),
        ("client_retries", Json::from(merged.retries)),
        ("client_redials", Json::from(merged.redials)),
        ("router", router_metrics),
        ("violations", Json::from(violations.len() as u64)),
    ];
    if opts.netchaos {
        let typed_total: u64 = merged.typed_errors.values().sum();
        report.push(("typed_errors", Json::from(typed_total)));
        report.push((
            "typed_errors_by_code",
            Json::Obj(
                merged
                    .typed_errors
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::from(*v)))
                    .collect(),
            ),
        ));
        report.push((
            "netchaos",
            Json::Obj(vec![
                ("seed".to_string(), Json::from(opts.chaos_seed)),
                (
                    "fault_per_mille".to_string(),
                    Json::from(u64::from(opts.fault_per_mille)),
                ),
                (
                    "links".to_string(),
                    Json::Arr(
                        proxy_snapshots
                            .iter()
                            .map(|(ep, s)| {
                                Json::Obj(vec![
                                    ("endpoint".to_string(), Json::from(ep.as_str())),
                                    ("connections".to_string(), Json::from(s.connections)),
                                    ("latency_conns".to_string(), Json::from(s.latency_conns)),
                                    ("bandwidth_conns".to_string(), Json::from(s.bandwidth_conns)),
                                    ("stalls".to_string(), Json::from(s.stalls)),
                                    ("partitions".to_string(), Json::from(s.partitions)),
                                    ("resets".to_string(), Json::from(s.resets)),
                                    ("corrupted_bytes".to_string(), Json::from(s.corrupted_bytes)),
                                    (
                                        "blackholed_bytes".to_string(),
                                        Json::from(s.blackholed_bytes),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ));
    }
    let artifact = Json::Obj(
        report
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    );
    let out = opts.out.clone().unwrap_or_else(|| {
        if opts.netchaos {
            "service-netchaos.json".to_string()
        } else {
            "service-cluster.json".to_string()
        }
    });
    std::fs::write(&out, format!("{artifact}\n"))
        .unwrap_or_else(|e| fatal(format!("writing {out}: {e}")));

    eprintln!(
        "loadgen: {}: {} ok over {shards_wanted} shards; p50 {:.2} ms, p99 {:.2} ms; \
         hit rate {:.1}% pre-kill -> {:.1}% post-failover -> {out}",
        if opts.netchaos { "netchaos" } else { "cluster" },
        merged.ok,
        ms(p50),
        ms(p99),
        100.0 * pre_kill_hit_rate,
        100.0 * post_kill_hit_rate
    );
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("loadgen: VIOLATION: {v}");
        }
        std::process::exit(1);
    }
    if opts.netchaos {
        eprintln!(
            "loadgen: netchaos audit passed: zero crashes, every request terminal, every \
             reply bit-identical; failover, breaker-open, and hedge-win all recorded"
        );
    } else {
        eprintln!(
            "loadgen: cluster audit passed: every routed reply bit-identical, zero \
             client-visible errors, failover kept the caches warm"
        );
    }
}

fn main() {
    let opts = parse_args().unwrap_or_else(|e| {
        eprintln!("loadgen: {e}");
        std::process::exit(2);
    });
    if opts.serve_child {
        serve_child_main(&opts);
    }
    if opts.overload {
        overload_main(opts);
        return;
    }
    if opts.cluster.is_some() {
        cluster_main(opts);
        return;
    }
    if opts.crash_loop.is_some() {
        #[cfg(feature = "chaos")]
        {
            crash_loop_main(opts);
            return;
        }
        #[cfg(not(feature = "chaos"))]
        {
            eprintln!(
                "loadgen: --crash-loop requires the storage-fault injector; rebuild with \
                 `cargo build -p dagsched-bench --features chaos`"
            );
            std::process::exit(2);
        }
    }
    if opts.chaos {
        #[cfg(feature = "chaos")]
        {
            chaos_main(opts);
            return;
        }
        #[cfg(not(feature = "chaos"))]
        {
            eprintln!(
                "loadgen: --chaos requires fault injection; rebuild with \
                 `cargo build -p dagsched-bench --features chaos`"
            );
            std::process::exit(2);
        }
    }

    // Dial a remote daemon, or stand one up in-process.
    let (endpoint, handle) = match &opts.connect {
        Some(ep) => (ep.clone(), None),
        None => {
            let config = ServerConfig {
                workers: opts.workers,
                cache: dagsched_service::CacheConfig {
                    max_entries: opts.cache_entries,
                    ..dagsched_service::CacheConfig::default()
                },
                mem_budget: opts.mem_budget,
                ..ServerConfig::default()
            };
            let handle = serve(listen_for(&opts), config).unwrap_or_else(|e| {
                eprintln!("loadgen: in-process server: {e}");
                std::process::exit(1);
            });
            (handle.endpoint(), Some(handle))
        }
    };
    eprintln!(
        "loadgen: {} requests at {} qps over {} clients -> {} ({} profiles x {} seeds)",
        opts.requests,
        opts.qps,
        opts.clients,
        endpoint,
        opts.profiles.len(),
        opts.seeds
    );

    let next = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let opts = Arc::new(opts);
    let mut threads = Vec::new();
    for _ in 0..opts.clients {
        let endpoint = endpoint.clone();
        let next = Arc::clone(&next);
        let opts = Arc::clone(&opts);
        threads.push(std::thread::spawn(move || {
            run_client(&endpoint, &opts, &next, start)
        }));
    }
    let mut latencies = Vec::with_capacity(opts.requests);
    let (mut hits, mut misses, mut errors) = (0u64, 0u64, 0u64);
    for t in threads {
        match t.join().expect("client thread panicked") {
            Ok(tally) => {
                latencies.extend(tally.latencies_ns);
                hits += tally.cache_hits;
                misses += tally.cache_misses;
                errors += tally.errors;
            }
            Err(e) => {
                eprintln!("loadgen: client failed: {e}");
                errors += 1;
            }
        }
    }
    let elapsed = start.elapsed();

    // Pull the server's own counters when we can reach it.
    let server_metrics = Client::connect(&endpoint)
        .ok()
        .and_then(|mut c| c.metrics().ok());
    if let Some(handle) = handle {
        handle.begin_drain();
        handle.join();
    }

    latencies.sort_unstable();
    let total = latencies.len() as u64;
    let mean_ns = if latencies.is_empty() {
        0
    } else {
        latencies.iter().sum::<u64>() / total
    };
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };
    let ms = |ns: u64| ns as f64 / 1e6;
    let p50 = percentile(&latencies, 50.0);
    let p95 = percentile(&latencies, 95.0);
    let p99 = percentile(&latencies, 99.0);
    let achieved_qps = total as f64 / elapsed.as_secs_f64().max(1e-9);
    let coalesced = server_metrics
        .as_ref()
        .and_then(|m| m.get("coalesced_requests"))
        .and_then(|v| v.as_u64());

    let mut report = vec![
        ("endpoint", Json::from(endpoint.as_str())),
        (
            "profiles",
            Json::Arr(
                opts.profiles
                    .iter()
                    .map(|p| Json::from(p.as_str()))
                    .collect(),
            ),
        ),
        ("seeds", Json::from(opts.seeds)),
        ("clients", Json::from(opts.clients)),
        ("target_qps", Json::from(opts.qps)),
        ("requests", Json::from(opts.requests)),
        ("completed", Json::from(total)),
        ("errors", Json::from(errors)),
        ("elapsed_ms", Json::from(elapsed.as_secs_f64() * 1e3)),
        ("achieved_qps", Json::from(achieved_qps)),
        ("latency_ms_p50", Json::from(ms(p50))),
        ("latency_ms_p95", Json::from(ms(p95))),
        ("latency_ms_p99", Json::from(ms(p99))),
        ("latency_ms_mean", Json::from(ms(mean_ns))),
        (
            "latency_ms_max",
            Json::from(ms(latencies.last().copied().unwrap_or(0))),
        ),
        ("cache_hits", Json::from(hits)),
        ("cache_misses", Json::from(misses)),
        ("cache_hit_rate", Json::from(hit_rate)),
    ];
    if let Some(m) = server_metrics {
        report.push(("server", m));
    }
    let artifact = Json::Obj(
        report
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    );
    let out = opts
        .out
        .clone()
        .unwrap_or_else(|| "service-load.json".to_string());
    std::fs::write(&out, format!("{artifact}\n")).unwrap_or_else(|e| {
        eprintln!("loadgen: writing {out}: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "loadgen: {total} ok, {errors} errors in {:.1} ms; p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms; hit rate {:.1}% -> {}",
        elapsed.as_secs_f64() * 1e3,
        ms(p50),
        ms(p95),
        ms(p99),
        100.0 * hit_rate,
        out
    );
    // Self-asserting gates for CI soaks.
    let mut gate_failures = Vec::new();
    if let Some(floor) = opts.min_qps {
        if achieved_qps < floor {
            gate_failures.push(format!(
                "achieved {achieved_qps:.1} qps is below the --min-qps floor {floor:.1}"
            ));
        }
    }
    if opts.expect_coalesced {
        match coalesced {
            Some(n) if n > 0 => {}
            Some(_) => gate_failures
                .push("server coalesced zero requests (--expect-coalesced)".to_string()),
            None => gate_failures.push(
                "server metrics carry no coalesced_requests; cannot verify --expect-coalesced"
                    .to_string(),
            ),
        }
    }
    for g in &gate_failures {
        eprintln!("loadgen: GATE FAILED: {g}");
    }
    if errors > 0 || !gate_failures.is_empty() {
        std::process::exit(1);
    }
}

#[cfg(feature = "chaos")]
fn chaos_main(opts: Options) {
    // Injected panics are caught by the worker supervision boundary,
    // but the default hook would still print a backtrace per injection
    // and drown the report. Silence exactly those; real panics keep
    // the default treatment.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.contains("injected fault"))
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));

    let faults = chaos::fault_config(&opts);
    eprintln!(
        "loadgen: chaos audit: seed {}, {} requests at {} qps over {} clients, \
         retries {}, deadline {:?} ms",
        opts.chaos_seed, opts.requests, opts.qps, opts.clients, opts.retries, opts.deadline_ms
    );
    let refs = references(&opts).unwrap_or_else(|e| {
        eprintln!("loadgen: serial references: {e}");
        std::process::exit(1);
    });
    let config = ServerConfig {
        workers: opts.workers,
        cache: dagsched_service::CacheConfig {
            max_entries: opts.cache_entries,
            ..dagsched_service::CacheConfig::default()
        },
        faults: Some(faults),
        ..ServerConfig::default()
    };
    let handle = serve(listen_for(&opts), config).unwrap_or_else(|e| {
        eprintln!("loadgen: in-process server: {e}");
        std::process::exit(1);
    });
    let endpoint = handle.endpoint();

    let next = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let opts = Arc::new(opts);
    let refs = Arc::new(refs);
    let mut threads = Vec::new();
    for idx in 0..opts.clients {
        let endpoint = endpoint.clone();
        let next = Arc::clone(&next);
        let opts = Arc::clone(&opts);
        let refs = Arc::clone(&refs);
        threads.push(std::thread::spawn(move || {
            chaos::run_chaos_client(&endpoint, &opts, &refs, &next, start, idx)
        }));
    }

    let mut latencies = Vec::with_capacity(opts.requests);
    let mut merged = chaos::ChaosTally::default();
    for t in threads {
        match t.join().expect("chaos client thread panicked") {
            Ok(tally) => {
                latencies.extend(tally.latencies_ns);
                merged.ok_exact += tally.ok_exact;
                merged.ok_degraded += tally.ok_degraded;
                merged.transport_failures += tally.transport_failures;
                merged.retries += tally.retries;
                merged.redials += tally.redials;
                merged.server_hints_honoured += tally.server_hints_honoured;
                for (code, n) in tally.server_errors {
                    *merged.server_errors.entry(code).or_insert(0) += n;
                }
                merged.violations.extend(tally.violations);
            }
            Err(e) => merged.violations.push(format!("chaos client aborted: {e}")),
        }
    }
    let elapsed = start.elapsed();

    // Invariant 1: the daemon survived the whole run.
    let alive = Client::connect(&endpoint)
        .and_then(|mut c| c.ping())
        .is_ok();
    if !alive {
        merged
            .violations
            .push("daemon did not answer a ping after the run".to_string());
    }
    let server_metrics = Client::connect(&endpoint)
        .ok()
        .and_then(|mut c| c.metrics().ok());
    handle.begin_drain();
    handle.join();

    // Invariant 2: every request reached a terminal outcome.
    let typed_errors: u64 = merged.server_errors.values().sum();
    let terminal = merged.ok_exact + merged.ok_degraded + typed_errors + merged.transport_failures;
    if terminal != opts.requests as u64 {
        merged.violations.push(format!(
            "{terminal} terminal outcomes for {} requests",
            opts.requests
        ));
    }

    latencies.sort_unstable();
    let ms = |ns: u64| ns as f64 / 1e6;
    let p50 = percentile(&latencies, 50.0);
    let p95 = percentile(&latencies, 95.0);
    let p99 = percentile(&latencies, 99.0);
    let ok_total = merged.ok_exact + merged.ok_degraded;
    let degraded_fraction = if ok_total > 0 {
        merged.ok_degraded as f64 / ok_total as f64
    } else {
        0.0
    };

    let mut report = vec![
        ("mode", Json::from("chaos")),
        ("chaos_seed", Json::from(opts.chaos_seed)),
        (
            "fault_per_mille",
            Json::Obj(vec![
                (
                    "panic".to_string(),
                    Json::from(u64::from(faults.panic_per_mille)),
                ),
                (
                    "slow".to_string(),
                    Json::from(u64::from(faults.slow_per_mille)),
                ),
                (
                    "truncate".to_string(),
                    Json::from(u64::from(faults.truncate_per_mille)),
                ),
                (
                    "corrupt".to_string(),
                    Json::from(u64::from(faults.corrupt_per_mille)),
                ),
                (
                    "reset".to_string(),
                    Json::from(u64::from(faults.reset_per_mille)),
                ),
            ]),
        ),
        ("slow_ms", Json::from(opts.slow_ms)),
        (
            "deadline_ms",
            match opts.deadline_ms {
                Some(ms) => Json::from(ms),
                None => Json::Null,
            },
        ),
        ("retries_budget", Json::from(u64::from(opts.retries))),
        ("requests", Json::from(opts.requests)),
        ("clients", Json::from(opts.clients)),
        ("elapsed_ms", Json::from(elapsed.as_secs_f64() * 1e3)),
        ("ok_exact", Json::from(merged.ok_exact)),
        ("ok_degraded", Json::from(merged.ok_degraded)),
        ("degraded_fraction", Json::from(degraded_fraction)),
        ("typed_errors", Json::from(typed_errors)),
        (
            "typed_errors_by_code",
            Json::Obj(
                merged
                    .server_errors
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::from(*v)))
                    .collect(),
            ),
        ),
        ("transport_failures", Json::from(merged.transport_failures)),
        ("retries", Json::from(merged.retries)),
        ("redials", Json::from(merged.redials)),
        (
            "server_hints_honoured",
            Json::from(merged.server_hints_honoured),
        ),
        ("latency_ms_p50", Json::from(ms(p50))),
        ("latency_ms_p95", Json::from(ms(p95))),
        ("latency_ms_p99", Json::from(ms(p99))),
        ("daemon_alive_after_run", Json::from(alive)),
        ("violations", Json::from(merged.violations.len() as u64)),
    ];
    if let Some(m) = server_metrics {
        report.push(("server", m));
    }
    let artifact = Json::Obj(
        report
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    );
    let out = opts
        .out
        .clone()
        .unwrap_or_else(|| "service-chaos.json".to_string());
    std::fs::write(&out, format!("{artifact}\n")).unwrap_or_else(|e| {
        eprintln!("loadgen: writing {out}: {e}");
        std::process::exit(1);
    });

    eprintln!(
        "loadgen: chaos: {} exact, {} degraded ({:.1}%), {} typed errors, {} transport \
         failures, {} retries, {} redials; p50 {:.2} ms, p99 {:.2} ms -> {}",
        merged.ok_exact,
        merged.ok_degraded,
        100.0 * degraded_fraction,
        typed_errors,
        merged.transport_failures,
        merged.retries,
        merged.redials,
        ms(p50),
        ms(p99),
        out
    );
    if !merged.violations.is_empty() {
        for v in &merged.violations {
            eprintln!("loadgen: VIOLATION: {v}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "loadgen: chaos audit passed: daemon alive, all requests terminal, all replies verified"
    );
}

#[cfg(feature = "chaos")]
fn crash_loop_main(opts: Options) {
    use crash_loop::{connect_policy, endpoint, pump_session, spawn_daemon};

    let fatal = |msg: String| -> ! {
        eprintln!("loadgen: {msg}");
        std::process::exit(1);
    };
    let kills_wanted = opts.crash_loop.expect("dispatched on crash_loop");
    let root = opts
        .state_dir
        .clone()
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("dagsched-crash-loop-{}", std::process::id()))
        });
    let state = root.join("state");
    std::fs::create_dir_all(&state)
        .unwrap_or_else(|e| fatal(format!("creating {}: {e}", state.display())));
    let sock = root.join("daemon.sock");
    let fingerprint = dagsched_service::store_fingerprint();
    let working = opts.profiles.len() * opts.seeds as usize;

    eprintln!(
        "loadgen: crash-loop audit: {kills_wanted} SIGKILLs, seed {}, working set {} programs, \
         state {}",
        opts.chaos_seed,
        working,
        state.display()
    );
    let refs = references(&opts).unwrap_or_else(|e| fatal(format!("serial references: {e}")));

    let mut violations: Vec<String> = Vec::new();
    let mut injected = Vec::new();
    let mut cycles_json = Vec::new();
    let mut pre_crash_hit_rate = 0.0;
    let mut kills = 0u32;
    let started = Instant::now();

    for cycle in 0..kills_wanted {
        let child = Mutex::new(
            spawn_daemon(&sock, &state, &opts)
                .unwrap_or_else(|e| fatal(format!("spawning the daemon: {e}"))),
        );
        // First session: two clean passes — fill the cache cold, then
        // measure the warm (pre-crash) hit rate recovery must defend.
        if cycle == 0 {
            match pump_session(&child, &sock, &opts, &refs, working, None) {
                Ok(fill) => violations.extend(fill.violations),
                Err(e) => {
                    violations.push(format!("cycle 0 fill pass: {e}"));
                    break;
                }
            }
            match pump_session(&child, &sock, &opts, &refs, working, None) {
                Ok(warm) => {
                    pre_crash_hit_rate = warm.hit_rate();
                    violations.extend(warm.violations);
                }
                Err(e) => {
                    violations.push(format!("cycle 0 warm pass: {e}"));
                    break;
                }
            }
        }
        // Kill at ~3/4 of a pass: genuinely mid-load (the WAL is cut at
        // an arbitrary byte), while re-touching enough of the working
        // set that entries lost to the previous cycle's injected
        // corruption get recompiled and re-persisted.
        let kill_at = (working * 3 / 4).max(1);
        let tally = match pump_session(&child, &sock, &opts, &refs, working, Some(kill_at)) {
            Ok(t) => t,
            Err(e) => {
                violations.push(format!("cycle {cycle}: daemon did not recover: {e}"));
                let _ = child.lock().unwrap().kill();
                let _ = child.lock().unwrap().wait();
                break;
            }
        };
        kills += 1;
        let _ = child.lock().unwrap().wait();
        violations.extend(tally.violations.iter().cloned());
        cycles_json.push(Json::Obj(vec![
            ("cycle".to_string(), Json::from(u64::from(cycle))),
            ("ok".to_string(), Json::from(tally.ok)),
            ("failed_after_kill".to_string(), Json::from(tally.failed)),
            ("hit_rate".to_string(), Json::from(tally.hit_rate())),
        ]));
        // Corrupt the survivor between cycles — but never after the
        // last kill: the final measurement grades recovery of the
        // crashed state itself, and the next session's pump is what
        // heals injected losses.
        if cycle + 1 < kills_wanted {
            match dagsched_store::faultinject::inject(&state, opts.chaos_seed, u64::from(cycle)) {
                Ok(Some(f)) => {
                    eprintln!(
                        "loadgen: cycle {cycle}: injected {} into {} (detail {})",
                        f.fault, f.file, f.detail
                    );
                    injected.push(Json::Obj(vec![
                        ("cycle".to_string(), Json::from(u64::from(cycle))),
                        (
                            "fault".to_string(),
                            Json::from(f.fault.to_string().as_str()),
                        ),
                        ("file".to_string(), Json::from(f.file.as_str())),
                        ("detail".to_string(), Json::from(f.detail)),
                    ]));
                }
                Ok(None) => {}
                Err(e) => violations.push(format!("cycle {cycle}: storage injection: {e}")),
            }
        }
        eprintln!(
            "loadgen: cycle {cycle}: {} ok, {} failed after SIGKILL, hit rate {:.1}%",
            tally.ok,
            tally.failed,
            100.0 * tally.hit_rate()
        );
    }

    // Final restart over the kill -9 survivor: the cache must come back
    // warm, the replies must still be bit-identical, and the server
    // must report what it recovered.
    let mut post_restart_hit_rate = 0.0;
    let mut recovered_entries = 0u64;
    let mut recovery_truncated = 0u64;
    let mut server_metrics = None;
    let mut fsck_issues: Vec<String> = Vec::new();
    if violations.is_empty() {
        let child = Mutex::new(
            spawn_daemon(&sock, &state, &opts)
                .unwrap_or_else(|e| fatal(format!("spawning the final daemon: {e}"))),
        );
        match pump_session(&child, &sock, &opts, &refs, working, None) {
            Ok(post) => {
                post_restart_hit_rate = post.hit_rate();
                violations.extend(post.violations);
            }
            Err(e) => violations.push(format!("final restart: {e}")),
        }
        match Client::connect_with_retry(&endpoint(&sock), &connect_policy()) {
            Ok((mut client, _)) => {
                if let Ok(m) = client.metrics() {
                    recovered_entries = m
                        .get("recovered_entries")
                        .and_then(Json::as_u64)
                        .unwrap_or(0);
                    recovery_truncated = m
                        .get("recovery_truncated_records")
                        .and_then(Json::as_u64)
                        .unwrap_or(0);
                    server_metrics = Some(m);
                }
                // Graceful drain: the server snapshots on the way out,
                // so the surviving store should check completely clean.
                if let Err(e) = client.shutdown_server() {
                    violations.push(format!("graceful shutdown: {e}"));
                }
            }
            Err(e) => violations.push(format!("final metrics connection: {e}")),
        }
        let _ = child.lock().unwrap().wait();

        if recovered_entries == 0 {
            violations
                .push("final restart recovered zero cache entries from the survivor".to_string());
        }
        if pre_crash_hit_rate > 0.0 && post_restart_hit_rate < 0.5 * pre_crash_hit_rate {
            violations.push(format!(
                "post-restart hit rate {:.1}% is below half the pre-crash {:.1}%",
                100.0 * post_restart_hit_rate,
                100.0 * pre_crash_hit_rate
            ));
        }
        match dagsched_store::fsck::check(&state, Some(fingerprint)) {
            Ok(report) if report.clean() => {}
            Ok(report) => {
                fsck_issues = report.issues.clone();
                for issue in &report.issues {
                    violations.push(format!("fsck after graceful drain: {issue}"));
                }
            }
            Err(e) => violations.push(format!("fsck after graceful drain: {e}")),
        }
    }

    let elapsed = started.elapsed();
    let mut report = vec![
        ("mode", Json::from("crash-loop")),
        ("seed", Json::from(opts.chaos_seed)),
        ("kills_requested", Json::from(u64::from(kills_wanted))),
        ("kills_delivered", Json::from(u64::from(kills))),
        ("working_set", Json::from(working)),
        (
            "state_dir",
            Json::from(state.display().to_string().as_str()),
        ),
        ("elapsed_ms", Json::from(elapsed.as_secs_f64() * 1e3)),
        ("pre_crash_hit_rate", Json::from(pre_crash_hit_rate)),
        ("post_restart_hit_rate", Json::from(post_restart_hit_rate)),
        ("recovered_entries", Json::from(recovered_entries)),
        ("recovery_truncated_records", Json::from(recovery_truncated)),
        ("injected_faults", Json::Arr(injected)),
        ("cycles", Json::Arr(cycles_json)),
        (
            "fsck_issues",
            Json::Arr(fsck_issues.iter().map(|i| Json::from(i.as_str())).collect()),
        ),
        ("violations", Json::from(violations.len() as u64)),
    ];
    if let Some(m) = server_metrics {
        report.push(("server", m));
    }
    let artifact = Json::Obj(
        report
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    );
    let out = opts
        .out
        .clone()
        .unwrap_or_else(|| "service-crash-loop.json".to_string());
    std::fs::write(&out, format!("{artifact}\n"))
        .unwrap_or_else(|e| fatal(format!("writing {out}: {e}")));

    eprintln!(
        "loadgen: crash-loop: {kills} SIGKILLs; hit rate {:.1}% pre-crash -> {:.1}% after the \
         final restart; {} entries recovered -> {out}",
        100.0 * pre_crash_hit_rate,
        100.0 * post_restart_hit_rate,
        recovered_entries
    );
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("loadgen: VIOLATION: {v}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "loadgen: crash-loop audit passed: no corrupt replies, warm recovery, store fsck-clean"
    );
}

// ---------------------------------------------------------------------------
// Overload mode
// ---------------------------------------------------------------------------

/// Helpers for the `--overload` audit: capacity probing, the stepped
/// 1× → 3× → 1× open-loop schedule, and the budgeted-retry client.
mod overload {
    use super::*;
    use dagsched_service::ClientError;

    /// Bounded queue depth for the overload server: deep enough that an
    /// unshedded spike would buffer-bloat far past any plausible
    /// deadline, so the deadline/CoDel machinery — not the queue bound
    /// alone — has to do the shedding.
    pub const QUEUE: usize = 1024;
    /// Closed-loop capacity probe duration.
    pub const PROBE_MS: u64 = 1500;
    /// Phase durations: 1× baseline, 3× spike, 1× recovery.
    pub const BASELINE_SECS: u64 = 4;
    pub const SPIKE_SECS: u64 = 4;
    pub const RECOVERY_SECS: u64 = 10;
    /// Spike multiplier over measured capacity.
    pub const SPIKE_FACTOR: f64 = 3.0;
    /// Gate: spike goodput must stay at this fraction of capacity.
    pub const SPIKE_GOODPUT_FLOOR: f64 = 0.70;
    /// Gate: wire ÷ logical requests must stay under this.
    pub const AMPLIFICATION_CEILING: f64 = 1.3;
    /// Gate: post-spike goodput must return to this fraction of the
    /// baseline rate…
    pub const RECOVERY_FRACTION: f64 = 0.95;
    /// …within this many seconds of the spike ending.
    pub const RECOVERY_WITHIN_SECS: u64 = 10;
    /// Gate: p99 of admitted requests is bounded by deadline + slack
    /// (transport, scheduling jitter, and the final compile slot).
    pub const P99_SLACK_MS: u64 = 250;
    /// Seed space for the capacity probe, disjoint from the run's
    /// `PAPER_SEED + k` space so the probe cannot warm the run's cache.
    pub const PROBE_SEED_BASE: u64 = PAPER_SEED + 1_000_000;
    /// Concurrency cap for the capacity probe: enough to saturate the
    /// workers, small enough that the probe's own standing queue stays
    /// under the deadline (a probe that sheds itself under-measures).
    pub const PROBE_CLIENTS_MAX: usize = 32;

    pub const PHASES: [&str; 3] = ["baseline", "spike", "recovery"];

    /// Precomputed open-loop schedule for the stepped-load run.
    pub struct Plan {
        pub mix: Vec<String>,
        /// Due time of request `k`, relative to the run start.
        pub due: Vec<Duration>,
        /// Phase index of request `k` (0 baseline, 1 spike, 2 recovery).
        pub phase: Vec<u8>,
        /// Client deadline tagged on every request.
        pub deadline_ms: u64,
        /// Offered rate per phase (requests/second).
        pub offered_qps: [f64; 3],
    }

    impl Plan {
        pub fn build(capacity: f64, mix: Vec<String>, deadline_ms: u64) -> Plan {
            let rates = [capacity, SPIKE_FACTOR * capacity, capacity];
            let secs = [BASELINE_SECS, SPIKE_SECS, RECOVERY_SECS];
            let mut due = Vec::new();
            let mut phase = Vec::new();
            let mut t0 = 0.0f64;
            for (p, (&rate, &len)) in rates.iter().zip(secs.iter()).enumerate() {
                let n = ((rate * len as f64).round() as usize).max(1);
                for i in 0..n {
                    due.push(Duration::from_secs_f64(t0 + i as f64 / rate));
                    phase.push(p as u8);
                }
                t0 += len as f64;
            }
            Plan {
                mix,
                due,
                phase,
                deadline_ms,
                offered_qps: rates,
            }
        }

        /// `(profile, seed)` for request `k`: the mix cycles; the seed
        /// is unique per request, so every compile is a genuine miss
        /// and goodput measures compute capacity, not hit-rate luck.
        pub fn key(&self, k: usize) -> (String, u64) {
            (self.mix[k % self.mix.len()].clone(), PAPER_SEED + k as u64)
        }
    }

    /// One logical request's terminal outcome.
    pub struct Record {
        pub phase: u8,
        /// Completion time relative to the run start, in ms.
        pub done_ms: u64,
        pub latency_ns: u64,
        pub ok: bool,
    }

    #[derive(Default)]
    pub struct Tally {
        pub records: Vec<Record>,
        pub wire_requests: u64,
        pub retries: u64,
        pub budget_denied: u64,
        pub redials: u64,
        pub transport_failures: u64,
        pub server_errors: HashMap<String, u64>,
    }

    /// Closed-loop capacity probe: `clients` threads hammer the daemon
    /// with unique-seed requests (no pacing) for [`PROBE_MS`];
    /// capacity is completions per second, and the saturated p50
    /// request latency rides along. Probe requests carry a deadline —
    /// deadline pressure changes how hard the engine degrades, so
    /// capacity must be measured under run conditions or the "3×"
    /// spike may not actually overload.
    pub fn probe_capacity(
        endpoint: &str,
        mix: &[String],
        clients: usize,
        deadline_ms: u64,
    ) -> Result<(f64, u64), String> {
        let next = Arc::new(AtomicUsize::new(0));
        let start = Instant::now();
        let end = start + Duration::from_millis(PROBE_MS);
        let mut threads = Vec::new();
        for _ in 0..clients {
            let endpoint = endpoint.to_string();
            let mix = mix.to_vec();
            let next = Arc::clone(&next);
            threads.push(std::thread::spawn(move || -> Result<Vec<u64>, String> {
                let mut client =
                    Client::connect(&endpoint).map_err(|e| format!("probe connect: {e}"))?;
                let mut lat_us = Vec::new();
                while Instant::now() < end {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    let mut req = ScheduleRequest::profile(
                        mix[k % mix.len()].clone(),
                        PROBE_SEED_BASE + k as u64,
                    );
                    req.deadline_ms = Some(deadline_ms);
                    let issued = Instant::now();
                    match client.request(&req) {
                        Ok(_) => {
                            lat_us.push(
                                u64::try_from(issued.elapsed().as_micros()).unwrap_or(u64::MAX),
                            );
                        }
                        // A typed shed during the probe still measures
                        // capacity honestly: it just isn't goodput.
                        Err(ClientError::Server(_)) => {}
                        Err(e) => return Err(format!("probe request: {e}")),
                    }
                }
                Ok(lat_us)
            }));
        }
        let mut lat_us: Vec<u64> = Vec::new();
        for t in threads {
            lat_us.extend(t.join().expect("probe thread panicked")?);
        }
        let elapsed = start.elapsed().as_secs_f64();
        if lat_us.is_empty() {
            return Err("capacity probe completed zero requests".to_string());
        }
        lat_us.sort_unstable();
        let p50_ms = (lat_us[lat_us.len() / 2] / 1_000).max(1);
        Ok((lat_us.len() as f64 / elapsed, p50_ms))
    }

    /// One stepped-load client: grabs globally-ordered slots, paces
    /// open-loop to each slot's due time, and drives every logical
    /// request to a terminal outcome — retries spend tokens from the
    /// shared [`RetryBudget`] and give up when denied one.
    pub fn run_client(
        endpoint: &str,
        plan: &Plan,
        budget: &RetryBudget,
        next: &AtomicUsize,
        start: Instant,
    ) -> Tally {
        let mut tally = Tally::default();
        let mut client = Client::connect(endpoint).ok();
        loop {
            let k = next.fetch_add(1, Ordering::Relaxed);
            if k >= plan.due.len() {
                return tally;
            }
            let due = start + plan.due[k];
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
            let (profile, seed) = plan.key(k);
            let mut req = ScheduleRequest::profile(profile, seed);
            req.deadline_ms = Some(plan.deadline_ms);
            let issued = Instant::now();
            let mut attempt: u64 = 0;
            let ok = loop {
                if client.is_none() {
                    match Client::connect(endpoint) {
                        Ok(c) => {
                            tally.redials += 1;
                            client = Some(c);
                        }
                        Err(_) => {
                            tally.transport_failures += 1;
                            break false;
                        }
                    }
                }
                let conn = client.as_mut().expect("connected above");
                req.attempt = attempt;
                attempt += 1;
                tally.wire_requests += 1;
                match conn.request(&req) {
                    Ok(_) => {
                        budget.record_success();
                        break true;
                    }
                    Err(e) => {
                        let (retryable, hint_ms) = match &e {
                            ClientError::Server(err) => {
                                (err.code.is_retryable(), err.retry_after_ms)
                            }
                            // Transport breakage: the bytes may have been
                            // lost in flight; redial before retrying.
                            _ => {
                                client = None;
                                (true, None)
                            }
                        };
                        let spent = issued.elapsed().as_millis() as u64;
                        let remaining = plan.deadline_ms.saturating_sub(spent);
                        if !retryable || remaining < 2 {
                            terminal_error(&mut tally, &e);
                            break false;
                        }
                        if !budget.try_spend() {
                            tally.budget_denied += 1;
                            terminal_error(&mut tally, &e);
                            break false;
                        }
                        tally.retries += 1;
                        std::thread::sleep(Duration::from_millis(
                            hint_ms.unwrap_or(2).clamp(1, remaining),
                        ));
                    }
                }
            };
            tally.records.push(Record {
                phase: plan.phase[k],
                done_ms: start.elapsed().as_millis() as u64,
                latency_ns: issued.elapsed().as_nanos() as u64,
                ok,
            });
        }
    }

    fn terminal_error(tally: &mut Tally, e: &ClientError) {
        match e {
            ClientError::Server(err) => {
                *tally
                    .server_errors
                    .entry(err.code.as_str().to_string())
                    .or_insert(0) += 1;
            }
            _ => tally.transport_failures += 1,
        }
    }
}

/// The overload audit: measure capacity closed-loop, then step offered
/// load 1× → 3× → 1× of it with budgeted-retry clients and gate on the
/// overload-control invariants (goodput floor, bounded p99, retry
/// amplification, prompt recovery, deadline shedding).
fn overload_main(opts: Options) {
    // Heavier defaults than the steady-state soak: a Canon-style DAG
    // shape mix, fewer workers (so the spike saturates compile
    // capacity, not the client machine), and enough client threads
    // that the 3× phase is genuinely open-loop — with too few clients,
    // their own blocking throttles the offered load back down to
    // capacity and the daemon is never actually overloaded.
    let mix = if opts.profiles_explicit {
        opts.profiles.clone()
    } else {
        dagsched_workloads::canon_mix()
    };
    let workers = if opts.workers_explicit {
        opts.workers
    } else {
        2
    };
    let clients = if opts.clients_explicit {
        opts.clients
    } else {
        256
    };

    let config = ServerConfig {
        workers,
        queue: overload::QUEUE,
        cache: dagsched_service::CacheConfig {
            max_entries: opts.cache_entries,
            ..dagsched_service::CacheConfig::default()
        },
        mem_budget: opts.mem_budget,
        ..ServerConfig::default()
    };
    let handle = serve(listen_for(&opts), config).unwrap_or_else(|e| {
        eprintln!("loadgen: in-process server: {e}");
        std::process::exit(1);
    });
    let endpoint = handle.endpoint();

    eprintln!(
        "loadgen: overload: probing capacity ({clients} clients, {workers} workers, {} profiles)",
        mix.len()
    );
    let probe_deadline_ms = opts.deadline_ms.unwrap_or(250);
    let probe_clients = clients.min(overload::PROBE_CLIENTS_MAX);
    let (capacity, probe_p50_ms) =
        overload::probe_capacity(&endpoint, &mix, probe_clients, probe_deadline_ms).unwrap_or_else(
            |e| {
                eprintln!("loadgen: {e}");
                std::process::exit(1);
            },
        );

    // Client deadline: pinned to a small multiple of the *saturated*
    // p50 the probe just measured. That places it inside the regime
    // the admission controller actually defends — the sojourn ceiling
    // the controller clamps to is a few saturated service times, so a
    // deadline far above it would be absorbed by queueing alone and
    // the audit would prove nothing about deadline shedding. An
    // explicit --deadline-ms still caps it from above.
    let deadline_ms = probe_deadline_ms
        .min(probe_p50_ms.saturating_mul(2))
        .max(25);

    let plan = Arc::new(overload::Plan::build(capacity, mix, deadline_ms));
    eprintln!(
        "loadgen: overload: capacity {capacity:.0} qps (saturated p50 {probe_p50_ms} ms); \
         deadline {deadline_ms} ms; phases \
         {}s@1x / {}s@3x / {}s@1x ({} requests)",
        overload::BASELINE_SECS,
        overload::SPIKE_SECS,
        overload::RECOVERY_SECS,
        plan.due.len()
    );

    let budget = Arc::new(RetryBudget::default());
    let next = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let mut threads = Vec::new();
    for _ in 0..clients {
        let endpoint = endpoint.clone();
        let plan = Arc::clone(&plan);
        let budget = Arc::clone(&budget);
        let next = Arc::clone(&next);
        threads.push(std::thread::spawn(move || {
            overload::run_client(&endpoint, &plan, &budget, &next, start)
        }));
    }
    let mut merged = overload::Tally::default();
    for t in threads {
        let tally = t.join().expect("overload client thread panicked");
        merged.records.extend(tally.records);
        merged.wire_requests += tally.wire_requests;
        merged.retries += tally.retries;
        merged.budget_denied += tally.budget_denied;
        merged.redials += tally.redials;
        merged.transport_failures += tally.transport_failures;
        for (code, n) in tally.server_errors {
            *merged.server_errors.entry(code).or_insert(0) += n;
        }
    }
    let elapsed = start.elapsed();

    // Crash gate: the daemon answers a ping after the storm.
    let alive = Client::connect(&endpoint)
        .and_then(|mut c| c.ping())
        .is_ok();
    let server_metrics = Client::connect(&endpoint)
        .ok()
        .and_then(|mut c| c.metrics().ok());
    handle.begin_drain();
    handle.join();

    let logical = plan.due.len() as u64;
    let phase_secs = [
        overload::BASELINE_SECS,
        overload::SPIKE_SECS,
        overload::RECOVERY_SECS,
    ];
    let mut phase_issued = [0u64; 3];
    let mut phase_ok = [0u64; 3];
    // Goodput is measured over *wall-clock completion windows*, not
    // over which phase a request was scheduled in: if the clients fall
    // behind the schedule, labelling late completions with their
    // intended phase would overstate goodput by exactly the slip.
    let mut window_ok = [0u64; 3];
    let window_end_ms = {
        let b = overload::BASELINE_SECS * 1000;
        let s = b + overload::SPIKE_SECS * 1000;
        [b, s, s + overload::RECOVERY_SECS * 1000]
    };
    let mut admitted_ns: Vec<u64> = Vec::new();
    let horizon_s =
        (overload::BASELINE_SECS + overload::SPIKE_SECS + overload::RECOVERY_SECS) as usize + 30;
    let mut ok_per_sec = vec![0u64; horizon_s + 1];
    for r in &merged.records {
        phase_issued[r.phase as usize] += 1;
        if r.ok {
            phase_ok[r.phase as usize] += 1;
            admitted_ns.push(r.latency_ns);
            if let Some(w) = window_end_ms.iter().position(|&end| r.done_ms < end) {
                window_ok[w] += 1;
            }
            let s = (r.done_ms / 1000) as usize;
            if s < ok_per_sec.len() {
                ok_per_sec[s] += 1;
            }
        }
    }
    admitted_ns.sort_unstable();
    let ms = |ns: u64| ns as f64 / 1e6;
    let p50 = percentile(&admitted_ns, 50.0);
    let p95 = percentile(&admitted_ns, 95.0);
    let p99 = percentile(&admitted_ns, 99.0);

    let goodput = |p: usize| window_ok[p] as f64 / phase_secs[p] as f64;
    let baseline_goodput = goodput(0);
    let spike_goodput = goodput(1);
    let recovery_goodput = goodput(2);

    // Recovery time: the first whole second after the spike ends whose
    // goodput is back to the required fraction of baseline.
    let spike_end_s = (overload::BASELINE_SECS + overload::SPIKE_SECS) as usize;
    let bar = overload::RECOVERY_FRACTION * baseline_goodput;
    let recovered_after_s = (spike_end_s..ok_per_sec.len())
        .find(|&s| ok_per_sec[s] as f64 >= bar)
        .map(|s| (s - spike_end_s + 1) as u64);

    let amplification = merged.wire_requests as f64 / logical.max(1) as f64;
    let typed_errors: u64 = merged.server_errors.values().sum();
    let ok_total: u64 = phase_ok.iter().sum();
    let terminal = ok_total + typed_errors + merged.transport_failures;

    let metric = |key: &str| {
        server_metrics
            .as_ref()
            .and_then(|m| m.get(key))
            .and_then(Json::as_u64)
    };
    let shed_expired = metric("shed_expired").unwrap_or(0);
    let shed_mem_budget = metric("shed_mem_budget").unwrap_or(0);
    let codel_activations = metric("codel_activations").unwrap_or(0);

    let mut gate_failures = Vec::new();
    if spike_goodput < overload::SPIKE_GOODPUT_FLOOR * capacity {
        gate_failures.push(format!(
            "spike goodput {spike_goodput:.1} qps is below {:.0}% of the {capacity:.1} qps capacity",
            100.0 * overload::SPIKE_GOODPUT_FLOOR
        ));
    }
    let p99_bound_ms = deadline_ms + overload::P99_SLACK_MS;
    if ms(p99) > p99_bound_ms as f64 {
        gate_failures.push(format!(
            "p99 of admitted requests {:.1} ms exceeds the {p99_bound_ms} ms bound \
             (deadline + slack)",
            ms(p99)
        ));
    }
    if amplification >= overload::AMPLIFICATION_CEILING {
        gate_failures.push(format!(
            "retry amplification {amplification:.3}x (wire {} / logical {logical}) reached \
             the {:.1}x ceiling",
            merged.wire_requests,
            overload::AMPLIFICATION_CEILING
        ));
    }
    match recovered_after_s {
        Some(s) if s <= overload::RECOVERY_WITHIN_SECS => {}
        Some(s) => gate_failures.push(format!(
            "goodput took {s} s after the spike to recover to 95% of baseline (allowed {} s)",
            overload::RECOVERY_WITHIN_SECS
        )),
        None => gate_failures
            .push("goodput never recovered to 95% of baseline after the spike".to_string()),
    }
    if shed_expired == 0 {
        gate_failures.push(
            "server shed nothing by deadline (shed_expired == 0); the overload never engaged \
             the control layer"
                .to_string(),
        );
    }
    if terminal != logical {
        gate_failures.push(format!(
            "{terminal} terminal outcomes for {logical} requests"
        ));
    }
    if !alive {
        gate_failures.push("daemon did not answer a ping after the run".to_string());
    }

    let phase_json = |p: usize| {
        Json::Obj(vec![
            ("offered_qps".to_string(), Json::from(plan.offered_qps[p])),
            ("duration_s".to_string(), Json::from(phase_secs[p])),
            ("requests".to_string(), Json::from(phase_issued[p])),
            ("ok".to_string(), Json::from(phase_ok[p])),
            ("ok_in_window".to_string(), Json::from(window_ok[p])),
            ("goodput_qps".to_string(), Json::from(goodput(p))),
        ])
    };
    let mut report = vec![
        ("mode", Json::from("overload")),
        ("capacity_qps", Json::from(capacity)),
        ("deadline_ms", Json::from(deadline_ms)),
        ("queue", Json::from(overload::QUEUE as u64)),
        ("workers", Json::from(workers as u64)),
        ("clients", Json::from(clients as u64)),
        (
            "profiles",
            Json::Arr(plan.mix.iter().map(|p| Json::from(p.as_str())).collect()),
        ),
        ("elapsed_ms", Json::from(elapsed.as_secs_f64() * 1e3)),
        (
            "phases",
            Json::Obj(
                overload::PHASES
                    .iter()
                    .enumerate()
                    .map(|(i, name)| ((*name).to_string(), phase_json(i)))
                    .collect(),
            ),
        ),
        ("logical_requests", Json::from(logical)),
        ("wire_requests", Json::from(merged.wire_requests)),
        ("amplification", Json::from(amplification)),
        ("retries", Json::from(merged.retries)),
        ("budget_denied", Json::from(merged.budget_denied)),
        ("redials", Json::from(merged.redials)),
        ("ok", Json::from(ok_total)),
        ("typed_errors", Json::from(typed_errors)),
        (
            "typed_errors_by_code",
            Json::Obj(
                merged
                    .server_errors
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::from(*v)))
                    .collect(),
            ),
        ),
        ("transport_failures", Json::from(merged.transport_failures)),
        ("latency_ms_p50_admitted", Json::from(ms(p50))),
        ("latency_ms_p95_admitted", Json::from(ms(p95))),
        ("latency_ms_p99_admitted", Json::from(ms(p99))),
        ("p99_bound_ms", Json::from(p99_bound_ms)),
        (
            "recovered_after_s",
            match recovered_after_s {
                Some(s) => Json::from(s),
                None => Json::Null,
            },
        ),
        ("shed_expired", Json::from(shed_expired)),
        ("shed_mem_budget", Json::from(shed_mem_budget)),
        ("codel_activations", Json::from(codel_activations)),
        ("daemon_alive_after_run", Json::from(alive)),
        (
            "gate_failures",
            Json::Arr(
                gate_failures
                    .iter()
                    .map(|g| Json::from(g.as_str()))
                    .collect(),
            ),
        ),
    ];
    if let Some(m) = server_metrics {
        report.push(("server", m));
    }
    let artifact = Json::Obj(
        report
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    );
    let out = opts
        .out
        .clone()
        .unwrap_or_else(|| "service-overload.json".to_string());
    std::fs::write(&out, format!("{artifact}\n")).unwrap_or_else(|e| {
        eprintln!("loadgen: writing {out}: {e}");
        std::process::exit(1);
    });

    eprintln!(
        "loadgen: overload: goodput {baseline_goodput:.0}/{spike_goodput:.0}/{recovery_goodput:.0} \
         qps (baseline/spike/recovery) vs {capacity:.0} qps capacity; p99 admitted {:.1} ms; \
         amplification {amplification:.3}x; shed_expired {shed_expired}; recovered in {} -> {out}",
        ms(p99),
        recovered_after_s.map_or("never".to_string(), |s| format!("{s} s")),
    );
    for g in &gate_failures {
        eprintln!("loadgen: GATE FAILED: {g}");
    }
    if !gate_failures.is_empty() {
        std::process::exit(1);
    }
    eprintln!(
        "loadgen: overload audit passed: goodput held, deadlines bounded, retries budgeted, \
         recovery prompt"
    );
}
