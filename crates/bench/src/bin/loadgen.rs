//! `loadgen` — closed-plus-paced load harness for `dagsched-service`.
//!
//! Replays the paper's workload profiles against a scheduling daemon at
//! a target request rate and reports client-observed latency
//! percentiles plus the server's cache hit rate:
//!
//! ```text
//! loadgen --qps 200 --requests 400 --clients 4 --out service-load.json
//! loadgen --connect unix:/tmp/dagsched.sock --profiles grep,yacc
//! ```
//!
//! Without `--connect` the harness starts an in-process server on an
//! ephemeral TCP port, so a single binary produces the whole
//! measurement. Requests cycle over `profiles x seeds`; with the
//! default `--seeds 8` and hundreds of requests, the steady state is
//! dominated by cache hits — exactly the regime the daemon exists for.
//! The run is summarized into a JSON artifact (default
//! `service-load.json`).
//!
//! # Chaos mode
//!
//! Built with `--features chaos`, the harness gains a `--chaos` flag
//! that turns the run into a fault-tolerance audit: the in-process
//! server is configured with deterministic fault injection (10% worker
//! panics, 10% slow replies, plus truncated/corrupted/reset response
//! frames), every request goes through the retrying client, and the
//! run *fails* unless all of the following hold:
//!
//! 1. the daemon survives — it still answers a ping after the last
//!    request and drains cleanly;
//! 2. every request reaches a terminal outcome — a response or a typed
//!    error — rather than hanging;
//! 3. every `degraded: false` response is bit-identical to a fresh
//!    serial compile of the same program;
//! 4. every `degraded: true` response passes the standalone validity
//!    oracle (`dagsched_verify::check_reordering_text`).
//!
//! ```text
//! loadgen --chaos --seed 1991 --deadline-ms 200 --out service-chaos.json
//! ```
//!
//! The same `--seed` replays the same fault stream bit-for-bit, so a
//! chaos run that found a bug is a reproducer, not an anecdote.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dagsched_service::json::Json;
use dagsched_service::server::{serve, Listen, ServerConfig};
use dagsched_service::{Client, ScheduleRequest};
use dagsched_stats::percentile;
use dagsched_workloads::PAPER_SEED;

struct Options {
    /// Endpoint to dial; `None` starts an in-process server.
    connect: Option<String>,
    /// Bind the in-process server to this Unix socket path instead of
    /// an ephemeral TCP port.
    unix: Option<String>,
    /// Target aggregate request rate (requests/second).
    qps: f64,
    /// Total requests to issue.
    requests: usize,
    /// Concurrent client connections.
    clients: usize,
    /// Workload profiles to cycle over.
    profiles: Vec<String>,
    /// Distinct generator seeds per profile (controls the hit rate:
    /// the working set is `profiles x seeds` distinct programs).
    seeds: u64,
    /// Worker threads for the in-process server.
    workers: usize,
    /// Entry bound for the in-process server's schedule cache.
    cache_entries: usize,
    /// Output artifact path (`None` = mode-dependent default).
    out: Option<String>,
    /// Chaos mode: inject faults, retry, audit invariants.
    chaos: bool,
    /// Seed for the injected-fault stream (chaos mode).
    chaos_seed: u64,
    /// Base injection rate in ‰ (chaos mode): applied to panics and
    /// slow replies; frame faults run at 40% of it.
    fault_per_mille: u16,
    /// Injected delay for slow replies, in milliseconds (chaos mode).
    slow_ms: u64,
    /// Retry budget per request (chaos mode).
    retries: u32,
    /// Per-request deadline tagged on every request, if any.
    deadline_ms: Option<u64>,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            connect: None,
            unix: None,
            qps: 200.0,
            requests: 400,
            clients: 4,
            profiles: vec![
                "grep".to_string(),
                "cccp".to_string(),
                "linpack".to_string(),
            ],
            seeds: 8,
            workers: 4,
            cache_entries: dagsched_service::CacheConfig::default().max_entries,
            out: None,
            chaos: false,
            chaos_seed: 1991,
            fault_per_mille: 100,
            slow_ms: 20,
            retries: 4,
            deadline_ms: None,
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--connect" => opts.connect = Some(args.next().ok_or("--connect needs an endpoint")?),
            "--unix" => opts.unix = Some(args.next().ok_or("--unix needs a socket path")?),
            "--qps" => {
                opts.qps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&q: &f64| q > 0.0)
                    .ok_or("--qps needs a positive rate")?;
            }
            "--requests" => {
                opts.requests = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or("--requests needs a positive count")?;
            }
            "--clients" => {
                opts.clients = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or("--clients needs a positive count")?;
            }
            "--profiles" => {
                let v = args.next().ok_or("--profiles needs a comma-separated list")?;
                opts.profiles = v.split(',').map(|s| s.trim().to_string()).collect();
                if opts.profiles.iter().any(|p| p.is_empty()) {
                    return Err("--profiles has an empty entry".to_string());
                }
            }
            "--seeds" => {
                opts.seeds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &u64| n > 0)
                    .ok_or("--seeds needs a positive count")?;
            }
            "--workers" => {
                opts.workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or("--workers needs a positive count")?;
            }
            "--cache-entries" => {
                opts.cache_entries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or("--cache-entries needs a positive count")?;
            }
            "--out" => opts.out = Some(args.next().ok_or("--out needs a path")?),
            "--chaos" => opts.chaos = true,
            "--seed" => {
                opts.chaos_seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs an integer")?;
            }
            "--faults" => {
                opts.fault_per_mille = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &u16| n <= 1000)
                    .ok_or("--faults needs a per-mille rate (0..=1000)")?;
            }
            "--slow-ms" => {
                opts.slow_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--slow-ms needs a millisecond count")?;
            }
            "--retries" => {
                opts.retries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--retries needs a count")?;
            }
            "--deadline-ms" => {
                opts.deadline_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--deadline-ms needs a millisecond count")?,
                );
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: loadgen [--connect EP | --unix PATH] [--qps N] [--requests N] [--clients N]\n\
                     \x20              [--profiles a,b,c] [--seeds N] [--workers N]\n\
                     \x20              [--cache-entries N] [--deadline-ms N] [--out FILE]\n\
                     \x20              [--chaos] [--seed N] [--faults PERMILLE] [--slow-ms N]\n\
                     \x20              [--retries N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if opts.chaos && opts.connect.is_some() {
        return Err("--chaos installs fault injection on the in-process server; \
                    it cannot target a remote daemon (omit --connect)"
            .to_string());
    }
    if opts.unix.is_some() && opts.connect.is_some() {
        return Err("--unix binds the in-process server; it conflicts with --connect".to_string());
    }
    Ok(opts)
}

/// Where the in-process server listens: an ephemeral TCP port, or the
/// `--unix` socket path.
fn listen_for(opts: &Options) -> Listen {
    match &opts.unix {
        Some(path) => Listen::Unix(std::path::PathBuf::from(path)),
        None => Listen::Tcp("127.0.0.1:0".to_string()),
    }
}

/// `(profile, generator seed)` for request number `k`: profile
/// `k % profiles` with seed `PAPER_SEED + (k / profiles) % seeds`.
/// Deterministic, so reruns replay the same stream.
fn mix_key(opts: &Options, k: usize) -> (String, u64) {
    let profile = opts.profiles[k % opts.profiles.len()].clone();
    let seed = PAPER_SEED + (k / opts.profiles.len()) as u64 % opts.seeds;
    (profile, seed)
}

fn request_for(opts: &Options, k: usize) -> ScheduleRequest {
    let (profile, seed) = mix_key(opts, k);
    let mut req = ScheduleRequest::profile(profile, seed);
    req.deadline_ms = opts.deadline_ms;
    req
}

struct ClientTally {
    latencies_ns: Vec<u64>,
    cache_hits: u64,
    cache_misses: u64,
    errors: u64,
}

fn run_client(
    endpoint: &str,
    opts: &Options,
    next: &AtomicUsize,
    start: Instant,
) -> Result<ClientTally, String> {
    let mut client = Client::connect(endpoint).map_err(|e| format!("connect: {e}"))?;
    let mut tally = ClientTally {
        latencies_ns: Vec::new(),
        cache_hits: 0,
        cache_misses: 0,
        errors: 0,
    };
    loop {
        let k = next.fetch_add(1, Ordering::Relaxed);
        if k >= opts.requests {
            return Ok(tally);
        }
        // Open-loop pacing: request `k` is due at `start + k/qps`;
        // sleeping until its slot keeps the aggregate rate at the
        // target regardless of how the clients interleave.
        let due = start + Duration::from_secs_f64(k as f64 / opts.qps);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let req = request_for(opts, k);
        let t = Instant::now();
        match client.request(&req) {
            Ok(resp) => {
                tally.latencies_ns.push(t.elapsed().as_nanos() as u64);
                tally.cache_hits += resp.stats.cache_hits;
                tally.cache_misses += resp.stats.cache_misses;
            }
            Err(e) => {
                tally.errors += 1;
                eprintln!("loadgen: request {k}: {e}");
                // A transport error poisons the connection; redial.
                if matches!(
                    e,
                    dagsched_service::ClientError::Io(_) | dagsched_service::ClientError::Frame(_)
                ) {
                    client = Client::connect(endpoint).map_err(|e| format!("redial: {e}"))?;
                }
            }
        }
    }
}

/// The chaos audit. Gated behind the `chaos` feature because it
/// installs [`dagsched_service::FaultConfig`] on the in-process server,
/// which only exists when the service is built with `fault-injection`.
#[cfg(feature = "chaos")]
mod chaos {
    use super::*;
    use std::collections::HashMap;

    use dagsched_driver::{schedule_program_batch, DriverConfig, Limits, NoCache};
    use dagsched_isa::MachineModel;
    use dagsched_sched::{Scheduler, SchedulerKind};
    use dagsched_service::{ClientError, FaultConfig, RetryPolicy};
    use dagsched_verify::check_reordering_text;
    use dagsched_workloads::{generate, BenchmarkProfile};

    /// Ground truth for one `(profile, seed)` in the working set.
    pub struct Reference {
        /// The generated program, rendered one instruction per line.
        original: String,
        /// The serial, uncached driver's schedule under the server's
        /// default configuration.
        scheduled: Vec<String>,
    }

    /// Serially compile every program the run will request, before any
    /// fault is injected, so the audit compares against ground truth
    /// produced outside the chaos blast radius.
    pub fn references(opts: &Options) -> Result<HashMap<(String, u64), Reference>, String> {
        let model = MachineModel::sparc2();
        let config = DriverConfig {
            scheduler: Scheduler::new(SchedulerKind::Warren),
            ..DriverConfig::default()
        };
        let mut refs = HashMap::new();
        let keys = opts.profiles.len() * opts.seeds as usize;
        for k in 0..keys.min(opts.requests) {
            let (profile, seed) = mix_key(opts, k);
            if refs.contains_key(&(profile.clone(), seed)) {
                continue;
            }
            let bp = BenchmarkProfile::by_name(&profile)
                .ok_or_else(|| format!("unknown profile `{profile}`"))?;
            let bench = generate(bp, seed);
            let (result, _) =
                schedule_program_batch(&bench.program, &model, &config, 1, &Limits::none(), &NoCache)
                    .map_err(|e| format!("serial reference for {profile}/{seed}: {e:?}"))?;
            let original = bench
                .program
                .insns
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n");
            let scheduled = result.insns.iter().map(|i| i.to_string()).collect();
            refs.insert((profile, seed), Reference { original, scheduled });
        }
        Ok(refs)
    }

    /// The injected mix at the default `--faults 100`: 10% panics, 10%
    /// slow replies, and 4% each of truncated / corrupted / reset
    /// response frames — every failure class the retry + supervision
    /// machinery claims to absorb. `--faults N` scales the whole mix.
    pub fn fault_config(opts: &Options) -> FaultConfig {
        let base = opts.fault_per_mille;
        let frame = base * 2 / 5;
        FaultConfig {
            seed: opts.chaos_seed,
            panic_per_mille: base,
            slow_per_mille: base,
            slow_ms: opts.slow_ms,
            truncate_per_mille: frame,
            corrupt_per_mille: frame,
            reset_per_mille: frame,
        }
    }

    #[derive(Default)]
    pub struct ChaosTally {
        pub latencies_ns: Vec<u64>,
        /// `degraded: false` responses, checked bit-identical.
        pub ok_exact: u64,
        /// `degraded: true` responses, checked semantically valid.
        pub ok_degraded: u64,
        /// Typed server errors by wire code (all terminal).
        pub server_errors: HashMap<String, u64>,
        /// Requests whose retry budget ran out on transport errors.
        pub transport_failures: u64,
        /// Client-side retry/redial work (successful requests only).
        pub retries: u64,
        pub redials: u64,
        pub server_hints_honoured: u64,
        /// Invariant violations; any entry fails the run.
        pub violations: Vec<String>,
    }

    pub fn run_chaos_client(
        endpoint: &str,
        opts: &Options,
        refs: &HashMap<(String, u64), Reference>,
        next: &AtomicUsize,
        start: Instant,
        client_idx: usize,
    ) -> Result<ChaosTally, String> {
        let mut client = Client::connect(endpoint).map_err(|e| format!("connect: {e}"))?;
        let policy = RetryPolicy {
            max_retries: opts.retries,
            per_attempt_timeout: Some(Duration::from_secs(5)),
            jitter_seed: opts.chaos_seed ^ (client_idx as u64).wrapping_mul(0x9E37_79B9),
            ..RetryPolicy::default()
        };
        let mut tally = ChaosTally::default();
        loop {
            let k = next.fetch_add(1, Ordering::Relaxed);
            if k >= opts.requests {
                return Ok(tally);
            }
            let due = start + Duration::from_secs_f64(k as f64 / opts.qps);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
            let req = request_for(opts, k);
            let key = mix_key(opts, k);
            let t = Instant::now();
            match client.request_with_retry(&req, &policy) {
                Ok((resp, stats)) => {
                    tally.latencies_ns.push(t.elapsed().as_nanos() as u64);
                    tally.retries += u64::from(stats.retries);
                    tally.redials += u64::from(stats.redials);
                    tally.server_hints_honoured += u64::from(stats.server_hints_honoured);
                    let reference = refs.get(&key).expect("precomputed reference");
                    if resp.degraded {
                        tally.ok_degraded += 1;
                        // Invariant 4: a degraded schedule is still a
                        // *correct* schedule.
                        if let Err(e) = check_reordering_text(
                            &reference.original,
                            &resp.insns.join("\n"),
                            3,
                            opts.chaos_seed,
                        ) {
                            tally.violations.push(format!(
                                "request {k} ({}/{}): degraded reply fails validity: {e}",
                                key.0, key.1
                            ));
                        }
                    } else {
                        tally.ok_exact += 1;
                        // Invariant 3: no silent degradation — an
                        // undegraded reply is the serial compile.
                        if resp.insns != reference.scheduled {
                            tally.violations.push(format!(
                                "request {k} ({}/{}): degraded=false reply differs from \
                                 the serial compile",
                                key.0, key.1
                            ));
                        }
                    }
                }
                Err(ClientError::Server(reply)) => {
                    // Terminal typed error: Internal after retries ran
                    // out, Quarantined, DeadlineExpired, ... — a valid
                    // end state under invariant 2.
                    tally.latencies_ns.push(t.elapsed().as_nanos() as u64);
                    *tally
                        .server_errors
                        .entry(format!("{:?}", reply.code))
                        .or_insert(0) += 1;
                }
                Err(e) => {
                    // The retry budget ran out on transport errors.
                    // Still terminal; redial before the next request.
                    tally.transport_failures += 1;
                    eprintln!("loadgen: request {k}: retries exhausted: {e}");
                    client = Client::connect(endpoint).map_err(|e| format!("redial: {e}"))?;
                }
            }
        }
    }
}

fn main() {
    let opts = parse_args().unwrap_or_else(|e| {
        eprintln!("loadgen: {e}");
        std::process::exit(2);
    });
    if opts.chaos {
        #[cfg(feature = "chaos")]
        {
            chaos_main(opts);
            return;
        }
        #[cfg(not(feature = "chaos"))]
        {
            eprintln!(
                "loadgen: --chaos requires fault injection; rebuild with \
                 `cargo build -p dagsched-bench --features chaos`"
            );
            std::process::exit(2);
        }
    }

    // Dial a remote daemon, or stand one up in-process.
    let (endpoint, handle) = match &opts.connect {
        Some(ep) => (ep.clone(), None),
        None => {
            let config = ServerConfig {
                workers: opts.workers,
                cache: dagsched_service::CacheConfig {
                    max_entries: opts.cache_entries,
                    ..dagsched_service::CacheConfig::default()
                },
                ..ServerConfig::default()
            };
            let handle = serve(listen_for(&opts), config).unwrap_or_else(|e| {
                eprintln!("loadgen: in-process server: {e}");
                std::process::exit(1);
            });
            (handle.endpoint(), Some(handle))
        }
    };
    eprintln!(
        "loadgen: {} requests at {} qps over {} clients -> {} ({} profiles x {} seeds)",
        opts.requests,
        opts.qps,
        opts.clients,
        endpoint,
        opts.profiles.len(),
        opts.seeds
    );

    let next = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let opts = Arc::new(opts);
    let mut threads = Vec::new();
    for _ in 0..opts.clients {
        let endpoint = endpoint.clone();
        let next = Arc::clone(&next);
        let opts = Arc::clone(&opts);
        threads.push(std::thread::spawn(move || {
            run_client(&endpoint, &opts, &next, start)
        }));
    }
    let mut latencies = Vec::with_capacity(opts.requests);
    let (mut hits, mut misses, mut errors) = (0u64, 0u64, 0u64);
    for t in threads {
        match t.join().expect("client thread panicked") {
            Ok(tally) => {
                latencies.extend(tally.latencies_ns);
                hits += tally.cache_hits;
                misses += tally.cache_misses;
                errors += tally.errors;
            }
            Err(e) => {
                eprintln!("loadgen: client failed: {e}");
                errors += 1;
            }
        }
    }
    let elapsed = start.elapsed();

    // Pull the server's own counters when we can reach it.
    let server_metrics = Client::connect(&endpoint)
        .ok()
        .and_then(|mut c| c.metrics().ok());
    if let Some(handle) = handle {
        handle.begin_drain();
        handle.join();
    }

    latencies.sort_unstable();
    let total = latencies.len() as u64;
    let mean_ns = if latencies.is_empty() {
        0
    } else {
        latencies.iter().sum::<u64>() / total
    };
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };
    let ms = |ns: u64| ns as f64 / 1e6;
    let p50 = percentile(&latencies, 50.0);
    let p95 = percentile(&latencies, 95.0);
    let p99 = percentile(&latencies, 99.0);

    let mut report = vec![
        ("endpoint", Json::from(endpoint.as_str())),
        (
            "profiles",
            Json::Arr(opts.profiles.iter().map(|p| Json::from(p.as_str())).collect()),
        ),
        ("seeds", Json::from(opts.seeds)),
        ("clients", Json::from(opts.clients)),
        ("target_qps", Json::from(opts.qps)),
        ("requests", Json::from(opts.requests)),
        ("completed", Json::from(total)),
        ("errors", Json::from(errors)),
        ("elapsed_ms", Json::from(elapsed.as_secs_f64() * 1e3)),
        (
            "achieved_qps",
            Json::from(total as f64 / elapsed.as_secs_f64().max(1e-9)),
        ),
        ("latency_ms_p50", Json::from(ms(p50))),
        ("latency_ms_p95", Json::from(ms(p95))),
        ("latency_ms_p99", Json::from(ms(p99))),
        ("latency_ms_mean", Json::from(ms(mean_ns))),
        (
            "latency_ms_max",
            Json::from(ms(latencies.last().copied().unwrap_or(0))),
        ),
        ("cache_hits", Json::from(hits)),
        ("cache_misses", Json::from(misses)),
        ("cache_hit_rate", Json::from(hit_rate)),
    ];
    if let Some(m) = server_metrics {
        report.push(("server", m));
    }
    let artifact = Json::Obj(
        report
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    );
    let out = opts.out.clone().unwrap_or_else(|| "service-load.json".to_string());
    std::fs::write(&out, format!("{artifact}\n")).unwrap_or_else(|e| {
        eprintln!("loadgen: writing {out}: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "loadgen: {total} ok, {errors} errors in {:.1} ms; p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms; hit rate {:.1}% -> {}",
        elapsed.as_secs_f64() * 1e3,
        ms(p50),
        ms(p95),
        ms(p99),
        100.0 * hit_rate,
        out
    );
    if errors > 0 {
        std::process::exit(1);
    }
}

#[cfg(feature = "chaos")]
fn chaos_main(opts: Options) {
    // Injected panics are caught by the worker supervision boundary,
    // but the default hook would still print a backtrace per injection
    // and drown the report. Silence exactly those; real panics keep
    // the default treatment.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.contains("injected fault"))
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));

    let faults = chaos::fault_config(&opts);
    eprintln!(
        "loadgen: chaos audit: seed {}, {} requests at {} qps over {} clients, \
         retries {}, deadline {:?} ms",
        opts.chaos_seed, opts.requests, opts.qps, opts.clients, opts.retries, opts.deadline_ms
    );
    let refs = chaos::references(&opts).unwrap_or_else(|e| {
        eprintln!("loadgen: serial references: {e}");
        std::process::exit(1);
    });
    let config = ServerConfig {
        workers: opts.workers,
        cache: dagsched_service::CacheConfig {
            max_entries: opts.cache_entries,
            ..dagsched_service::CacheConfig::default()
        },
        faults: Some(faults),
        ..ServerConfig::default()
    };
    let handle = serve(listen_for(&opts), config).unwrap_or_else(|e| {
        eprintln!("loadgen: in-process server: {e}");
        std::process::exit(1);
    });
    let endpoint = handle.endpoint();

    let next = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let opts = Arc::new(opts);
    let refs = Arc::new(refs);
    let mut threads = Vec::new();
    for idx in 0..opts.clients {
        let endpoint = endpoint.clone();
        let next = Arc::clone(&next);
        let opts = Arc::clone(&opts);
        let refs = Arc::clone(&refs);
        threads.push(std::thread::spawn(move || {
            chaos::run_chaos_client(&endpoint, &opts, &refs, &next, start, idx)
        }));
    }

    let mut latencies = Vec::with_capacity(opts.requests);
    let mut merged = chaos::ChaosTally::default();
    for t in threads {
        match t.join().expect("chaos client thread panicked") {
            Ok(tally) => {
                latencies.extend(tally.latencies_ns);
                merged.ok_exact += tally.ok_exact;
                merged.ok_degraded += tally.ok_degraded;
                merged.transport_failures += tally.transport_failures;
                merged.retries += tally.retries;
                merged.redials += tally.redials;
                merged.server_hints_honoured += tally.server_hints_honoured;
                for (code, n) in tally.server_errors {
                    *merged.server_errors.entry(code).or_insert(0) += n;
                }
                merged.violations.extend(tally.violations);
            }
            Err(e) => merged
                .violations
                .push(format!("chaos client aborted: {e}")),
        }
    }
    let elapsed = start.elapsed();

    // Invariant 1: the daemon survived the whole run.
    let alive = Client::connect(&endpoint)
        .and_then(|mut c| c.ping())
        .is_ok();
    if !alive {
        merged
            .violations
            .push("daemon did not answer a ping after the run".to_string());
    }
    let server_metrics = Client::connect(&endpoint)
        .ok()
        .and_then(|mut c| c.metrics().ok());
    handle.begin_drain();
    handle.join();

    // Invariant 2: every request reached a terminal outcome.
    let typed_errors: u64 = merged.server_errors.values().sum();
    let terminal = merged.ok_exact + merged.ok_degraded + typed_errors + merged.transport_failures;
    if terminal != opts.requests as u64 {
        merged.violations.push(format!(
            "{terminal} terminal outcomes for {} requests",
            opts.requests
        ));
    }

    latencies.sort_unstable();
    let ms = |ns: u64| ns as f64 / 1e6;
    let p50 = percentile(&latencies, 50.0);
    let p95 = percentile(&latencies, 95.0);
    let p99 = percentile(&latencies, 99.0);
    let ok_total = merged.ok_exact + merged.ok_degraded;
    let degraded_fraction = if ok_total > 0 {
        merged.ok_degraded as f64 / ok_total as f64
    } else {
        0.0
    };

    let mut report = vec![
        ("mode", Json::from("chaos")),
        ("chaos_seed", Json::from(opts.chaos_seed)),
        (
            "fault_per_mille",
            Json::Obj(vec![
                ("panic".to_string(), Json::from(u64::from(faults.panic_per_mille))),
                ("slow".to_string(), Json::from(u64::from(faults.slow_per_mille))),
                (
                    "truncate".to_string(),
                    Json::from(u64::from(faults.truncate_per_mille)),
                ),
                (
                    "corrupt".to_string(),
                    Json::from(u64::from(faults.corrupt_per_mille)),
                ),
                ("reset".to_string(), Json::from(u64::from(faults.reset_per_mille))),
            ]),
        ),
        ("slow_ms", Json::from(opts.slow_ms)),
        ("deadline_ms", match opts.deadline_ms {
            Some(ms) => Json::from(ms),
            None => Json::Null,
        }),
        ("retries_budget", Json::from(u64::from(opts.retries))),
        ("requests", Json::from(opts.requests)),
        ("clients", Json::from(opts.clients)),
        ("elapsed_ms", Json::from(elapsed.as_secs_f64() * 1e3)),
        ("ok_exact", Json::from(merged.ok_exact)),
        ("ok_degraded", Json::from(merged.ok_degraded)),
        ("degraded_fraction", Json::from(degraded_fraction)),
        ("typed_errors", Json::from(typed_errors)),
        (
            "typed_errors_by_code",
            Json::Obj(
                merged
                    .server_errors
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::from(*v)))
                    .collect(),
            ),
        ),
        ("transport_failures", Json::from(merged.transport_failures)),
        ("retries", Json::from(merged.retries)),
        ("redials", Json::from(merged.redials)),
        ("server_hints_honoured", Json::from(merged.server_hints_honoured)),
        ("latency_ms_p50", Json::from(ms(p50))),
        ("latency_ms_p95", Json::from(ms(p95))),
        ("latency_ms_p99", Json::from(ms(p99))),
        ("daemon_alive_after_run", Json::from(alive)),
        ("violations", Json::from(merged.violations.len() as u64)),
    ];
    if let Some(m) = server_metrics {
        report.push(("server", m));
    }
    let artifact = Json::Obj(
        report
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    );
    let out = opts.out.clone().unwrap_or_else(|| "service-chaos.json".to_string());
    std::fs::write(&out, format!("{artifact}\n")).unwrap_or_else(|e| {
        eprintln!("loadgen: writing {out}: {e}");
        std::process::exit(1);
    });

    eprintln!(
        "loadgen: chaos: {} exact, {} degraded ({:.1}%), {} typed errors, {} transport \
         failures, {} retries, {} redials; p50 {:.2} ms, p99 {:.2} ms -> {}",
        merged.ok_exact,
        merged.ok_degraded,
        100.0 * degraded_fraction,
        typed_errors,
        merged.transport_failures,
        merged.retries,
        merged.redials,
        ms(p50),
        ms(p99),
        out
    );
    if !merged.violations.is_empty() {
        for v in &merged.violations {
            eprintln!("loadgen: VIOLATION: {v}");
        }
        std::process::exit(1);
    }
    eprintln!("loadgen: chaos audit passed: daemon alive, all requests terminal, all replies verified");
}
