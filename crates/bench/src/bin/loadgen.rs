//! `loadgen` — closed-plus-paced load harness for `dagsched-service`.
//!
//! Replays the paper's workload profiles against a scheduling daemon at
//! a target request rate and reports client-observed latency
//! percentiles plus the server's cache hit rate:
//!
//! ```text
//! loadgen --qps 200 --requests 400 --clients 4 --out service-load.json
//! loadgen --connect unix:/tmp/dagsched.sock --profiles grep,yacc
//! ```
//!
//! Without `--connect` the harness starts an in-process server on an
//! ephemeral TCP port, so a single binary produces the whole
//! measurement. Requests cycle over `profiles x seeds`; with the
//! default `--seeds 8` and hundreds of requests, the steady state is
//! dominated by cache hits — exactly the regime the daemon exists for.
//! The run is summarized into a JSON artifact (default
//! `service-load.json`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dagsched_service::json::Json;
use dagsched_service::server::{serve, Listen, ServerConfig};
use dagsched_service::{Client, ScheduleRequest};
use dagsched_stats::percentile;
use dagsched_workloads::PAPER_SEED;

struct Options {
    /// Endpoint to dial; `None` starts an in-process server.
    connect: Option<String>,
    /// Target aggregate request rate (requests/second).
    qps: f64,
    /// Total requests to issue.
    requests: usize,
    /// Concurrent client connections.
    clients: usize,
    /// Workload profiles to cycle over.
    profiles: Vec<String>,
    /// Distinct generator seeds per profile (controls the hit rate:
    /// the working set is `profiles x seeds` distinct programs).
    seeds: u64,
    /// Worker threads for the in-process server.
    workers: usize,
    /// Entry bound for the in-process server's schedule cache.
    cache_entries: usize,
    /// Output artifact path.
    out: String,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            connect: None,
            qps: 200.0,
            requests: 400,
            clients: 4,
            profiles: vec![
                "grep".to_string(),
                "cccp".to_string(),
                "linpack".to_string(),
            ],
            seeds: 8,
            workers: 4,
            cache_entries: dagsched_service::CacheConfig::default().max_entries,
            out: "service-load.json".to_string(),
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--connect" => opts.connect = Some(args.next().ok_or("--connect needs an endpoint")?),
            "--qps" => {
                opts.qps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&q: &f64| q > 0.0)
                    .ok_or("--qps needs a positive rate")?;
            }
            "--requests" => {
                opts.requests = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or("--requests needs a positive count")?;
            }
            "--clients" => {
                opts.clients = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or("--clients needs a positive count")?;
            }
            "--profiles" => {
                let v = args.next().ok_or("--profiles needs a comma-separated list")?;
                opts.profiles = v.split(',').map(|s| s.trim().to_string()).collect();
                if opts.profiles.iter().any(|p| p.is_empty()) {
                    return Err("--profiles has an empty entry".to_string());
                }
            }
            "--seeds" => {
                opts.seeds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &u64| n > 0)
                    .ok_or("--seeds needs a positive count")?;
            }
            "--workers" => {
                opts.workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or("--workers needs a positive count")?;
            }
            "--cache-entries" => {
                opts.cache_entries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or("--cache-entries needs a positive count")?;
            }
            "--out" => opts.out = args.next().ok_or("--out needs a path")?,
            "--help" | "-h" => {
                eprintln!(
                    "usage: loadgen [--connect EP] [--qps N] [--requests N] [--clients N]\n\
                     \x20              [--profiles a,b,c] [--seeds N] [--workers N]\n\
                     \x20              [--cache-entries N] [--out FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok(opts)
}

/// The request mix: profile `k % profiles` with seed `PAPER_SEED + (k /
/// profiles) % seeds`. Deterministic, so reruns replay the same stream.
fn request_for(opts: &Options, k: usize) -> ScheduleRequest {
    let profile = &opts.profiles[k % opts.profiles.len()];
    let seed = PAPER_SEED + (k / opts.profiles.len()) as u64 % opts.seeds;
    ScheduleRequest::profile(profile.clone(), seed)
}

struct ClientTally {
    latencies_ns: Vec<u64>,
    cache_hits: u64,
    cache_misses: u64,
    errors: u64,
}

fn run_client(
    endpoint: &str,
    opts: &Options,
    next: &AtomicUsize,
    start: Instant,
) -> Result<ClientTally, String> {
    let mut client = Client::connect(endpoint).map_err(|e| format!("connect: {e}"))?;
    let mut tally = ClientTally {
        latencies_ns: Vec::new(),
        cache_hits: 0,
        cache_misses: 0,
        errors: 0,
    };
    loop {
        let k = next.fetch_add(1, Ordering::Relaxed);
        if k >= opts.requests {
            return Ok(tally);
        }
        // Open-loop pacing: request `k` is due at `start + k/qps`;
        // sleeping until its slot keeps the aggregate rate at the
        // target regardless of how the clients interleave.
        let due = start + Duration::from_secs_f64(k as f64 / opts.qps);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let req = request_for(opts, k);
        let t = Instant::now();
        match client.request(&req) {
            Ok(resp) => {
                tally.latencies_ns.push(t.elapsed().as_nanos() as u64);
                tally.cache_hits += resp.stats.cache_hits;
                tally.cache_misses += resp.stats.cache_misses;
            }
            Err(e) => {
                tally.errors += 1;
                eprintln!("loadgen: request {k}: {e}");
                // A transport error poisons the connection; redial.
                if matches!(
                    e,
                    dagsched_service::ClientError::Io(_) | dagsched_service::ClientError::Frame(_)
                ) {
                    client = Client::connect(endpoint).map_err(|e| format!("redial: {e}"))?;
                }
            }
        }
    }
}

fn main() {
    let opts = parse_args().unwrap_or_else(|e| {
        eprintln!("loadgen: {e}");
        std::process::exit(2);
    });

    // Dial a remote daemon, or stand one up in-process.
    let (endpoint, handle) = match &opts.connect {
        Some(ep) => (ep.clone(), None),
        None => {
            let config = ServerConfig {
                workers: opts.workers,
                cache: dagsched_service::CacheConfig {
                    max_entries: opts.cache_entries,
                    ..dagsched_service::CacheConfig::default()
                },
                ..ServerConfig::default()
            };
            let handle = serve(Listen::Tcp("127.0.0.1:0".to_string()), config)
                .unwrap_or_else(|e| {
                    eprintln!("loadgen: in-process server: {e}");
                    std::process::exit(1);
                });
            (handle.endpoint(), Some(handle))
        }
    };
    eprintln!(
        "loadgen: {} requests at {} qps over {} clients -> {} ({} profiles x {} seeds)",
        opts.requests,
        opts.qps,
        opts.clients,
        endpoint,
        opts.profiles.len(),
        opts.seeds
    );

    let next = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let opts = Arc::new(opts);
    let mut threads = Vec::new();
    for _ in 0..opts.clients {
        let endpoint = endpoint.clone();
        let next = Arc::clone(&next);
        let opts = Arc::clone(&opts);
        threads.push(std::thread::spawn(move || {
            run_client(&endpoint, &opts, &next, start)
        }));
    }
    let mut latencies = Vec::with_capacity(opts.requests);
    let (mut hits, mut misses, mut errors) = (0u64, 0u64, 0u64);
    for t in threads {
        match t.join().expect("client thread panicked") {
            Ok(tally) => {
                latencies.extend(tally.latencies_ns);
                hits += tally.cache_hits;
                misses += tally.cache_misses;
                errors += tally.errors;
            }
            Err(e) => {
                eprintln!("loadgen: client failed: {e}");
                errors += 1;
            }
        }
    }
    let elapsed = start.elapsed();

    // Pull the server's own counters when we can reach it.
    let server_metrics = Client::connect(&endpoint)
        .ok()
        .and_then(|mut c| c.metrics().ok());
    if let Some(handle) = handle {
        handle.begin_drain();
        handle.join();
    }

    latencies.sort_unstable();
    let total = latencies.len() as u64;
    let mean_ns = if latencies.is_empty() {
        0
    } else {
        latencies.iter().sum::<u64>() / total
    };
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };
    let ms = |ns: u64| ns as f64 / 1e6;
    let p50 = percentile(&latencies, 50.0);
    let p95 = percentile(&latencies, 95.0);
    let p99 = percentile(&latencies, 99.0);

    let mut report = vec![
        ("endpoint", Json::from(endpoint.as_str())),
        (
            "profiles",
            Json::Arr(opts.profiles.iter().map(|p| Json::from(p.as_str())).collect()),
        ),
        ("seeds", Json::from(opts.seeds)),
        ("clients", Json::from(opts.clients)),
        ("target_qps", Json::from(opts.qps)),
        ("requests", Json::from(opts.requests)),
        ("completed", Json::from(total)),
        ("errors", Json::from(errors)),
        ("elapsed_ms", Json::from(elapsed.as_secs_f64() * 1e3)),
        (
            "achieved_qps",
            Json::from(total as f64 / elapsed.as_secs_f64().max(1e-9)),
        ),
        ("latency_ms_p50", Json::from(ms(p50))),
        ("latency_ms_p95", Json::from(ms(p95))),
        ("latency_ms_p99", Json::from(ms(p99))),
        ("latency_ms_mean", Json::from(ms(mean_ns))),
        (
            "latency_ms_max",
            Json::from(ms(latencies.last().copied().unwrap_or(0))),
        ),
        ("cache_hits", Json::from(hits)),
        ("cache_misses", Json::from(misses)),
        ("cache_hit_rate", Json::from(hit_rate)),
    ];
    if let Some(m) = server_metrics {
        report.push(("server", m));
    }
    let artifact = Json::Obj(
        report
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    );
    std::fs::write(&opts.out, format!("{artifact}\n")).unwrap_or_else(|e| {
        eprintln!("loadgen: writing {}: {e}", opts.out);
        std::process::exit(1);
    });
    eprintln!(
        "loadgen: {total} ok, {errors} errors in {:.1} ms; p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms; hit rate {:.1}% -> {}",
        elapsed.as_secs_f64() * 1e3,
        ms(p50),
        ms(p95),
        ms(p99),
        100.0 * hit_rate,
        opts.out
    );
    if errors > 0 {
        std::process::exit(1);
    }
}
