//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p dagsched-bench --bin tables -- all
//! cargo run --release -p dagsched-bench --bin tables -- table4 --runs 5
//! ```
//!
//! Artifacts: `table1`, `table2`, `table3`, `table4`, `table5`, `fig1`,
//! `ablate-levels`, `ablate-transitive`, `jobs-scaling`, or `all`.
//! Options: `--seed N` (default 1991), `--runs N` (default 3, the timing
//! average count), `--jobs N` (worker threads for the timed pipelines;
//! 0 = machine parallelism, default 1).

use dagsched_bench::rows;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut artifacts: Vec<String> = Vec::new();
    let mut seed = dagsched_workloads::PAPER_SEED;
    let mut runs = 3u32;
    let mut jobs = 1usize;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--runs" => {
                runs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--runs needs a number"));
            }
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--jobs needs a thread count (0 = all cores)"));
            }
            "--help" | "-h" => usage(""),
            other => artifacts.push(other.to_string()),
        }
    }
    if jobs == 0 {
        jobs = dagsched_core::default_jobs();
    }
    if artifacts.is_empty() {
        artifacts.push("all".into());
    }
    let all = artifacts.iter().any(|a| a == "all");
    let want = |name: &str| all || artifacts.iter().any(|a| a == name);

    if want("table1") {
        section("Table 1. Various heuristics");
        print!("{}", rows::table1());
    }
    if want("table2") {
        section("Table 2. Various scheduling algorithms");
        print!("{}", rows::table2());
    }
    if want("table3") {
        section(&format!(
            "Table 3. Structural data for benchmarks (seed {seed}, independent of approach)"
        ));
        print!("{}", rows::table3(seed));
    }
    if want("table4") {
        section(&format!(
            "Table 4. Scheduling run times and structural data for n**2 approach \
             (seed {seed}, avg of {runs} runs)"
        ));
        print!("{}", rows::table4(seed, runs, jobs));
    }
    if want("table5") {
        section(&format!(
            "Table 5. Scheduling run times and structural data for table-building \
             approaches (seed {seed}, avg of {runs} runs)"
        ));
        print!("{}", rows::table5(seed, runs, jobs));
    }
    if want("fig1") {
        section("Figure 1. Importance of transitive arcs");
        print!("{}", rows::figure1());
    }
    if want("ablate-levels") {
        section(&format!(
            "Ablation A1 (finding 4): level lists vs reverse walk (seed {seed}, avg of {runs})"
        ));
        print!("{}", rows::ablate_levels(seed, runs));
    }
    if want("ablate-transitive") {
        section(&format!(
            "Ablation A2 (finding 3): transitive-arc avoidance (seed {seed}, avg of {runs})"
        ));
        print!("{}", rows::ablate_transitive(seed, runs));
    }
    if want("ablate-optimal") {
        section(&format!(
            "Ablation A3 (§7): branch-and-bound optimum vs heuristics on small blocks \
             (grep, blocks <= 16, seed {seed})"
        ));
        print!("{}", rows::ablate_optimal(seed, "grep", 16));
    }
    if want("ablate-alternate") {
        section(&format!(
            "Ablation A4 (§3): alternate-type heuristic on a dual-issue machine \
             (linpack, seed {seed})"
        ));
        print!("{}", rows::ablate_alternate(seed, "linpack"));
    }
    if want("heur-overhead") {
        section(&format!(
            "Pipeline phase breakdown (context for finding 6; seed {seed}, avg of {runs})"
        ));
        print!("{}", rows::heur_overhead(seed, runs));
    }
    if want("windows") {
        section(&format!(
            "Window sweep (§6): n**2 vs table building under instruction windows \
             (nasa7, seed {seed}, avg of {runs})"
        ));
        print!("{}", rows::window_sweep(seed, runs));
    }
    if want("jobs-scaling") {
        section(&format!(
            "Parallel scaling: block-compilation pipeline across worker threads \
             (cccp, 3480 blocks, backward table building; seed {seed}, avg of {runs})"
        ));
        print!("{}", rows::jobs_scaling(seed, runs, &[1, 2, 4, 8]));
    }
}

fn section(title: &str) {
    println!("\n=== {title} ===\n");
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: tables [table1|table2|table3|table4|table5|fig1|ablate-levels|ablate-transitive|ablate-optimal|ablate-alternate|heur-overhead|windows|jobs-scaling|all]... \
         [--seed N] [--runs N] [--jobs N]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
