//! Regeneration of every table and figure in the paper.

use dagsched_core::{
    closure, heuristic_catalog, BackwardOrder, Basis, ConstructionAlgorithm, HeuristicSet,
    MemDepPolicy, NodeId, PreparedBlock,
};
use dagsched_isa::MachineModel;
use dagsched_sched::{algorithm_catalog, SchedDirection, Sense};
use dagsched_stats::{time_avg, Table};
use dagsched_workloads::{generate, parse_asm, BenchmarkProfile, ALL_PROFILES};

use crate::pipeline::{run_benchmark, run_benchmark_jobs};

/// The benchmarks of Table 4 (the paper ran the `n**2` approach only up
/// to fpppp-1000 "due to the excessive time and space requirements").
pub const TABLE4_BENCHMARKS: &[&str] = &[
    "grep",
    "regex",
    "dfa",
    "cccp",
    "linpack",
    "lloops",
    "tomcatv",
    "nasa7",
    "fpppp-1000",
];

/// The benchmarks of Tables 3 and 5 (all twelve rows).
pub fn table35_benchmarks() -> Vec<&'static str> {
    ALL_PROFILES.iter().map(|p| p.name).collect()
}

fn fmt2(x: f64) -> String {
    format!("{x:.2}")
}

fn fmt_secs(s: f64) -> String {
    format!("{s:.4}")
}

/// Table 1: the 26-heuristic survey.
pub fn table1() -> Table {
    let mut t = Table::new(vec![
        "category".into(),
        "heuristic".into(),
        "basis".into(),
        "pass".into(),
        "transitive-sensitive".into(),
    ]);
    for h in heuristic_catalog() {
        t.row(vec![
            h.category.name().into(),
            h.name.into(),
            match h.basis {
                Basis::Relationship => "relationship".into(),
                Basis::Timing => "timing".into(),
            },
            h.pass.code().into(),
            if h.transitive_sensitive {
                "**".into()
            } else {
                "".into()
            },
        ]);
    }
    t
}

/// Table 2: the six published scheduling algorithms.
pub fn table2() -> Table {
    let mut t = Table::new(vec![
        "algorithm".into(),
        "dag pass".into(),
        "dag algorithm".into(),
        "sched pass".into(),
        "combiner".into(),
        "ranked heuristics".into(),
    ]);
    for a in algorithm_catalog() {
        let heur = a
            .heuristics
            .iter()
            .map(|h| {
                let sense = match h.criterion.sense {
                    Sense::PreferMax => "",
                    Sense::PreferMin => " (inverse)",
                };
                let code = if h.pass_code.is_empty() {
                    String::new()
                } else {
                    format!(" [{}]", h.pass_code)
                };
                format!("{}. {}{sense}{code}", h.rank, h.criterion.key.name())
            })
            .collect::<Vec<_>>()
            .join("; ");
        t.row(vec![
            a.kind.name().into(),
            a.dag_pass
                .map(|d| d.code().into())
                .unwrap_or_else(|| "n.g.".to_string()),
            a.dag_algorithm.unwrap_or("n.g.").into(),
            format!(
                "{}{}",
                match a.sched_pass {
                    SchedDirection::Forward => "f",
                    SchedDirection::Backward => "b",
                },
                if a.postpass { "+postpass" } else { "" }
            ),
            if a.priority_fn {
                "priority fn".into()
            } else {
                "winnowing".into()
            },
            heur,
        ]);
    }
    t
}

/// Table 3: structural data for the benchmarks (independent of approach).
pub fn table3(seed: u64) -> Table {
    let mut t = Table::new(vec![
        "benchmark".into(),
        "# basic blocks".into(),
        "# insts".into(),
        "insts/bb max".into(),
        "insts/bb avg".into(),
        "mem exprs/bb max".into(),
        "mem exprs/bb avg".into(),
    ]);
    for name in table35_benchmarks() {
        let profile = BenchmarkProfile::by_name(name).expect("profile");
        let bench = generate(profile, seed);
        let s = dagsched_stats::block_structure(&bench.program, &bench.blocks);
        t.row(vec![
            name.into(),
            s.blocks.to_string(),
            s.insts.to_string(),
            format!("{:.0}", s.insts_per_block.max),
            fmt2(s.insts_per_block.avg),
            format!("{:.0}", s.mem_exprs_per_block.max),
            fmt2(s.mem_exprs_per_block.avg),
        ]);
    }
    t
}

fn timed_pipeline_row(
    name: &str,
    seed: u64,
    runs: u32,
    algo: ConstructionAlgorithm,
    order: BackwardOrder,
) -> (f64, dagsched_stats::DagStructure) {
    let profile = BenchmarkProfile::by_name(name).expect("profile");
    let bench = generate(profile, seed);
    timed_pipeline_bench(&bench, runs, algo, order, 1)
}

/// Like [`timed_pipeline_row`] but over an already-generated benchmark —
/// callers that time several algorithms on the same workload should
/// generate once and reuse (fpppp synthesis costs ~100 ms per call).
fn timed_pipeline_bench(
    bench: &dagsched_workloads::Benchmark,
    runs: u32,
    algo: ConstructionAlgorithm,
    order: BackwardOrder,
    jobs: usize,
) -> (f64, dagsched_stats::DagStructure) {
    let model = MachineModel::sparc2();
    let timed = time_avg(runs, || {
        run_benchmark_jobs(
            bench,
            &model,
            algo,
            MemDepPolicy::SymbolicExpr,
            order,
            false,
            jobs,
        )
        .expect("pipeline")
    });
    (timed.secs(), timed.value.structure)
}

/// Table 4: run times and structure for the `n**2` approach. `jobs`
/// shards the pipeline across worker threads (structure columns are
/// identical for every value; only the wall-clock time changes).
pub fn table4(seed: u64, runs: u32, jobs: usize) -> Table {
    let mut t = Table::new(vec![
        "benchmark".into(),
        format!("run time (s, jobs={jobs})"),
        "children/inst max".into(),
        "children/inst avg".into(),
        "arcs/bb max".into(),
        "arcs/bb avg".into(),
    ]);
    for name in TABLE4_BENCHMARKS {
        let bench = generate(BenchmarkProfile::by_name(name).expect("profile"), seed);
        let (secs, s) = timed_pipeline_bench(
            &bench,
            runs,
            ConstructionAlgorithm::N2Forward,
            BackwardOrder::ReverseWalk,
            jobs,
        );
        t.row(vec![
            (*name).into(),
            fmt_secs(secs),
            format!("{:.0}", s.children_per_inst().max),
            fmt2(s.children_per_inst().avg),
            format!("{:.0}", s.arcs_per_block().max),
            fmt2(s.arcs_per_block().avg),
        ]);
    }
    t
}

/// Table 5: run times and structure for the table-building approaches
/// (forward and backward). `jobs` as in [`table4`].
pub fn table5(seed: u64, runs: u32, jobs: usize) -> Table {
    let mut t = Table::new(vec![
        "benchmark".into(),
        format!("fwd time (s, jobs={jobs})"),
        format!("bwd time (s, jobs={jobs})"),
        "children/inst max".into(),
        "children/inst avg".into(),
        "arcs/bb max".into(),
        "arcs/bb avg".into(),
    ]);
    for name in table35_benchmarks() {
        let bench = generate(BenchmarkProfile::by_name(name).expect("profile"), seed);
        let (f_secs, s) = timed_pipeline_bench(
            &bench,
            runs,
            ConstructionAlgorithm::TableForward,
            BackwardOrder::ReverseWalk,
            jobs,
        );
        let (b_secs, _) = timed_pipeline_bench(
            &bench,
            runs,
            ConstructionAlgorithm::TableBackward,
            BackwardOrder::ReverseWalk,
            jobs,
        );
        t.row(vec![
            name.into(),
            fmt_secs(f_secs),
            fmt_secs(b_secs),
            format!("{:.0}", s.children_per_inst().max),
            fmt2(s.children_per_inst().avg),
            format!("{:.0}", s.arcs_per_block().max),
            fmt2(s.arcs_per_block().avg),
        ]);
    }
    t
}

/// Parallel scaling of the block-compilation pipeline: the same
/// ≥1000-block workload (cccp, 3480 blocks) compiled with increasing
/// worker counts, backward table building.
///
/// Besides wall-clock time and speedup, the per-phase counters are
/// reported so the row-to-row invariants are visible: arcs, table probes
/// and instruction totals must be *identical* across job counts (they
/// are asserted, not just printed), while the per-phase CPU times are
/// summed across workers and so exceed wall-clock once `jobs > 1`.
pub fn jobs_scaling(seed: u64, runs: u32, jobs_list: &[usize]) -> Table {
    let bench = generate(BenchmarkProfile::by_name("cccp").expect("profile"), seed);
    let model = MachineModel::sparc2();
    let mut t = Table::new(vec![
        "jobs".into(),
        "time (s)".into(),
        "speedup".into(),
        "blocks".into(),
        "insts".into(),
        "arcs".into(),
        "table probes".into(),
        "construct cpu (ms)".into(),
        "heur cpu (ms)".into(),
        "sched cpu (ms)".into(),
    ]);
    let mut baseline: Option<(f64, crate::PipelineResult)> = None;
    for &jobs in jobs_list {
        let timed = time_avg(runs, || {
            run_benchmark_jobs(
                &bench,
                &model,
                ConstructionAlgorithm::TableBackward,
                MemDepPolicy::SymbolicExpr,
                BackwardOrder::ReverseWalk,
                false,
                jobs,
            )
            .expect("pipeline")
        });
        let secs = timed.secs();
        let r = timed.value;
        if let Some((base_secs, base)) = &baseline {
            assert!(
                base.stats.same_counts(&r.stats) && base.insts == r.insts,
                "jobs={jobs} diverged from the serial counters"
            );
            t.row(row_for(jobs, secs, base_secs / secs.max(1e-12), &r));
        } else {
            t.row(row_for(jobs, secs, 1.0, &r));
            baseline = Some((secs, r));
        }
    }
    return t;

    fn row_for(jobs: usize, secs: f64, speedup: f64, r: &crate::PipelineResult) -> Vec<String> {
        vec![
            jobs.to_string(),
            fmt_secs(secs),
            fmt2(speedup),
            r.stats.blocks.to_string(),
            r.insts.to_string(),
            r.stats.arcs_added.to_string(),
            r.stats.table_probes.to_string(),
            format!("{:.1}", r.stats.construct_ns as f64 / 1e6),
            format!("{:.1}", r.stats.heur_ns as f64 / 1e6),
            format!("{:.1}", r.stats.sched_ns as f64 / 1e6),
        ]
    }
}

/// The paper's Figure 1 block.
pub const FIGURE1_ASM: &str = "DIVF R1,R2,R3\nADDF R4,R5,R1\nADDF R1,R3,R6";

/// Figure 1: the importance of transitive arcs, as a walkthrough.
pub fn figure1() -> String {
    let prog = parse_asm(FIGURE1_ASM).expect("figure 1 parses");
    let model = MachineModel::sparc2();
    let block = PreparedBlock::new(&prog.insns);
    let mut out = String::new();
    out.push_str("Figure 1 block (1: DIVF R1,R2,R3  2: ADDF R4,R5,R1  3: ADDF R1,R3,R6)\n\n");
    for algo in [
        ConstructionAlgorithm::TableBackward,
        ConstructionAlgorithm::TableForward,
        ConstructionAlgorithm::N2Forward,
        ConstructionAlgorithm::N2ForwardLandskov,
        ConstructionAlgorithm::TableBackwardBitmap,
    ] {
        let dag = algo.run(&block, &model, MemDepPolicy::SymbolicExpr);
        let mut h = HeuristicSet::default();
        dagsched_core::annotate_construction(&mut h, &dag, &prog.insns, &model);
        dagsched_core::annotate_forward(&mut h, &dag);
        let arcs: Vec<String> = dag
            .arcs()
            .map(|a| {
                format!(
                    "{}->{} {} d={}",
                    a.from.index() + 1,
                    a.to.index() + 1,
                    a.kind,
                    a.latency
                )
            })
            .collect();
        let keeps = dag.arc_between(NodeId::new(0), NodeId::new(2)).is_some();
        let est_ok = h.est[2] == 20;
        out.push_str(&format!(
            "{:<26} arcs: {:<44} keeps 1->3: {:<5} EST(3)={} {}\n",
            algo.name(),
            arcs.join(", "),
            keeps,
            h.est[2],
            if est_ok {
                "(correct)"
            } else {
                "(WRONG: true earliest time is 20)"
            },
        ));
    }
    out.push_str(
        "\nThe table-building methods retain the transitive 20-cycle RAW arc, so the\n\
         earliest start time of node 3 is computed correctly; pruning all transitive\n\
         arcs (Landskov) understates it as 5 = WAR(1)+RAW(4).\n",
    );
    out
}

/// Ablation A1 (finding 4): level lists vs. reverse linked-list walk for
/// the intermediate heuristic pass.
pub fn ablate_levels(seed: u64, runs: u32) -> Table {
    let mut t = Table::new(vec![
        "benchmark".into(),
        "reverse walk (s)".into(),
        "level lists (s)".into(),
        "ratio".into(),
    ]);
    for name in ["linpack", "nasa7", "fpppp"] {
        let (rw, _) = timed_pipeline_row(
            name,
            seed,
            runs,
            ConstructionAlgorithm::TableBackward,
            BackwardOrder::ReverseWalk,
        );
        let (ll, _) = timed_pipeline_row(
            name,
            seed,
            runs,
            ConstructionAlgorithm::TableBackward,
            BackwardOrder::LevelLists,
        );
        t.row(vec![
            name.into(),
            fmt_secs(rw),
            fmt_secs(ll),
            fmt2(ll / rw.max(1e-12)),
        ]);
    }
    t
}

/// Ablation A2 (finding 3): the cost and the damage of transitive-arc
/// avoidance.
pub fn ablate_transitive(seed: u64, runs: u32) -> Table {
    let model = MachineModel::sparc2();
    let fig1 = parse_asm(FIGURE1_ASM).expect("figure 1 parses");
    let fig1_block = PreparedBlock::new(&fig1.insns);
    let mut t = Table::new(vec![
        "algorithm".into(),
        "tomcatv time (s)".into(),
        "tomcatv arcs/bb avg".into(),
        "fig.1 timing preserved".into(),
    ]);
    for algo in [
        ConstructionAlgorithm::N2Forward,
        ConstructionAlgorithm::N2ForwardLandskov,
        ConstructionAlgorithm::TableBackward,
        ConstructionAlgorithm::TableBackwardBitmap,
    ] {
        let (secs, s) = timed_pipeline_row("tomcatv", seed, runs, algo, BackwardOrder::ReverseWalk);
        let dag = algo.run(&fig1_block, &model, MemDepPolicy::SymbolicExpr);
        let preserved = closure::preserves_dependence_latencies(
            &dag,
            &fig1_block,
            &model,
            MemDepPolicy::SymbolicExpr,
        )
        .is_ok();
        t.row(vec![
            algo.name().into(),
            fmt_secs(secs),
            fmt2(s.arcs_per_block().avg),
            if preserved { "yes".into() } else { "NO".into() },
        ]);
    }
    t
}

/// Ablation A3 (§7 future work): does an optimal branch-and-bound
/// scheduler beat the heuristics on small basic blocks? Every block of
/// `bench_name` with at most `max_block` instructions is solved optimally
/// and each published scheduler is scored against the optimum.
pub fn ablate_optimal(seed: u64, bench_name: &str, max_block: usize) -> Table {
    use dagsched_sched::{BranchAndBound, Scheduler, SchedulerKind};
    let profile = BenchmarkProfile::by_name(bench_name).expect("profile");
    let bench = generate(profile, seed);
    let model = MachineModel::sparc2();
    let bnb = BranchAndBound::default();

    // Optimal makespan per eligible block.
    let mut optimal: Vec<(usize, u64)> = Vec::new(); // (block index, makespan)
    for (bi, block) in bench.blocks.iter().enumerate() {
        let insns = bench.program.block_insns(block);
        if insns.is_empty() || insns.len() > max_block {
            continue;
        }
        let prepared = PreparedBlock::new(insns);
        let dag =
            ConstructionAlgorithm::TableBackward.run(&prepared, &model, MemDepPolicy::SymbolicExpr);
        let heur = HeuristicSet::compute(&dag, insns, &model, false);
        let r = bnb.schedule(&dag, insns, &model, &heur);
        if r.is_proven() {
            optimal.push((bi, r.schedule().makespan(insns, &model)));
        }
    }

    let mut t = Table::new(vec![
        "scheduler".into(),
        "blocks".into(),
        "% optimal".into(),
        "total excess cycles".into(),
        "max excess".into(),
    ]);
    for &kind in SchedulerKind::ALL {
        let sched = Scheduler::new(kind);
        let mut hits = 0usize;
        let mut excess = 0u64;
        let mut max_excess = 0u64;
        for &(bi, opt) in &optimal {
            let insns = bench.program.block_insns(&bench.blocks[bi]);
            let s = sched.schedule_block(insns, &model);
            let m = s.makespan(insns, &model);
            debug_assert!(m >= opt);
            if m == opt {
                hits += 1;
            }
            excess += m - opt;
            max_excess = max_excess.max(m - opt);
        }
        t.row(vec![
            kind.name().into(),
            optimal.len().to_string(),
            format!("{:.1}", 100.0 * hits as f64 / optimal.len().max(1) as f64),
            excess.to_string(),
            max_excess.to_string(),
        ]);
    }
    t
}

/// Ablation A4: the "alternate type" heuristic on a dual-issue machine.
/// Warren's stack with and without the alternate-type rank, measured in
/// pipeline cycles on a 2-wide in-order machine — the superscalar
/// motivation the paper's §3 gives for the heuristic.
pub fn ablate_alternate(seed: u64, bench_name: &str) -> Table {
    use dagsched_pipesim::{simulate, SimOptions};
    use dagsched_sched::{Criterion, HeurKey, Scheduler, SchedulerKind, SelectStrategy};
    let profile = BenchmarkProfile::by_name(bench_name).expect("profile");
    let bench = generate(profile, seed);
    let model = MachineModel::sparc2().with_issue_width(2);
    let opts = SimOptions {
        issue_width: Some(2),
        ..SimOptions::default()
    };

    let with_alt = Scheduler::new(SchedulerKind::Warren);
    let mut without_alt = Scheduler::new(SchedulerKind::Warren);
    if let SelectStrategy::Winnowing(ref mut crits) = without_alt.list.strategy {
        crits.retain(|c: &Criterion| c.key != HeurKey::AlternateType);
    }

    let mut t = Table::new(vec!["configuration".into(), "cycles".into(), "ipc".into()]);
    for (label, sched) in [
        ("Warren with alternate type", &with_alt),
        ("Warren without alternate type", &without_alt),
    ] {
        let mut cycles = 0u64;
        let mut insts = 0usize;
        for block in &bench.blocks {
            let insns = bench.program.block_insns(block);
            if insns.is_empty() {
                continue;
            }
            let schedule = sched.schedule_block(insns, &model);
            let reordered: Vec<_> = schedule
                .order
                .iter()
                .map(|n| insns[n.index()].clone())
                .collect();
            cycles += simulate(&reordered, &model, opts).cycles;
            insts += insns.len();
        }
        t.row(vec![
            label.into(),
            cycles.to_string(),
            format!("{:.3}", insts as f64 / cycles as f64),
        ]);
    }
    t
}

/// The §6 window recommendation: sweep instruction-window sizes over a
/// large-block benchmark and report the `n**2` vs table-building pipeline
/// cost ("an instruction window size of no more than 300-400 instructions
/// should be maintained" for `n**2`).
pub fn window_sweep(seed: u64, runs: u32) -> Table {
    use dagsched_workloads::clamp_blocks;
    let profile = BenchmarkProfile::by_name("nasa7").expect("profile");
    let base = generate(profile, seed);
    let model = MachineModel::sparc2();
    let mut t = Table::new(vec![
        "window".into(),
        "n**2 time (s)".into(),
        "table time (s)".into(),
        "ratio".into(),
    ]);
    for window in [50usize, 100, 200, 400, 800, usize::MAX] {
        let mut bench = base.clone();
        if window != usize::MAX {
            bench.blocks = clamp_blocks(&base.blocks, window);
        }
        let n2 = time_avg(runs, || {
            run_benchmark(
                &bench,
                &model,
                ConstructionAlgorithm::N2Forward,
                MemDepPolicy::SymbolicExpr,
                BackwardOrder::ReverseWalk,
                false,
            )
            .expect("pipeline")
        })
        .secs();
        let tb = time_avg(runs, || {
            run_benchmark(
                &bench,
                &model,
                ConstructionAlgorithm::TableBackward,
                MemDepPolicy::SymbolicExpr,
                BackwardOrder::ReverseWalk,
                false,
            )
            .expect("pipeline")
        })
        .secs();
        t.row(vec![
            if window == usize::MAX {
                "none".into()
            } else {
                window.to_string()
            },
            fmt_secs(n2),
            fmt_secs(tb),
            fmt2(n2 / tb.max(1e-12)),
        ]);
    }
    t
}

/// Phase breakdown of the three-step pipeline: construction, the
/// intermediate heuristic pass, and scheduling, timed separately.
///
/// Context for the abstract's "node revisitation overhead ... negligible"
/// claim: the *savings available* from eliminating child revisitation
/// (backward construction's first pass builds only a linked list) are
/// bounded by the inter-phase deltas here — and Table 5's
/// forward-vs-backward columns show the realized difference is indeed
/// in the noise.
pub fn heur_overhead(seed: u64, runs: u32) -> Table {
    use dagsched_core::{annotate_backward_cp, annotate_construction};
    let model = MachineModel::sparc2();
    let mut t = Table::new(vec![
        "benchmark".into(),
        "construct (s)".into(),
        "+heuristics (s)".into(),
        "full pipeline (s)".into(),
        "heur share".into(),
    ]);
    for name in ["linpack", "nasa7", "fpppp"] {
        let bench = generate(BenchmarkProfile::by_name(name).expect("profile"), seed);
        let scheduler = crate::pipeline::simple_forward_scheduler();
        let construct_only = time_avg(runs, || {
            let mut arcs = 0usize;
            for block in &bench.blocks {
                let insns = bench.program.block_insns(block);
                let prepared = PreparedBlock::new(insns);
                arcs += ConstructionAlgorithm::TableBackward
                    .run(&prepared, &model, MemDepPolicy::SymbolicExpr)
                    .arc_count();
            }
            arcs
        })
        .secs();
        let with_heur = time_avg(runs, || {
            let mut total = 0u64;
            for block in &bench.blocks {
                let insns = bench.program.block_insns(block);
                let prepared = PreparedBlock::new(insns);
                let dag = ConstructionAlgorithm::TableBackward.run(
                    &prepared,
                    &model,
                    MemDepPolicy::SymbolicExpr,
                );
                let mut h = HeuristicSet::default();
                annotate_construction(&mut h, &dag, insns, &model);
                annotate_backward_cp(&mut h, &dag, BackwardOrder::ReverseWalk);
                total += h.max_delay_to_leaf.first().copied().unwrap_or(0);
            }
            total
        })
        .secs();
        let full = time_avg(runs, || {
            let mut cycles = 0u64;
            for block in &bench.blocks {
                let insns = bench.program.block_insns(block);
                if insns.is_empty() {
                    continue;
                }
                let prepared = PreparedBlock::new(insns);
                let dag = ConstructionAlgorithm::TableBackward.run(
                    &prepared,
                    &model,
                    MemDepPolicy::SymbolicExpr,
                );
                let mut h = HeuristicSet::default();
                annotate_construction(&mut h, &dag, insns, &model);
                annotate_backward_cp(&mut h, &dag, BackwardOrder::ReverseWalk);
                cycles += scheduler
                    .run(&dag, insns, &model, &h)
                    .makespan(insns, &model);
            }
            cycles
        })
        .secs();
        let share = ((with_heur - construct_only) / full.max(1e-12)).max(0.0);
        t.row(vec![
            name.into(),
            fmt_secs(construct_only),
            fmt_secs(with_heur),
            fmt_secs(full),
            format!("{:.1}%", 100.0 * share),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_26_rows() {
        assert_eq!(table1().len(), 26);
    }

    #[test]
    fn table2_has_6_rows() {
        assert_eq!(table2().len(), 6);
    }

    #[test]
    fn table3_matches_paper_totals() {
        let t = table3(dagsched_workloads::PAPER_SEED);
        assert_eq!(t.len(), 12);
        let text = t.to_string();
        // Pinned Table 3 values must appear verbatim.
        for needle in ["730", "1739", "25545", "11750", "326", "324"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn figure1_reports_landskov_miscalculation() {
        let text = figure1();
        assert!(text.contains("WRONG"), "{text}");
        assert!(text.contains("(correct)"), "{text}");
    }

    #[test]
    fn ablate_transitive_flags_landskov() {
        let t = ablate_transitive(dagsched_workloads::PAPER_SEED, 1);
        let text = t.to_string();
        assert!(text.contains("NO"), "{text}");
        assert!(text.contains("yes"), "{text}");
    }
}
