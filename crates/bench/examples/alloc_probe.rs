use dagsched_core::{BitMatrix, ConstructionAlgorithm, MemDepPolicy, PreparedBlock};
use dagsched_isa::MachineModel;
use dagsched_workloads::{generate, BenchmarkProfile, PAPER_SEED};
use std::time::Instant;

fn main() {
    let model = MachineModel::sparc2();
    let w = generate(BenchmarkProfile::by_name("fpppp-1000").unwrap(), PAPER_SEED);
    let blocks: Vec<Vec<_>> = w
        .blocks
        .iter()
        .map(|b| w.program.block_insns(b).to_vec())
        .filter(|i| !i.is_empty())
        .collect();
    let prepared: Vec<PreparedBlock> = blocks.iter().map(|b| PreparedBlock::new(b)).collect();
    let sizes: Vec<usize> = prepared.iter().map(|p| p.len()).collect();
    println!("blocks: {} sizes: {:?}", prepared.len(), sizes);

    let t = Instant::now();
    let mut acc = 0usize;
    for _ in 0..50 {
        for p in &prepared {
            acc += ConstructionAlgorithm::TableBackward
                .run(p, &model, MemDepPolicy::SymbolicExpr)
                .arc_count();
        }
    }
    println!("table backward x50: {:?} (acc {acc})", t.elapsed());

    let t = Instant::now();
    let mut acc2 = 0usize;
    for _ in 0..50 {
        for &n in &sizes {
            let m = BitMatrix::new(n, n);
            acc2 += m.rows();
        }
    }
    println!("succ matrix alloc x50: {:?} (acc {acc2})", t.elapsed());
}
