use dagsched_core::{strongest_dep, BitMatrix, BitSet, MemDepPolicy, PreparedBlock};
use dagsched_isa::MachineModel;
use dagsched_workloads::{generate, BenchmarkProfile, PAPER_SEED};
use std::time::Instant;

// Landskov pruning loop, BitMatrix::contains per probe (current core).
fn v_contains(p: &PreparedBlock, model: &MachineModel, m: &mut BitMatrix) -> usize {
    let n = p.len();
    m.reset(n, n);
    let mut arcs = 0;
    for i in 0..n {
        for j in (0..i).rev() {
            if m.contains(i, j) {
                continue;
            }
            if strongest_dep(p, model, MemDepPolicy::SymbolicExpr, j, i).is_some() {
                arcs += 1;
                m.or_row_into(j, i);
                m.set(i, j);
            }
        }
    }
    arcs
}

// Landskov pruning loop, register-cached row word (the attempted fix).
fn v_wordcache(p: &PreparedBlock, model: &MachineModel, m: &mut BitMatrix) -> usize {
    let n = p.len();
    m.reset(n, n);
    let mut arcs = 0;
    for i in 0..n {
        let mut wi = usize::MAX;
        let mut word = 0u64;
        for j in (0..i).rev() {
            if j / 64 != wi {
                wi = j / 64;
                word = m.row_word(i, wi);
            }
            if word & (1 << (j % 64)) != 0 {
                continue;
            }
            if strongest_dep(p, model, MemDepPolicy::SymbolicExpr, j, i).is_some() {
                arcs += 1;
                m.or_row_into(j, i);
                m.set(i, j);
                word = m.row_word(i, wi);
            }
        }
    }
    arcs
}

// Baseline shape: one BitSet per node (per-row allocations).
fn v_bitsets(p: &PreparedBlock, model: &MachineModel, pool: &mut Vec<BitSet>) -> usize {
    let n = p.len();
    if pool.len() < n {
        pool.resize_with(n, || BitSet::new(0));
    }
    for s in pool[..n].iter_mut() {
        s.reset(n);
    }
    let anc = &mut pool[..n];
    let mut arcs = 0;
    for i in 0..n {
        for j in (0..i).rev() {
            if anc[i].contains(j) {
                continue;
            }
            if strongest_dep(p, model, MemDepPolicy::SymbolicExpr, j, i).is_some() {
                arcs += 1;
                let (lo, hi) = anc.split_at_mut(i);
                hi[0].union_with(&lo[j]);
                hi[0].insert(j);
            }
        }
    }
    arcs
}

// Exact mirror of the crate's loop: counters + out-of-line kernel.
fn v_mirror(p: &PreparedBlock, model: &MachineModel, m: &mut BitMatrix) -> usize {
    #[inline(never)]
    fn dep_kernel(
        p: &PreparedBlock,
        model: &MachineModel,
        j: usize,
        i: usize,
    ) -> Option<(dagsched_isa::DepKind, u32)> {
        strongest_dep(p, model, MemDepPolicy::SymbolicExpr, j, i)
    }
    let n = p.len();
    m.reset(n, n);
    let mut arcs = 0;
    let mut comparisons = 0u64;
    let mut pruned = 0u64;
    for i in 0..n {
        for j in (0..i).rev() {
            if m.contains(i, j) {
                pruned += 1;
                continue;
            }
            comparisons += 1;
            if dep_kernel(p, model, j, i).is_some() {
                arcs += 1;
                m.or_row_into(j, i);
                m.set(i, j);
            }
        }
    }
    std::hint::black_box(comparisons + pruned);
    arcs
}

// Word-parallel candidate scan: iterate zero bits of row i descending,
// skipping pruned pairs a word at a time.
fn v_word(p: &PreparedBlock, model: &MachineModel, m: &mut BitMatrix) -> usize {
    #[inline(never)]
    fn dep_kernel(
        p: &PreparedBlock,
        model: &MachineModel,
        j: usize,
        i: usize,
    ) -> Option<(dagsched_isa::DepKind, u32)> {
        strongest_dep(p, model, MemDepPolicy::SymbolicExpr, j, i)
    }
    let n = p.len();
    m.reset(n, n);
    let mut arcs = 0;
    let mut comparisons = 0u64;
    for i in 0..n {
        let row_words = i.div_ceil(64);
        for wi in (0..row_words).rev() {
            let mut zeros = !m.row_word(i, wi);
            if wi == row_words - 1 {
                let top = i - wi * 64;
                if top < 64 {
                    zeros &= (1u64 << top) - 1;
                }
            }
            while zeros != 0 {
                let b = 63 - zeros.leading_zeros() as usize;
                zeros &= !(1u64 << b);
                let j = wi * 64 + b;
                comparisons += 1;
                if dep_kernel(p, model, j, i).is_some() {
                    arcs += 1;
                    m.or_row_into(j, i);
                    m.set(i, j);
                    zeros &= !m.row_word(i, wi);
                }
            }
        }
    }
    std::hint::black_box(comparisons);
    arcs
}

// Probe-only loop: no strongest_dep, measures the pure scan cost.
fn v_scan_only(p: &PreparedBlock, m: &mut BitMatrix) -> usize {
    let n = p.len();
    m.reset(n, n);
    let mut probes = 0;
    for i in 0..n {
        for j in (0..i).rev() {
            if m.contains(i, j) {
                continue;
            }
            probes += 1;
        }
    }
    probes
}

fn main() {
    let model = MachineModel::sparc2();
    let w = generate(BenchmarkProfile::by_name("fpppp").unwrap(), PAPER_SEED);
    let blocks: Vec<Vec<_>> = w
        .blocks
        .iter()
        .map(|b| w.program.block_insns(b).to_vec())
        .filter(|i| i.len() >= 129)
        .collect();
    let prepared: Vec<PreparedBlock> = blocks.iter().map(|b| PreparedBlock::new(b)).collect();
    let mut m = BitMatrix::new(0, 0);
    let mut pool: Vec<BitSet> = Vec::new();
    for round in 0..3 {
        let t = Instant::now();
        let mut acc = 0usize;
        for p in &prepared {
            acc += v_contains(p, &model, &mut m);
        }
        println!(
            "r{round} contains : {:7.2} ms (acc {acc})",
            t.elapsed().as_secs_f64() * 1e3
        );
        let t = Instant::now();
        let mut acc = 0usize;
        for p in &prepared {
            acc += v_wordcache(p, &model, &mut m);
        }
        println!(
            "r{round} wordcache: {:7.2} ms (acc {acc})",
            t.elapsed().as_secs_f64() * 1e3
        );
        let t = Instant::now();
        let mut acc = 0usize;
        for p in &prepared {
            acc += v_bitsets(p, &model, &mut pool);
        }
        println!(
            "r{round} bitsets  : {:7.2} ms (acc {acc})",
            t.elapsed().as_secs_f64() * 1e3
        );
        let t = Instant::now();
        let mut acc = 0usize;
        for p in &prepared {
            acc += v_mirror(p, &model, &mut m);
        }
        println!(
            "r{round} mirror   : {:7.2} ms (acc {acc})",
            t.elapsed().as_secs_f64() * 1e3
        );
        let t = Instant::now();
        let mut acc = 0usize;
        for p in &prepared {
            acc += v_word(p, &model, &mut m);
        }
        println!(
            "r{round} wordscan : {:7.2} ms (acc {acc})",
            t.elapsed().as_secs_f64() * 1e3
        );
        let t = Instant::now();
        let mut acc = 0usize;
        for p in &prepared {
            acc += v_scan_only(p, &mut m);
        }
        println!(
            "r{round} scan-only: {:7.2} ms (acc {acc})",
            t.elapsed().as_secs_f64() * 1e3
        );
        let t = Instant::now();
        let mut acc = 0usize;
        for p in &prepared {
            let mut fresh = BitMatrix::new(0, 0);
            acc += v_contains(p, &model, &mut fresh);
        }
        println!(
            "r{round} fresh-mtx: {:7.2} ms (acc {acc})",
            t.elapsed().as_secs_f64() * 1e3
        );
        let t = Instant::now();
        let mut acc = 0usize;
        for p in &prepared {
            acc += dagsched_core::n2_forward_landskov(p, &model, MemDepPolicy::SymbolicExpr)
                .arc_count();
        }
        println!(
            "r{round} real-fn  : {:7.2} ms (acc {acc})",
            t.elapsed().as_secs_f64() * 1e3
        );
        let t = Instant::now();
        let mut acc = 0usize;
        let mut scratch = dagsched_core::Scratch::new();
        for p in &prepared {
            acc += dagsched_core::ConstructionAlgorithm::N2ForwardLandskov
                .run_with_scratch(p, &model, MemDepPolicy::SymbolicExpr, &mut scratch)
                .arc_count();
        }
        println!(
            "r{round} real-ws  : {:7.2} ms (acc {acc})",
            t.elapsed().as_secs_f64() * 1e3
        );
    }
}
