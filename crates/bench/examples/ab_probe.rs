use dagsched_core::{
    annotate_backward, annotate_construction, annotate_forward, BackwardOrder,
    ConstructionAlgorithm, HeuristicSet, MemDepPolicy, PreparedBlock,
};
use dagsched_isa::{Instruction, MachineModel};
use dagsched_workloads::{generate, BenchmarkProfile, PAPER_SEED};
use std::time::Instant;

fn blocks_of(name: &str, min: usize, max: usize) -> Vec<Vec<Instruction>> {
    let w = generate(BenchmarkProfile::by_name(name).unwrap(), PAPER_SEED);
    w.blocks
        .iter()
        .map(|b| w.program.block_insns(b).to_vec())
        .filter(|i| i.len() >= min && i.len() <= max)
        .collect()
}

fn main() {
    let model = MachineModel::sparc2();
    let gt128 = blocks_of("fpppp", 129, usize::MAX);
    let win = blocks_of("fpppp-1000", 1, usize::MAX);
    for (label, blocks, reps) in [("gt128", &gt128, 40usize), ("window1000", &win, 20)] {
        let prepared: Vec<PreparedBlock> = blocks.iter().map(|b| PreparedBlock::new(b)).collect();
        for algo in [
            ConstructionAlgorithm::TableForward,
            ConstructionAlgorithm::TableBackward,
        ] {
            let t = Instant::now();
            let mut acc = 0usize;
            for _ in 0..reps {
                for p in &prepared {
                    acc += algo.run(p, &model, MemDepPolicy::SymbolicExpr).arc_count();
                }
            }
            let per = t.elapsed().as_secs_f64() / reps as f64 * 1e3;
            println!("{label:>10} {algo:?}: {per:.3} ms/pass (acc {acc})");
        }
        let dags: Vec<_> = blocks
            .iter()
            .map(|insns| {
                let d = ConstructionAlgorithm::TableBackward.run(
                    &PreparedBlock::new(insns),
                    &model,
                    MemDepPolicy::SymbolicExpr,
                );
                (insns.clone(), d)
            })
            .collect();
        let mut sets: Vec<HeuristicSet> = dags
            .iter()
            .map(|(insns, dag)| {
                let mut h = HeuristicSet::default();
                annotate_construction(&mut h, dag, insns, &model);
                annotate_forward(&mut h, dag);
                h
            })
            .collect();
        let t = Instant::now();
        let mut acc = 0u64;
        for _ in 0..reps * 10 {
            for ((_, dag), h) in dags.iter().zip(sets.iter_mut()) {
                annotate_forward(h, dag);
                acc += h.est.last().copied().unwrap_or(0);
            }
        }
        let per = t.elapsed().as_secs_f64() / (reps * 10) as f64 * 1e6;
        println!("{label:>10} heur-forward: {per:.1} us/pass (acc {acc})");
        let t = Instant::now();
        for _ in 0..reps * 10 {
            for ((_, dag), h) in dags.iter().zip(sets.iter_mut()) {
                annotate_backward(h, dag, BackwardOrder::ReverseWalk, false);
                acc += h.lst.first().copied().unwrap_or(0);
            }
        }
        let per = t.elapsed().as_secs_f64() / (reps * 10) as f64 * 1e6;
        println!("{label:>10} heur-backward: {per:.1} us/pass (acc {acc})");
    }
}
