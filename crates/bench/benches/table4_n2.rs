//! Table 4: the `n**2` (compare-against-all) scheduling pipeline.
//!
//! One benchmark per Table 4 row: DAG construction by the `n**2` forward
//! algorithm, the intermediate backward heuristic pass, and the simple
//! forward scheduling pass — the paper's three-step cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dagsched_bench::run_benchmark;
use dagsched_core::{BackwardOrder, ConstructionAlgorithm, MemDepPolicy};
use dagsched_isa::MachineModel;
use dagsched_workloads::{generate, BenchmarkProfile, PAPER_SEED};

fn bench_table4(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_n2");
    group.sample_size(10);
    let model = MachineModel::sparc2();
    // The full Table 4 row set runs in the `tables` binary; Criterion
    // covers a representative spread (small blocks, FP kernels, and the
    // windowed fpppp the paper stopped at).
    for name in ["grep", "linpack", "tomcatv", "nasa7", "fpppp-1000"] {
        let bench = generate(BenchmarkProfile::by_name(name).unwrap(), PAPER_SEED);
        group.bench_with_input(BenchmarkId::from_parameter(name), &bench, |b, bench| {
            b.iter(|| {
                run_benchmark(
                    bench,
                    &model,
                    ConstructionAlgorithm::N2Forward,
                    MemDepPolicy::SymbolicExpr,
                    BackwardOrder::ReverseWalk,
                    false,
                )
                .expect("pipeline")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
