//! Table 5: the table-building scheduling pipelines (forward & backward).
//!
//! The headline comparison: table building stays fast even on the full
//! fpppp with its 11750-instruction block, and the forward and backward
//! variants are essentially equivalent.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dagsched_bench::run_benchmark;
use dagsched_core::{BackwardOrder, ConstructionAlgorithm, MemDepPolicy};
use dagsched_isa::MachineModel;
use dagsched_workloads::{generate, BenchmarkProfile, PAPER_SEED};

fn bench_table5(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5_table");
    group.sample_size(10);
    let model = MachineModel::sparc2();
    for name in ["grep", "linpack", "tomcatv", "fpppp-1000", "fpppp"] {
        let bench = generate(BenchmarkProfile::by_name(name).unwrap(), PAPER_SEED);
        for (label, algo) in [
            ("forward", ConstructionAlgorithm::TableForward),
            ("backward", ConstructionAlgorithm::TableBackward),
        ] {
            group.bench_with_input(BenchmarkId::new(label, name), &bench, |b, bench| {
                b.iter(|| {
                    run_benchmark(
                        bench,
                        &model,
                        algo,
                        MemDepPolicy::SymbolicExpr,
                        BackwardOrder::ReverseWalk,
                        false,
                    )
                    .expect("pipeline")
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table5);
criterion_main!(benches);
