//! Ablation A2 (paper finding 3): the cost of transitive-arc avoidance.
//!
//! Landskov pruning and reachability-bitmap suppression remove transitive
//! arcs at extra construction cost — and lose the Figure 1 timing
//! information. This bench measures the cost side on tomcatv, the paper's
//! densest benchmark.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dagsched_bench::run_benchmark;
use dagsched_core::{BackwardOrder, ConstructionAlgorithm, MemDepPolicy};
use dagsched_isa::MachineModel;
use dagsched_workloads::{generate, BenchmarkProfile, PAPER_SEED};

fn bench_transitive(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_transitive");
    group.sample_size(10);
    let model = MachineModel::sparc2();
    let bench = generate(BenchmarkProfile::by_name("tomcatv").unwrap(), PAPER_SEED);
    for algo in [
        ConstructionAlgorithm::N2Forward,
        ConstructionAlgorithm::N2ForwardLandskov,
        ConstructionAlgorithm::TableBackward,
        ConstructionAlgorithm::TableBackwardBitmap,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(algo.name()),
            &bench,
            |b, bench| {
                b.iter(|| {
                    run_benchmark(
                        bench,
                        &model,
                        algo,
                        MemDepPolicy::SymbolicExpr,
                        BackwardOrder::ReverseWalk,
                        false,
                    )
                    .expect("pipeline")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_transitive);
criterion_main!(benches);
