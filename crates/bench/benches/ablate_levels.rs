//! Ablation A1 (paper finding 4): level-list vs. reverse-walk orders for
//! the intermediate backward heuristic pass. The paper concludes the two
//! are equivalent; this bench lets Criterion confirm the difference is
//! in the noise.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dagsched_bench::run_benchmark;
use dagsched_core::{BackwardOrder, ConstructionAlgorithm, MemDepPolicy};
use dagsched_isa::MachineModel;
use dagsched_workloads::{generate, BenchmarkProfile, PAPER_SEED};

fn bench_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_levels");
    group.sample_size(10);
    let model = MachineModel::sparc2();
    for name in ["linpack", "fpppp"] {
        let bench = generate(BenchmarkProfile::by_name(name).unwrap(), PAPER_SEED);
        for (label, order) in [
            ("reverse-walk", BackwardOrder::ReverseWalk),
            ("level-lists", BackwardOrder::LevelLists),
        ] {
            group.bench_with_input(BenchmarkId::new(label, name), &bench, |b, bench| {
                b.iter(|| {
                    run_benchmark(
                        bench,
                        &model,
                        ConstructionAlgorithm::TableBackward,
                        MemDepPolicy::SymbolicExpr,
                        order,
                        false,
                    )
                    .expect("pipeline")
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_levels);
criterion_main!(benches);
