//! Cost of the six published scheduling algorithms (Table 2) over a
//! common workload — complements Tables 4/5, which fix the scheduler and
//! vary DAG construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dagsched_isa::MachineModel;
use dagsched_sched::{Scheduler, SchedulerKind};
use dagsched_workloads::{generate, BenchmarkProfile, PAPER_SEED};

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedulers");
    group.sample_size(10);
    let model = MachineModel::sparc2();
    let bench = generate(BenchmarkProfile::by_name("linpack").unwrap(), PAPER_SEED);
    for &kind in SchedulerKind::ALL {
        let sched = Scheduler::new(kind);
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &bench,
            |b, bench| {
                b.iter(|| {
                    for block in &bench.blocks {
                        let insns = bench.program.block_insns(block);
                        if !insns.is_empty() {
                            let _ = sched.schedule_block(insns, &model);
                        }
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
