//! Per-phase hot-path cost on the fpppp profiles: DAG construction in
//! isolation (per constructor × block-size bucket), then each heuristic
//! pass (forward, backward, backward + descendant bitmaps) on the
//! table-backward DAGs. These are the rows behind the before/after
//! tables in EXPERIMENTS.md ("SoA/bitset core"); `DAGSCHED_BENCH_QUICK=1`
//! shrinks the sample count so CI can smoke the suite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dagsched_core::{
    annotate_backward, annotate_construction, annotate_forward, BackwardOrder,
    ConstructionAlgorithm, Dag, HeuristicSet, MemDepPolicy, PreparedBlock,
};
use dagsched_isa::{Instruction, MachineModel};
use dagsched_workloads::{generate, BenchmarkProfile, PAPER_SEED};

fn sample_size() -> usize {
    if std::env::var_os("DAGSCHED_BENCH_QUICK").is_some() {
        2
    } else {
        10
    }
}

/// Block-size buckets: the fpppp profile's natural mix plus one windowed
/// giant block, so per-size scaling is visible per constructor.
struct Bucket {
    label: &'static str,
    blocks: Vec<Vec<Instruction>>,
}

fn buckets() -> Vec<Bucket> {
    let fpppp = generate(BenchmarkProfile::by_name("fpppp").unwrap(), PAPER_SEED);
    let mut small = Vec::new();
    let mut medium = Vec::new();
    let mut large = Vec::new();
    for b in &fpppp.blocks {
        let insns = fpppp.program.block_insns(b).to_vec();
        match insns.len() {
            0 => {}
            1..=32 => small.push(insns),
            33..=128 => medium.push(insns),
            _ => large.push(insns),
        }
    }
    let window = generate(BenchmarkProfile::by_name("fpppp-1000").unwrap(), PAPER_SEED);
    let giant: Vec<Vec<Instruction>> = window
        .blocks
        .iter()
        .map(|b| window.program.block_insns(b).to_vec())
        .filter(|insns| !insns.is_empty())
        .collect();
    vec![
        Bucket {
            label: "le32",
            blocks: small,
        },
        Bucket {
            label: "le128",
            blocks: medium,
        },
        Bucket {
            label: "gt128",
            blocks: large,
        },
        Bucket {
            label: "window1000",
            blocks: giant,
        },
    ]
}

fn bench_construction_phase(c: &mut Criterion) {
    let model = MachineModel::sparc2();
    let buckets = buckets();
    let mut group = c.benchmark_group("phase-construct");
    group.sample_size(sample_size());
    for &algo in ConstructionAlgorithm::ALL {
        for bucket in &buckets {
            if bucket.blocks.is_empty() {
                continue;
            }
            let prepared: Vec<PreparedBlock> = bucket
                .blocks
                .iter()
                .map(|b| PreparedBlock::new(b))
                .collect();
            group.bench_with_input(
                BenchmarkId::new(algo.name(), bucket.label),
                &prepared,
                |b, blocks| {
                    b.iter(|| {
                        let mut arcs = 0usize;
                        for block in blocks {
                            arcs += algo
                                .run(block, &model, MemDepPolicy::SymbolicExpr)
                                .arc_count();
                        }
                        arcs
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_heuristic_phases(c: &mut Criterion) {
    let model = MachineModel::sparc2();
    let buckets = buckets();
    // The paper's recommended constructor feeds the pass benches; the
    // passes themselves are constructor-independent given a DAG.
    type BlockDags = Vec<(Vec<Instruction>, Dag)>;
    let mut per_bucket: Vec<(&'static str, BlockDags)> = Vec::new();
    for bucket in buckets {
        let dags: Vec<(Vec<Instruction>, Dag)> = bucket
            .blocks
            .into_iter()
            .map(|insns| {
                let dag = ConstructionAlgorithm::TableBackward.run(
                    &PreparedBlock::new(&insns),
                    &model,
                    MemDepPolicy::SymbolicExpr,
                );
                (insns, dag)
            })
            .collect();
        per_bucket.push((bucket.label, dags));
    }

    let mut group = c.benchmark_group("phase-heur");
    group.sample_size(sample_size());
    for (label, dags) in &per_bucket {
        if dags.is_empty() {
            continue;
        }
        // One pre-annotated set per DAG: the forward bench overwrites the
        // forward fields in place, the backward benches additionally need
        // exec_time and EST to be present.
        let mut sets: Vec<HeuristicSet> = dags
            .iter()
            .map(|(insns, dag)| {
                let mut h = HeuristicSet::default();
                annotate_construction(&mut h, dag, insns, &model);
                annotate_forward(&mut h, dag);
                h
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("forward", label), dags, |b, dags| {
            b.iter(|| {
                let mut acc = 0u64;
                for ((_, dag), h) in dags.iter().zip(sets.iter_mut()) {
                    annotate_forward(h, dag);
                    acc += h.est.last().copied().unwrap_or(0);
                }
                acc
            });
        });
        let mut sets_b: Vec<HeuristicSet> = sets.to_vec();
        group.bench_with_input(BenchmarkId::new("backward", label), dags, |b, dags| {
            b.iter(|| {
                let mut acc = 0u64;
                for ((_, dag), h) in dags.iter().zip(sets_b.iter_mut()) {
                    annotate_backward(h, dag, BackwardOrder::ReverseWalk, false);
                    acc += h.lst.first().copied().unwrap_or(0);
                }
                acc
            });
        });
        let mut sets_d: Vec<HeuristicSet> = sets.to_vec();
        group.bench_with_input(BenchmarkId::new("backward-desc", label), dags, |b, dags| {
            b.iter(|| {
                let mut acc = 0u64;
                for ((_, dag), h) in dags.iter().zip(sets_d.iter_mut()) {
                    annotate_backward(h, dag, BackwardOrder::ReverseWalk, true);
                    acc += h.num_descendants.first().copied().unwrap_or(0) as u64;
                }
                acc
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction_phase, bench_heuristic_phases);
criterion_main!(benches);
