//! Raw DAG construction cost: all six algorithms over one prepared
//! benchmark (no heuristic or scheduling pass) — isolates the §2
//! comparison from the full pipeline of Tables 4/5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dagsched_core::{ConstructionAlgorithm, MemDepPolicy, PreparedBlock};
use dagsched_isa::MachineModel;
use dagsched_workloads::{generate, BenchmarkProfile, PAPER_SEED};

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    group.sample_size(10);
    let model = MachineModel::sparc2();
    let bench = generate(BenchmarkProfile::by_name("tomcatv").unwrap(), PAPER_SEED);
    let prepared: Vec<PreparedBlock> = bench
        .blocks
        .iter()
        .map(|b| PreparedBlock::new(bench.program.block_insns(b)))
        .collect();
    for &algo in ConstructionAlgorithm::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(algo.name()),
            &prepared,
            |b, blocks| {
                b.iter(|| {
                    let mut arcs = 0usize;
                    for block in blocks {
                        arcs += algo
                            .run(block, &model, MemDepPolicy::SymbolicExpr)
                            .arc_count();
                    }
                    arcs
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
