//! Table 3: benchmark generation + structural statistics.
//!
//! Benchmarks the workload generator and the per-block structural
//! statistics that feed Table 3 (block sizes, unique memory expressions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dagsched_stats::block_structure;
use dagsched_workloads::{generate, BenchmarkProfile, PAPER_SEED};

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_structure");
    group.sample_size(10);
    for name in ["grep", "linpack", "tomcatv", "fpppp"] {
        let profile = BenchmarkProfile::by_name(name).unwrap();
        group.bench_with_input(BenchmarkId::new("generate", name), profile, |b, p| {
            b.iter(|| generate(p, PAPER_SEED));
        });
        let bench = generate(profile, PAPER_SEED);
        group.bench_with_input(BenchmarkId::new("stats", name), &bench, |b, bench| {
            b.iter(|| block_structure(&bench.program, &bench.blocks));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
