//! Structure-diverse random block generation.
//!
//! Canon et al. (PAPERS.md) observe that random-DAG fuzzing only
//! exercises scheduler corner cases when the generator is *structure
//! diverse* — a single Erdős–Rényi-style sampler concentrates on one
//! density regime and misses the pathological shapes. This generator
//! therefore samples from explicit shape families, each chosen to stress
//! a different part of the pipeline:
//!
//! * [`Shape::Layered`] — rank-structured blocks (wide dependence
//!   frontiers, the regime where heuristic ties dominate).
//! * [`Shape::FanIn`] — reduction trees (deep fan-in; stresses
//!   `max_delay_to_leaf` and backward passes).
//! * [`Shape::FanOut`] — one long-latency def read by many (the paper's
//!   Figure 1 "important transitive arc" situation).
//! * [`Shape::MemHeavy`] — load/store traffic over few distinct cells
//!   (stresses the memory disambiguation policies and store ordering).
//! * [`Shape::Carry`] — a serial chain through one register (degenerate
//!   DAG: a path; catches off-by-ones at zero parallelism).
//! * [`Shape::DelaySlot`] — `cmp` + conditional branch endings
//!   (stresses terminator pinning and the delay-slot postpass).
//! * [`Shape::Mutated`] — corpus mutation: a block drawn from the
//!   calibrated workload profiles (including the fpppp large-block
//!   profile) with line-level mutations applied.
//!
//! All programs are emitted as assembly text. The fuzz loop
//! canonicalizes through `parse_asm` before checking, so generated
//! programs are exactly what a reproducer file will contain.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use dagsched_isa::{Instruction, MemRef, Opcode, Program, Reg};
use dagsched_workloads::{generate, BenchmarkProfile};

/// A structural family of generated blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// Rank-structured: each instruction reads results of the previous layer.
    Layered,
    /// Reduction tree: many independent defs folded pairwise into one.
    FanIn,
    /// One (often long-latency) def fanned out to many readers.
    FanOut,
    /// Mostly loads/stores over a small pool of memory cells.
    MemHeavy,
    /// A serial dependence chain through a single register.
    Carry,
    /// Generic mix ending in `cmp` + conditional branch (delay-slot bait).
    DelaySlot,
    /// A workload-profile block with random line-level mutations.
    Mutated,
}

impl Shape {
    /// Every shape, for round-robin / random selection.
    pub const ALL: &'static [Shape] = &[
        Shape::Layered,
        Shape::FanIn,
        Shape::FanOut,
        Shape::MemHeavy,
        Shape::Carry,
        Shape::DelaySlot,
        Shape::Mutated,
    ];

    /// Short name used in reproducer headers and progress lines.
    pub fn name(self) -> &'static str {
        match self {
            Shape::Layered => "layered",
            Shape::FanIn => "fan-in",
            Shape::FanOut => "fan-out",
            Shape::MemHeavy => "mem-heavy",
            Shape::Carry => "carry",
            Shape::DelaySlot => "delay-slot",
            Shape::Mutated => "mutated",
        }
    }
}

/// Profiles drawn from for [`Shape::Mutated`]. `fpppp-1000` is the
/// windowed large-block profile — its blocks are big enough to stress
/// the table builders' resource records without drowning the fuzz loop.
const MUTATION_PROFILES: &[&str] = &["grep", "cccp", "linpack", "dfa", "tomcatv", "fpppp-1000"];

/// Integer registers the generator writes. A deliberately small pool so
/// blocks are dependence-dense.
const INT_POOL: &[Reg] = &[
    Reg::Int(8),  // %o0
    Reg::Int(9),  // %o1
    Reg::Int(10), // %o2
    Reg::Int(11), // %o3
    Reg::Int(16), // %l0
    Reg::Int(17), // %l1
    Reg::Int(18), // %l2
    Reg::Int(19), // %l3
    Reg::Int(24), // %i0
    Reg::Int(25), // %i1
    Reg::Int(1),  // %g1
    Reg::Int(2),  // %g2
];

struct Gen {
    rng: SmallRng,
    prog: Program,
    /// Distinct memory cells available to the current block.
    cells: Vec<(String, i32)>,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            rng: SmallRng::seed_from_u64(seed),
            prog: Program::new(),
            cells: Vec::new(),
        }
    }

    fn int_reg(&mut self) -> Reg {
        INT_POOL[self.rng.gen_range(0..INT_POOL.len())]
    }

    /// Even fp register (double ops pair `%fN`/`%fN+1`).
    fn fp_reg(&mut self) -> Reg {
        Reg::f(2 * self.rng.gen_range(0u8..8))
    }

    fn fresh_cells(&mut self, n: usize) {
        self.cells = (0..n)
            .map(|k| (format!("[%fp-{}]", 8 * (k + 1)), -(8 * (k as i32 + 1))))
            .collect();
    }

    fn mem(&mut self) -> MemRef {
        let k = self.rng.gen_range(0..self.cells.len());
        let (text, off) = self.cells[k].clone();
        let id = self.prog.mem_exprs.intern(&text);
        MemRef::base_offset(Reg::fp(), off, id)
    }

    fn int_op(&mut self) -> Opcode {
        const OPS: &[Opcode] = &[
            Opcode::Add,
            Opcode::Sub,
            Opcode::And,
            Opcode::Or,
            Opcode::Xor,
            Opcode::Sll,
        ];
        OPS[self.rng.gen_range(0..OPS.len())]
    }

    fn fp_op(&mut self) -> Opcode {
        const OPS: &[Opcode] = &[
            Opcode::FAddD,
            Opcode::FSubD,
            Opcode::FMulD,
            Opcode::FAddD,
            Opcode::FMulD,
            Opcode::FDivD,
        ];
        OPS[self.rng.gen_range(0..OPS.len())]
    }

    /// A random "filler" instruction reading `src` (if given).
    fn filler(&mut self, src: Option<Reg>) -> Instruction {
        let a = src.unwrap_or_else(|| self.int_reg());
        match self.rng.gen_range(0u32..10) {
            0..=4 => {
                let op = self.int_op();
                let b = self.int_reg();
                let d = self.int_reg();
                if self.rng.gen_bool(0.3) {
                    Instruction::int_imm(op, a, self.rng.gen_range(1i64..64), d)
                } else {
                    Instruction::int3(op, a, b, d)
                }
            }
            5 => {
                let op = if self.rng.gen_bool(0.5) {
                    Opcode::Umul
                } else {
                    Opcode::Smul
                };
                Instruction::int3(op, a, self.int_reg(), self.int_reg())
            }
            6 => {
                let m = self.mem();
                Instruction::load(Opcode::Ld, m, self.int_reg())
            }
            7 => {
                let m = self.mem();
                Instruction::store(Opcode::St, a, m)
            }
            8 => {
                let (x, y, d) = (self.fp_reg(), self.fp_reg(), self.fp_reg());
                Instruction::fp3(self.fp_op(), x, y, d)
            }
            _ => {
                let m = self.mem();
                if self.rng.gen_bool(0.5) {
                    Instruction::load(Opcode::LdDf, m, self.fp_reg())
                } else {
                    Instruction::store(Opcode::StDf, self.fp_reg(), m)
                }
            }
        }
    }

    fn push(&mut self, insn: Instruction) {
        self.prog.push(insn);
    }

    /// Optionally terminate the current block.
    fn terminator(&mut self, force_bicc: bool) {
        let roll = self.rng.gen_range(0u32..10);
        if force_bicc || roll < 5 {
            let (a, b) = (self.int_reg(), self.int_reg());
            self.push(Instruction::cmp(a, b));
            self.push(Instruction::branch(Opcode::Bicc));
        } else if roll < 6 {
            self.push(Instruction::branch(Opcode::Ba));
        } else if roll < 7 {
            self.push(Instruction::branch(Opcode::Call));
        } else if roll < 8 {
            self.push(Instruction::new(Opcode::Save));
        } else if roll < 9 {
            self.push(Instruction::new(Opcode::Restore));
        }
        // roll == 9: fall through (no terminator; block ends at program end
        // or the next block's first label-free instruction run).
    }

    fn block(&mut self, shape: Shape) {
        let cells = self.rng.gen_range(1usize..5);
        self.fresh_cells(cells);
        match shape {
            Shape::Layered => {
                let layers = self.rng.gen_range(2usize..5);
                let width = self.rng.gen_range(2usize..5);
                let mut prev: Vec<Reg> = (0..width).map(|_| self.int_reg()).collect();
                // Seed layer: independent defs.
                for &r in prev.clone().iter() {
                    let op = self.int_op();
                    let a = self.int_reg();
                    let imm = self.rng.gen_range(1i64..32);
                    self.push(Instruction::int_imm(op, a, imm, r));
                }
                for _ in 1..layers {
                    let mut next = Vec::new();
                    for _ in 0..width {
                        let a = prev[self.rng.gen_range(0..prev.len())];
                        let b = prev[self.rng.gen_range(0..prev.len())];
                        let d = self.int_reg();
                        let op = self.int_op();
                        self.push(Instruction::int3(op, a, b, d));
                        next.push(d);
                    }
                    prev = next;
                }
                self.terminator(false);
            }
            Shape::FanIn => {
                let leaves = self.rng.gen_range(3usize..8);
                let mut live: Vec<Reg> = Vec::new();
                for k in 0..leaves {
                    let d = INT_POOL[k % INT_POOL.len()];
                    if self.rng.gen_bool(0.35) {
                        let m = self.mem();
                        self.push(Instruction::load(Opcode::Ld, m, d));
                    } else {
                        let a = self.int_reg();
                        let op = self.int_op();
                        self.push(Instruction::int_imm(op, a, k as i64 + 1, d));
                    }
                    live.push(d);
                }
                while live.len() > 1 {
                    let a = live.remove(self.rng.gen_range(0..live.len()));
                    let b = live.remove(self.rng.gen_range(0..live.len()));
                    let d = self.int_reg();
                    let op = self.int_op();
                    self.push(Instruction::int3(op, a, b, d));
                    live.push(d);
                }
                self.terminator(false);
            }
            Shape::FanOut => {
                // A long-latency producer…
                let hub = self.fp_reg();
                let (x, y) = (self.fp_reg(), self.fp_reg());
                self.push(Instruction::fp3(Opcode::FDivD, x, y, hub));
                // …fanned out to consumers, some of which redefine the hub
                // (creating the WAR/"important transitive arc" structure).
                let readers = self.rng.gen_range(3usize..8);
                for _ in 0..readers {
                    let other = self.fp_reg();
                    let d = if self.rng.gen_bool(0.25) {
                        hub
                    } else {
                        self.fp_reg()
                    };
                    let op = self.fp_op();
                    self.push(Instruction::fp3(op, hub, other, d));
                }
                if self.rng.gen_bool(0.5) {
                    let m = self.mem();
                    self.push(Instruction::store(Opcode::StDf, hub, m));
                }
                self.terminator(false);
            }
            Shape::MemHeavy => {
                let n = self.rng.gen_range(4usize..14);
                for _ in 0..n {
                    let m = self.mem();
                    match self.rng.gen_range(0u32..5) {
                        0 | 1 => {
                            let d = self.int_reg();
                            self.push(Instruction::load(Opcode::Ld, m, d));
                        }
                        2 => {
                            let s = self.int_reg();
                            self.push(Instruction::store(Opcode::St, s, m));
                        }
                        3 => {
                            let d = self.fp_reg();
                            self.push(Instruction::load(Opcode::LdDf, m, d));
                        }
                        _ => {
                            let s = self.fp_reg();
                            self.push(Instruction::store(Opcode::StDf, s, m));
                        }
                    }
                    if self.rng.gen_bool(0.3) {
                        let f = self.filler(None);
                        self.push(f);
                    }
                }
                self.terminator(false);
            }
            Shape::Carry => {
                let n = self.rng.gen_range(3usize..12);
                let chain = self.int_reg();
                let a = self.int_reg();
                self.push(Instruction::int_imm(Opcode::Add, a, 1, chain));
                for _ in 0..n {
                    if self.rng.gen_bool(0.8) {
                        let op = self.int_op();
                        let imm = self.rng.gen_range(1i64..16);
                        self.push(Instruction::int_imm(op, chain, imm, chain));
                    } else {
                        // Interleave an independent instruction: the chain
                        // still dominates, but scheduling has one choice.
                        let f = self.filler(None);
                        self.push(f);
                    }
                }
                self.terminator(false);
            }
            Shape::DelaySlot => {
                let n = self.rng.gen_range(3usize..10);
                let mut last: Option<Reg> = None;
                for _ in 0..n {
                    let reuse = self.rng.gen_bool(0.4);
                    let f = self.filler(if reuse { last } else { None });
                    last = f.rd;
                    self.push(f);
                }
                self.terminator(true);
            }
            Shape::Mutated => unreachable!("mutated programs are built from profile text"),
        }
    }
}

/// Generate one program (1–3 basic blocks) of the given shape as
/// assembly text. Deterministic in `(shape, seed)`.
pub fn generate_program(shape: Shape, seed: u64) -> String {
    if shape == Shape::Mutated {
        let mut state = seed;
        let pick = crate::splitmix64(&mut state);
        let name = MUTATION_PROFILES[(pick % MUTATION_PROFILES.len() as u64) as usize];
        let profile = BenchmarkProfile::by_name(name).expect("known mutation profile");
        let bench = generate(profile, crate::splitmix64(&mut state) % 64);
        // Keep a window of whole blocks so the fuzz loop stays fast even
        // on the fpppp profile.
        let text = window_text(&bench.program, crate::splitmix64(&mut state), 80);
        return mutate_program(&text, crate::splitmix64(&mut state));
    }
    let mut g = Gen::new(seed);
    let blocks = g.rng.gen_range(1usize..4);
    for _ in 0..blocks {
        g.block(shape);
    }
    if g.prog.is_empty() {
        // Degenerate roll (every block emitted only a terminator that the
        // parser treats as its own block is still fine, but guard the
        // truly-empty case).
        g.push(Instruction::int_imm(Opcode::Add, Reg::o(0), 1, Reg::o(1)));
    }
    g.prog.to_string()
}

/// A window of up to `max_insns` whole basic blocks from `prog`,
/// starting at a seeded block index, rendered as text.
fn window_text(prog: &Program, seed: u64, max_insns: usize) -> String {
    let blocks = prog.basic_blocks();
    if blocks.is_empty() {
        return prog.to_string();
    }
    let start = (seed % blocks.len() as u64) as usize;
    let mut out = String::new();
    let mut taken = 0usize;
    for b in blocks.iter().cycle().skip(start).take(blocks.len()) {
        let insns = prog.block_insns(b);
        if taken == 0 && insns.len() > max_insns {
            // The first block alone is over budget. The old `taken > 0`
            // guard admitted it whole — so whenever the seeded start
            // landed on fpppp's 11750-instruction block, the "window"
            // was the entire block and a single fuzz iteration spent
            // ~20 minutes inside the O(n^3) closure oracle, blowing the
            // run's wall-clock budget by an order of magnitude. Slice a
            // seeded max_insns stretch *inside* the block instead: the
            // window is still real fpppp code, just bounded.
            let offset = (seed >> 7) as usize % (insns.len() - max_insns + 1);
            for i in &insns[offset..offset + max_insns] {
                out.push_str(&format!("    {i}\n"));
            }
            break;
        }
        if taken > 0 && taken + insns.len() > max_insns {
            break;
        }
        for i in insns {
            out.push_str(&format!("    {i}\n"));
        }
        taken += insns.len();
        if taken >= max_insns {
            break;
        }
    }
    out
}

/// Registers used for token-level register mutation. All parse back.
const REG_TOKENS: &[&str] = &["%o0", "%o1", "%l0", "%l1", "%i0", "%g1", "%g2", "%l2"];

/// Apply 1–4 line-level mutations to `text`: delete, duplicate, swap,
/// move, or register-token substitution. Every mutation keeps each line
/// individually well-formed, so the result always parses.
pub fn mutate_program(text: &str, seed: u64) -> String {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut lines: Vec<String> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.to_string())
        .collect();
    if lines.is_empty() {
        return text.to_string();
    }
    let muts = rng.gen_range(1usize..5);
    for _ in 0..muts {
        if lines.is_empty() {
            break;
        }
        match rng.gen_range(0u32..5) {
            0 if lines.len() > 1 => {
                let k = rng.gen_range(0..lines.len());
                lines.remove(k);
            }
            1 => {
                let k = rng.gen_range(0..lines.len());
                let l = lines[k].clone();
                lines.insert(k, l);
            }
            2 if lines.len() > 1 => {
                let a = rng.gen_range(0..lines.len());
                let b = rng.gen_range(0..lines.len());
                lines.swap(a, b);
            }
            3 if lines.len() > 1 => {
                let from = rng.gen_range(0..lines.len());
                let l = lines.remove(from);
                let to = rng.gen_range(0..=lines.len());
                lines.insert(to.min(lines.len()), l);
            }
            _ => {
                let k = rng.gen_range(0..lines.len());
                let old = REG_TOKENS[rng.gen_range(0..REG_TOKENS.len())];
                let new = REG_TOKENS[rng.gen_range(0..REG_TOKENS.len())];
                if lines[k].contains(old) {
                    lines[k] = lines[k].replacen(old, new, 1);
                }
            }
        }
    }
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_workloads::parse_asm;

    #[test]
    fn every_shape_parses_over_many_seeds() {
        for &shape in Shape::ALL {
            for seed in 0..40u64 {
                let text = generate_program(shape, seed);
                let prog = parse_asm(&text)
                    .unwrap_or_else(|e| panic!("{} seed {seed}: {e}\n{text}", shape.name()));
                assert!(
                    !prog.is_empty(),
                    "{} seed {seed} generated no insns",
                    shape.name()
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for &shape in Shape::ALL {
            assert_eq!(generate_program(shape, 7), generate_program(shape, 7));
        }
    }

    #[test]
    fn mutated_programs_are_always_bounded() {
        // Regression: seed 0x640a9583b62dfa2c (iteration 6306 of the
        // 0xBEEF fuzz stream) picks the fpppp-1000 profile and lands
        // the window start on its 11750-instruction block; the old
        // window logic admitted the whole block and one fuzz iteration
        // ran for ~20 minutes. The window must stay bounded for every
        // seed; the +8 slack covers duplicate-line mutations (≤ 4 per
        // program, but mutations compound over the 1–4 rolls).
        const BOUND: usize = 80 + 8;
        let text = generate_program(Shape::Mutated, 0x640a_9583_b62d_fa2c);
        assert!(
            text.lines().count() <= BOUND,
            "fpppp-first-block seed generated {} lines",
            text.lines().count()
        );
        for seed in 0..300u64 {
            let text = generate_program(Shape::Mutated, seed);
            let n = text.lines().count();
            assert!(n <= BOUND, "seed {seed} generated {n} lines");
        }
    }

    #[test]
    fn mutation_preserves_parseability() {
        let base = generate_program(Shape::Layered, 3);
        for seed in 0..60u64 {
            let m = mutate_program(&base, seed);
            if m.trim().is_empty() {
                continue;
            }
            parse_asm(&m).unwrap_or_else(|e| panic!("mutation seed {seed}: {e}\n{m}"));
        }
    }
}
