//! The N-way cross-check matrix.
//!
//! One candidate program (assembly text) is pushed through every way the
//! workspace can process it, and every pair of results that the paper —
//! or this reproduction's own documentation — claims must agree is
//! compared. Each check family pins down one claim:
//!
//! | Check | Claim it pins down |
//! |---|---|
//! | [`CheckKind::Parse`] | printer/parser round-trip: a reproducer file is the program the matrix saw |
//! | [`CheckKind::Closure`] | §2/§6: every constructor (×  every memory policy) has the same transitive closure as the brute-force dependence relation |
//! | [`CheckKind::Timing`] | Figure 1: the non-pruning constructors preserve every live RAW latency as a path weight |
//! | [`CheckKind::Heur`] | §3–4: the word-parallel heuristic sweeps equal a closure-based per-node reference, field for field, and produce bit-identical schedules; construction work counters are exact and scratch-reuse-invariant |
//! | [`CheckKind::Validity`] | each published scheduler emits a permutation respecting its own DAG |
//! | [`CheckKind::Interp`] | scheduling preserves semantics: the reordered block leaves the `pipesim` interpreter in a bit-identical machine state |
//! | [`CheckKind::Pipeline`] | serial driver ≡ `--jobs N` driver ≡ cached service path, bit-identical, cold and warm |
//! | [`CheckKind::Optimal`] | on small blocks, list schedules never beat proven branch-and-bound optima and stay within a documented envelope |
//! | [`CheckKind::Wire`] | every request/response survives proto (binary frame) + JSON round-trips |

use std::fmt;

use dagsched_core::closure::{
    closure_equals_ground_truth, preserves_dependence_latencies, reference_heuristics,
};
use dagsched_core::{
    ConstructionAlgorithm, HeuristicSet, MemDepPolicy, PhaseStats, PreparedBlock, Scratch,
};
use dagsched_driver::batch::{schedule_program_batch, Limits, NoCache};
use dagsched_driver::driver::DriverConfig;
use dagsched_isa::{Instruction, MachineModel, MemExprId, Program};
use dagsched_pipesim::interp::{run, MachineState};
use dagsched_sched::{BranchAndBound, OptimalResult, Schedule, Scheduler, SchedulerKind};
use dagsched_service::json::Json;
use dagsched_service::proto::{
    read_frame, write_frame, FrameKind, ScheduleRequest, ScheduleResponse, DEFAULT_MAX_FRAME,
};
use dagsched_service::{execute, CacheConfig, EngineLimits, ScheduleCache};
use dagsched_workloads::parse_asm;

/// Which family of cross-check failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CheckKind {
    /// Assembly printer/parser round-trip.
    Parse,
    /// Constructor transitive-closure equivalence.
    Closure,
    /// Live RAW latency preservation.
    Timing,
    /// Heuristic sweeps vs the closure-based reference path.
    Heur,
    /// Schedule dependence validity.
    Validity,
    /// Interpreter machine-state equivalence.
    Interp,
    /// Serial / parallel / cached-service bit-identity.
    Pipeline,
    /// Branch-and-bound optimality envelope.
    Optimal,
    /// Wire protocol round-trip.
    Wire,
}

impl CheckKind {
    /// Stable name used in reproducer file headers.
    pub fn name(self) -> &'static str {
        match self {
            CheckKind::Parse => "parse",
            CheckKind::Closure => "closure",
            CheckKind::Timing => "timing",
            CheckKind::Heur => "heur",
            CheckKind::Validity => "validity",
            CheckKind::Interp => "interp",
            CheckKind::Pipeline => "pipeline",
            CheckKind::Optimal => "optimal",
            CheckKind::Wire => "wire",
        }
    }

    /// Inverse of [`CheckKind::name`].
    pub fn from_name(s: &str) -> Option<CheckKind> {
        Some(match s {
            "parse" => CheckKind::Parse,
            "closure" => CheckKind::Closure,
            "timing" => CheckKind::Timing,
            "heur" => CheckKind::Heur,
            "validity" => CheckKind::Validity,
            "interp" => CheckKind::Interp,
            "pipeline" => CheckKind::Pipeline,
            "optimal" => CheckKind::Optimal,
            "wire" => CheckKind::Wire,
            _ => return None,
        })
    }
}

impl fmt::Display for CheckKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One failed cross-check: which family, which pair of pipelines
/// disagreed, and how.
#[derive(Debug, Clone)]
pub struct Disagreement {
    /// Check family.
    pub kind: CheckKind,
    /// The two sides that disagreed (e.g. `"table-backward vs ground truth"`).
    pub pair: String,
    /// Human-readable diagnosis.
    pub detail: String,
}

impl Disagreement {
    fn new(kind: CheckKind, pair: impl Into<String>, detail: impl Into<String>) -> Disagreement {
        Disagreement {
            kind,
            pair: pair.into(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Disagreement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.kind, self.pair, self.detail)
    }
}

/// Matrix tuning knobs. The matrix is a *pure function* of
/// `(text, config)` — replaying a reproducer under the default config
/// re-runs exactly the checks that caught it.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// Timing model every check runs against.
    pub model: MachineModel,
    /// Largest block handed to branch-and-bound.
    pub optimal_max_len: usize,
    /// Node budget for branch-and-bound; `BudgetExhausted` skips the check.
    pub optimal_node_budget: u64,
    /// Random initial machine states per interpreter check.
    pub interp_states: u64,
    /// Run the wire round-trip family (needs the service types only —
    /// no sockets — but costs an engine execution per program).
    pub check_wire: bool,
    /// Seed for the interpreter's random initial states. Fixed by
    /// default so corpus replay is deterministic.
    pub state_seed: u64,
}

impl Default for MatrixConfig {
    fn default() -> MatrixConfig {
        MatrixConfig {
            model: MachineModel::sparc2(),
            optimal_max_len: 12,
            optimal_node_budget: 300_000,
            interp_states: 2,
            check_wire: true,
            state_seed: 0xDA65_C4ED,
        }
    }
}

/// What a clean matrix pass covered (for reporting and for calibrating
/// the optimality envelopes).
#[derive(Debug, Clone, Default)]
pub struct CheckSummary {
    /// Basic blocks checked.
    pub blocks: usize,
    /// Instructions across those blocks.
    pub insns: usize,
    /// Blocks where branch-and-bound proved an optimum.
    pub optimal_proven: usize,
    /// Largest observed `makespan - optimal` gap per scheduler
    /// (scheduler name, gap), over blocks with proven optima.
    pub opt_gaps: Vec<(&'static str, u64)>,
}

impl CheckSummary {
    fn record_gap(&mut self, kind: SchedulerKind, gap: u64) {
        for entry in &mut self.opt_gaps {
            if entry.0 == kind.name() {
                entry.1 = entry.1.max(gap);
                return;
            }
        }
        self.opt_gaps.push((kind.name(), gap));
    }

    /// Merge another summary into this one (used by the fuzz loop).
    pub fn absorb(&mut self, other: &CheckSummary) {
        self.blocks += other.blocks;
        self.insns += other.insns;
        self.optimal_proven += other.optimal_proven;
        for &(name, gap) in &other.opt_gaps {
            if let Some(entry) = self.opt_gaps.iter_mut().find(|e| e.0 == name) {
                entry.1 = entry.1.max(gap);
            } else {
                self.opt_gaps.push((name, gap));
            }
        }
    }
}

/// Documented optimality envelope per scheduler: on blocks small enough
/// for branch-and-bound to prove an optimum, the scheduler's makespan
/// (re-timed on the reference compare-against-all DAG) must not exceed
/// `optimal + envelope`.
///
/// These are *empirical* envelopes, calibrated by sustained fuzz runs
/// over every generator shape (see DESIGN.md "verification matrix"), not
/// analytic guarantees: the forward critical-path schedulers track the
/// optimum closely, while the backward-priority schedulers (Schlansker,
/// Tiemann) trade schedule quality for pass cheapness — the same
/// behaviour the paper's Table 6 reports — and need a wider envelope.
/// Calibration: five sustained runs (seeds 0xDA65C4ED three times,
/// 1991, 0xBEEF; ~90k programs, ~400k blocks, ~360k proven optima)
/// observed worst gaps of GM 25, Krishnamurthy 17, Schlansker 46,
/// Shieh 26, Tiemann 20, Warren 14 cycles; the envelopes below are
/// those maxima with ~40–50% headroom. A block exceeding its envelope is
/// a *finding* to triage — either a genuine scheduler regression or a
/// newly discovered pathological input that, once triaged as faithful
/// to the published heuristic, widens the envelope and lands in
/// `tests/corpus/` as a pin (see `optimal-gm-divchain.s`).
pub fn optimal_envelope(kind: SchedulerKind) -> u64 {
    match kind {
        SchedulerKind::GibbonsMuchnick => 38,
        SchedulerKind::Krishnamurthy => 26,
        SchedulerKind::Schlansker => 68,
        SchedulerKind::ShiehPapachristou => 33,
        SchedulerKind::Tiemann => 30,
        SchedulerKind::Warren => 21,
    }
}

/// SplitMix64 over a local state (deterministic sub-seed stream).
fn mix(state: &mut u64) -> u64 {
    crate::splitmix64(state)
}

/// Distinct memory cells a block touches, in first-use order.
fn block_cells(insns: &[Instruction]) -> Vec<MemExprId> {
    let mut cells = Vec::new();
    for insn in insns {
        if let Some(m) = &insn.mem {
            if !cells.contains(&m.expr) {
                cells.push(m.expr);
            }
        }
    }
    cells
}

/// Run the full cross-check matrix over `text`.
///
/// Returns the coverage summary on success, or the *first* disagreement
/// found. The matrix deliberately stops at the first failure: the fuzz
/// loop shrinks against a single check kind, and later checks on an
/// already-inconsistent program would only produce noise.
pub fn check_text(text: &str, cfg: &MatrixConfig) -> Result<CheckSummary, Disagreement> {
    // ── Parse + printer/parser round-trip ────────────────────────────
    let program = parse_asm(text)
        .map_err(|e| Disagreement::new(CheckKind::Parse, "asm text vs parser", e.to_string()))?;
    if program.is_empty() {
        // Nothing to check; an empty program is vacuously consistent.
        return Ok(CheckSummary::default());
    }
    let printed = program.to_string();
    let reparsed = parse_asm(&printed).map_err(|e| {
        Disagreement::new(
            CheckKind::Parse,
            "printer vs parser",
            format!("printed program no longer parses: {e}"),
        )
    })?;
    if program.insns.len() != reparsed.insns.len() {
        return Err(Disagreement::new(
            CheckKind::Parse,
            "printer vs parser",
            format!(
                "printed program has {} insns, reparse has {}",
                program.insns.len(),
                reparsed.insns.len()
            ),
        ));
    }
    for (k, (a, b)) in program.insns.iter().zip(&reparsed.insns).enumerate() {
        if a.to_string() != b.to_string() {
            return Err(Disagreement::new(
                CheckKind::Parse,
                "printer vs parser",
                format!("insn {k} reprints as `{b}`, was `{a}`"),
            ));
        }
    }

    let mut summary = CheckSummary::default();
    let blocks = program.basic_blocks();
    for b in &blocks {
        let insns = program.block_insns(b);
        if insns.is_empty() {
            continue;
        }
        check_block(insns, cfg, &mut summary)?;
    }

    check_pipelines(&program, text, cfg)?;

    if cfg.check_wire {
        check_wire(text, cfg)?;
    }
    Ok(summary)
}

/// Per-block checks: constructors, schedulers, oracle, optimality.
fn check_block(
    insns: &[Instruction],
    cfg: &MatrixConfig,
    summary: &mut CheckSummary,
) -> Result<(), Disagreement> {
    let model = &cfg.model;
    let prepared = PreparedBlock::new(insns);
    summary.blocks += 1;
    summary.insns += insns.len();

    // ── Constructor closure equivalence, every algorithm × policy ────
    for &algo in ConstructionAlgorithm::ALL {
        for &policy in MemDepPolicy::ALL {
            let dag = algo.run(&prepared, model, policy);
            closure_equals_ground_truth(&dag, &prepared, model, policy).map_err(|e| {
                Disagreement::new(
                    CheckKind::Closure,
                    format!("{algo:?}/{policy:?} vs ground truth"),
                    e,
                )
            })?;
        }
    }

    // ── Live RAW latency preservation (the Figure 1 property) ────────
    // Holds for the constructors that keep "important" transitive arcs;
    // Landskov pruning and bitmap suppression are *documented* to lose
    // it (the paper's recommendation against them), so they are not in
    // this list.
    for &algo in &[
        ConstructionAlgorithm::N2Forward,
        ConstructionAlgorithm::N2Backward,
        ConstructionAlgorithm::TableForward,
        ConstructionAlgorithm::TableBackward,
    ] {
        let dag = algo.run(&prepared, model, MemDepPolicy::SymbolicExpr);
        preserves_dependence_latencies(&dag, &prepared, model, MemDepPolicy::SymbolicExpr)
            .map_err(|e| {
                Disagreement::new(
                    CheckKind::Timing,
                    format!("{algo:?} vs live RAW latencies"),
                    e,
                )
            })?;
    }

    // ── Heuristic sweeps vs the closure-based reference path ─────────
    // The SoA core computes heuristics with word-parallel arc-column
    // sweeps gated on sortedness flags; the reference path recomputes
    // everything with naive per-node adjacency walks and per-node
    // reachability bitmaps. Every field must match exactly, and the
    // construction work counters must be exact (arcs_added == the DAG's
    // arc count) and invariant under scratch reuse.
    for &algo in ConstructionAlgorithm::ALL {
        let mut scratch = Scratch::new();
        let dag = algo.run_with_scratch(&prepared, model, MemDepPolicy::SymbolicExpr, &mut scratch);
        let cold = scratch.stats;
        if cold.arcs_added != dag.arc_count() as u64 {
            return Err(Disagreement::new(
                CheckKind::Heur,
                format!("{algo:?} PhaseStats vs DAG"),
                format!(
                    "construction recorded {} arcs, DAG holds {}",
                    cold.arcs_added,
                    dag.arc_count()
                ),
            ));
        }
        let _ = algo.run_with_scratch(&prepared, model, MemDepPolicy::SymbolicExpr, &mut scratch);
        let warm = scratch.stats;
        let delta = PhaseStats {
            blocks: warm.blocks - cold.blocks,
            nodes: warm.nodes - cold.nodes,
            arcs_added: warm.arcs_added - cold.arcs_added,
            arcs_suppressed: warm.arcs_suppressed - cold.arcs_suppressed,
            table_probes: warm.table_probes - cold.table_probes,
            comparisons: warm.comparisons - cold.comparisons,
            ..PhaseStats::default()
        };
        if !delta.same_counts(&cold) {
            return Err(Disagreement::new(
                CheckKind::Heur,
                format!("{algo:?} cold scratch vs warm scratch"),
                format!("work counters drifted across reuse: cold {cold:?}, warm delta {delta:?}"),
            ));
        }
        let sweep = HeuristicSet::compute(&dag, insns, model, true);
        let reference = reference_heuristics(&dag, insns, model, true);
        if let Some(diff) = heur_field_diff(&sweep, &reference) {
            return Err(Disagreement::new(
                CheckKind::Heur,
                format!("{algo:?} sweep vs reference heuristics"),
                diff,
            ));
        }
    }

    // Reference DAG for uniform re-timing: compare-against-all keeps
    // every dependence arc with its full latency.
    let ref_dag =
        ConstructionAlgorithm::N2Forward.run(&prepared, model, MemDepPolicy::SymbolicExpr);

    // ── Branch-and-bound optimum (small blocks) ──────────────────────
    let optimal = if insns.len() <= cfg.optimal_max_len {
        let heur = HeuristicSet::compute(&ref_dag, insns, model, false);
        let bb = BranchAndBound {
            node_budget: cfg.optimal_node_budget,
        };
        match bb.schedule(&ref_dag, insns, model, &heur) {
            r @ OptimalResult::Optimal(_) => {
                summary.optimal_proven += 1;
                Some(r.schedule().makespan(insns, model))
            }
            OptimalResult::BudgetExhausted(_) => None,
        }
    } else {
        None
    };

    // ── Every published scheduler ────────────────────────────────────
    let cells = block_cells(insns);
    for &kind in SchedulerKind::ALL {
        let sched = Scheduler::new(kind);
        let dag = sched.construction.run(&prepared, model, sched.policy);
        let heur = HeuristicSet::compute(&dag, insns, model, false);
        let s = sched.schedule_dag(&dag, insns, model, &heur);

        // Dependence validity against the scheduler's own DAG.
        s.verify(&dag)
            .map_err(|e| Disagreement::new(CheckKind::Validity, format!("{kind} vs its DAG"), e))?;

        // Schedule bit-identity across heuristic paths: the scheduler
        // must emit the same order whether its priorities came from the
        // word-parallel sweeps or the closure-based reference walks.
        let ref_heur = reference_heuristics(&dag, insns, model, false);
        let s_ref = sched.schedule_dag(&dag, insns, model, &ref_heur);
        if s_ref.order != s.order {
            let at = s
                .order
                .iter()
                .zip(&s_ref.order)
                .position(|(a, b)| a != b)
                .unwrap_or(0);
            return Err(Disagreement::new(
                CheckKind::Heur,
                format!("{kind}: sweep vs reference heuristics"),
                format!(
                    "schedules diverge at slot {at}: sweep picks {:?}, reference picks {:?}",
                    s.order[at], s_ref.order[at]
                ),
            ));
        }

        let emitted: Vec<Instruction> = s.order.iter().map(|n| insns[n.index()].clone()).collect();

        // Interpreter-state equivalence against the unscheduled block.
        let mut seed = cfg
            .state_seed
            .wrapping_add(insns.len() as u64)
            .wrapping_mul(0x9E37_79B9);
        for _ in 0..cfg.interp_states.max(1) {
            let init = MachineState::random(mix(&mut seed), cells.iter().copied());
            let want = run(insns, &init);
            let got = run(&emitted, &init);
            if want != got {
                return Err(Disagreement::new(
                    CheckKind::Interp,
                    format!("{kind} vs pipesim oracle"),
                    format!(
                        "reordered block diverges from program order: {}",
                        state_diff(&want, &got)
                    ),
                ));
            }
        }

        // Optimality envelope: re-time the order on the reference DAG so
        // every scheduler is measured with the same (full) arc set, then
        // compare against the proven optimum.
        if let Some(opt) = optimal {
            let retimed = Schedule::from_order(s.order.clone(), &ref_dag, insns, model);
            let mk = retimed.makespan(insns, model);
            if mk < opt {
                return Err(Disagreement::new(
                    CheckKind::Optimal,
                    format!("{kind} vs branch-and-bound"),
                    format!("schedule of makespan {mk} beats the proven optimum {opt}"),
                ));
            }
            let gap = mk - opt;
            summary.record_gap(kind, gap);
            if gap > optimal_envelope(kind) {
                return Err(Disagreement::new(
                    CheckKind::Optimal,
                    format!("{kind} vs branch-and-bound"),
                    format!(
                        "makespan {mk} exceeds optimum {opt} by {gap} (> documented envelope {})",
                        optimal_envelope(kind)
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// First differing field (and node) between the sweep-computed and the
/// reference-computed heuristic sets, or `None` when they agree.
fn heur_field_diff(sweep: &HeuristicSet, reference: &HeuristicSet) -> Option<String> {
    macro_rules! field {
        ($name:ident) => {
            if sweep.$name != reference.$name {
                return Some(
                    match sweep
                        .$name
                        .iter()
                        .zip(reference.$name.iter())
                        .position(|(a, b)| a != b)
                    {
                        Some(k) => format!(
                            "field `{}` differs at node {k}: sweep {:?}, reference {:?}",
                            stringify!($name),
                            sweep.$name[k],
                            reference.$name[k]
                        ),
                        None => format!(
                            "field `{}` lengths differ: sweep {}, reference {}",
                            stringify!($name),
                            sweep.$name.len(),
                            reference.$name.len()
                        ),
                    },
                );
            }
        };
    }
    field!(exec_time);
    field!(interlock_with_child);
    field!(num_children);
    field!(num_parents);
    field!(sum_delays_to_children);
    field!(max_delay_to_child);
    field!(sum_delays_from_parents);
    field!(max_delay_from_parent);
    field!(regs_born);
    field!(regs_killed);
    field!(liveness);
    field!(original_order);
    field!(max_path_from_root);
    field!(max_delay_from_root);
    field!(est);
    field!(max_path_to_leaf);
    field!(max_delay_to_leaf);
    field!(lst);
    field!(slack);
    field!(num_descendants);
    field!(sum_exec_descendants);
    None
}

/// First differing component of two machine states.
fn state_diff(a: &MachineState, b: &MachineState) -> String {
    for r in 0..32 {
        if a.int_regs[r] != b.int_regs[r] {
            return format!("int reg {r}: {} vs {}", a.int_regs[r], b.int_regs[r]);
        }
    }
    for r in 0..32 {
        if a.fp_regs[r].to_bits() != b.fp_regs[r].to_bits() {
            return format!("fp reg {r}: {} vs {}", a.fp_regs[r], b.fp_regs[r]);
        }
    }
    if a.icc != b.icc {
        return format!("icc: {} vs {}", a.icc, b.icc);
    }
    if a.fcc != b.fcc {
        return format!("fcc: {} vs {}", a.fcc, b.fcc);
    }
    if a.y != b.y {
        return format!("%y: {} vs {}", a.y, b.y);
    }
    "memory cells differ".to_string()
}

/// Fingerprint of a scheduled program for bit-identity comparison.
fn program_fingerprint(sp: &dagsched_driver::driver::ScheduledProgram) -> Vec<String> {
    let mut out: Vec<String> = sp.insns.iter().map(|i| i.to_string()).collect();
    for b in &sp.blocks {
        out.push(format!(
            "block {} len {} orig {} sched {}",
            b.block, b.len, b.original_makespan, b.scheduled_makespan
        ));
    }
    out
}

/// Serial vs parallel vs cached-service bit-identity, for every
/// published scheduler.
fn check_pipelines(program: &Program, _text: &str, cfg: &MatrixConfig) -> Result<(), Disagreement> {
    let model = &cfg.model;
    for &kind in SchedulerKind::ALL {
        let config = DriverConfig {
            scheduler: Scheduler::new(kind),
            ..DriverConfig::default()
        };
        let serial = schedule_program_batch(program, model, &config, 1, &Limits::none(), &NoCache)
            .map_err(|e| {
                Disagreement::new(
                    CheckKind::Pipeline,
                    format!("{kind} serial driver"),
                    format!("unexpected limit error: {e:?}"),
                )
            })?;
        let parallel =
            schedule_program_batch(program, model, &config, 4, &Limits::none(), &NoCache).map_err(
                |e| {
                    Disagreement::new(
                        CheckKind::Pipeline,
                        format!("{kind} parallel driver"),
                        format!("unexpected limit error: {e:?}"),
                    )
                },
            )?;
        let fp_serial = program_fingerprint(&serial.0);
        if fp_serial != program_fingerprint(&parallel.0) {
            return Err(Disagreement::new(
                CheckKind::Pipeline,
                format!("{kind}: serial vs --jobs 4"),
                first_line_diff(&fp_serial, &program_fingerprint(&parallel.0)),
            ));
        }
        // The service path: the batch loop with the content-addressed
        // schedule cache (exactly what `engine::execute` runs). Cold
        // fill, then a warm pass that must replay hits bit-identically.
        let cache = ScheduleCache::new(CacheConfig {
            max_entries: 256,
            ..CacheConfig::default()
        });
        let cold = schedule_program_batch(program, model, &config, 1, &Limits::none(), &cache)
            .map_err(|e| {
                Disagreement::new(
                    CheckKind::Pipeline,
                    format!("{kind} cached service path"),
                    format!("unexpected limit error: {e:?}"),
                )
            })?;
        if fp_serial != program_fingerprint(&cold.0) {
            return Err(Disagreement::new(
                CheckKind::Pipeline,
                format!("{kind}: serial vs service (cold cache)"),
                first_line_diff(&fp_serial, &program_fingerprint(&cold.0)),
            ));
        }
        let warm = schedule_program_batch(program, model, &config, 1, &Limits::none(), &cache)
            .map_err(|e| {
                Disagreement::new(
                    CheckKind::Pipeline,
                    format!("{kind} cached service path"),
                    format!("unexpected limit error: {e:?}"),
                )
            })?;
        if fp_serial != program_fingerprint(&warm.0) {
            return Err(Disagreement::new(
                CheckKind::Pipeline,
                format!("{kind}: serial vs service (warm cache)"),
                first_line_diff(&fp_serial, &program_fingerprint(&warm.0)),
            ));
        }
        if warm.1.cache_hits == 0 {
            return Err(Disagreement::new(
                CheckKind::Pipeline,
                format!("{kind}: warm cache vs cold cache"),
                "second cached pass recorded no hits — the cache key is unstable".to_string(),
            ));
        }
    }
    Ok(())
}

fn first_line_diff(a: &[String], b: &[String]) -> String {
    for (k, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        if x != y {
            return format!("line {k}: `{x}` vs `{y}`");
        }
    }
    format!("lengths differ: {} vs {}", a.len(), b.len())
}

/// Wire round-trips: JSON and binary framing for requests and the
/// response produced by actually executing one.
fn check_wire(text: &str, cfg: &MatrixConfig) -> Result<(), Disagreement> {
    let mut varied = ScheduleRequest::asm(text);
    varied.scheduler = "gm".to_string();
    varied.algo = "table-backward".to_string();
    varied.policy = "base-offset".to_string();
    varied.jobs = 3;
    varied.deadline_ms = Some(10_000);
    varied.sim = true;
    let profile_req = ScheduleRequest::profile("grep", text.len() as u64);
    for (label, req) in [
        ("default request", ScheduleRequest::asm(text)),
        ("varied request", varied),
        ("profile request", profile_req),
    ] {
        // JSON round-trip.
        let json_text = req.to_json().to_string();
        let parsed = Json::parse(&json_text).map_err(|e| {
            Disagreement::new(
                CheckKind::Wire,
                format!("{label}: writer vs parser"),
                format!("emitted JSON no longer parses: {e}"),
            )
        })?;
        let back = ScheduleRequest::from_json(&parsed).map_err(|e| {
            Disagreement::new(
                CheckKind::Wire,
                format!("{label}: to_json vs from_json"),
                format!("round-tripped request rejected: {e}"),
            )
        })?;
        if back != req {
            return Err(Disagreement::new(
                CheckKind::Wire,
                format!("{label}: to_json vs from_json"),
                format!("request changed across the round-trip:\n  sent {req:?}\n  got  {back:?}"),
            ));
        }
        // Binary frame round-trip.
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, json_text.as_bytes()).map_err(|e| {
            Disagreement::new(
                CheckKind::Wire,
                format!("{label}: write_frame"),
                e.to_string(),
            )
        })?;
        let (kind, payload) = read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME).map_err(|e| {
            Disagreement::new(
                CheckKind::Wire,
                format!("{label}: write_frame vs read_frame"),
                e.to_string(),
            )
        })?;
        if kind != FrameKind::Request || payload != json_text.as_bytes() {
            return Err(Disagreement::new(
                CheckKind::Wire,
                format!("{label}: write_frame vs read_frame"),
                "frame payload changed across the round-trip".to_string(),
            ));
        }
    }

    // A real response, from the same engine the daemon runs.
    let req = ScheduleRequest::asm(text);
    let cache = ScheduleCache::new(CacheConfig {
        max_entries: 16,
        ..CacheConfig::default()
    });
    let mut scratch = Scratch::new();
    let resp = execute(&req, &EngineLimits::default(), &cache, &mut scratch).map_err(|e| {
        Disagreement::new(
            CheckKind::Wire,
            "engine vs request",
            format!("engine rejected a parseable program: {e}"),
        )
    })?;
    let json_text = resp.to_json().to_string();
    let parsed = Json::parse(&json_text).map_err(|e| {
        Disagreement::new(
            CheckKind::Wire,
            "response writer vs parser",
            format!("emitted JSON no longer parses: {e}"),
        )
    })?;
    match ScheduleResponse::from_json(&parsed) {
        Some(back) if back == resp => {}
        Some(back) => {
            return Err(Disagreement::new(
                CheckKind::Wire,
                "response to_json vs from_json",
                format!(
                    "response changed across the round-trip:\n  sent {resp:?}\n  got  {back:?}"
                ),
            ))
        }
        None => {
            return Err(Disagreement::new(
                CheckKind::Wire,
                "response to_json vs from_json",
                "round-tripped response rejected".to_string(),
            ))
        }
    }
    let _ = cfg;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_block_passes_the_full_matrix() {
        let text = "    fdivd %f0, %f2, %f4\n    faddd %f6, %f8, %f4\n    faddd %f4, %f2, %f10\n";
        let summary = check_text(text, &MatrixConfig::default()).expect("matrix");
        assert_eq!(summary.blocks, 1);
        assert_eq!(summary.insns, 3);
        assert_eq!(summary.optimal_proven, 1);
    }

    #[test]
    fn garbage_fails_as_a_parse_disagreement() {
        let err = check_text("    not an instruction\n", &MatrixConfig::default()).unwrap_err();
        assert_eq!(err.kind, CheckKind::Parse);
    }

    #[test]
    fn multiblock_program_is_checked_blockwise() {
        let text = "    add %o0, %o1, %o2\n    cmp %o2, %o0\n    bne .L1\n    sub %o2, %o1, %o3\n    st %o3, [%fp-8]\n";
        let summary = check_text(text, &MatrixConfig::default()).expect("matrix");
        assert!(
            summary.blocks >= 2,
            "branch splits the program: {summary:?}"
        );
    }
}
