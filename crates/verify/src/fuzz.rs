//! The fuzz driver loop behind `dagsched fuzz`.
//!
//! Budgeted by wall-clock minutes and/or an iteration count, the loop
//! round-robins over every generator [`Shape`], derives a fresh
//! per-iteration seed from the master seed via SplitMix64, runs the full
//! cross-check [`matrix`](crate::matrix) on the candidate, and — on a
//! disagreement — shrinks it to a minimal reproducer and (optionally)
//! writes it into the committed corpus directory.
//!
//! The loop *continues after a failure*: one sustained run should
//! surface every distinct bug, not just the first. Failures are deduped
//! by `(check kind, pair)` so one root cause does not flood the corpus.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use crate::corpus::write_reproducer;
use crate::gen::{generate_program, Shape};
use crate::matrix::{check_text, CheckSummary, Disagreement, MatrixConfig};
use crate::shrink::shrink_text;

/// Fuzz loop configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed: the whole run is a deterministic function of it.
    pub seed: u64,
    /// Wall-clock budget in minutes (fractional allowed; `0` disables
    /// the time budget and `iters` alone bounds the run).
    pub minutes: f64,
    /// Iteration bound (`None` = run until the time budget expires).
    pub iters: Option<u64>,
    /// Where to write shrunk reproducers (`None` = report only).
    pub corpus_dir: Option<PathBuf>,
    /// Shrink failures before reporting/writing them.
    pub shrink: bool,
    /// The matrix configuration candidates are checked under.
    pub matrix: MatrixConfig,
    /// Print a progress line roughly this often (0 = quiet).
    pub progress_every: u64,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seed: 0xDA65_C4ED,
            minutes: 2.0,
            iters: None,
            corpus_dir: None,
            shrink: true,
            matrix: MatrixConfig::default(),
            progress_every: 0,
        }
    }
}

/// One recorded failure.
#[derive(Debug)]
pub struct FuzzFailure {
    /// The disagreement (from the shrunk reproducer when shrinking is on).
    pub disagreement: Disagreement,
    /// The (shrunk) program text.
    pub text: String,
    /// Generator provenance, e.g. `"fan-out seed 0x1234"`.
    pub provenance: String,
    /// Reproducer path, when a corpus directory was given.
    pub path: Option<PathBuf>,
}

/// Outcome of a fuzz run.
#[derive(Debug, Default)]
pub struct FuzzOutcome {
    /// Programs generated and checked.
    pub iterations: u64,
    /// Aggregate matrix coverage over passing programs.
    pub summary: CheckSummary,
    /// Deduplicated failures, in discovery order.
    pub failures: Vec<FuzzFailure>,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl FuzzOutcome {
    /// Whether the run completed with zero disagreements.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Run the fuzz loop. Deterministic in `cfg` up to the wall-clock
/// budget: a longer run is a superset of a shorter one with the same
/// seed (iteration seeds do not depend on elapsed time).
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzOutcome {
    let start = Instant::now();
    let deadline = if cfg.minutes > 0.0 {
        Some(start + Duration::from_secs_f64(cfg.minutes * 60.0))
    } else {
        None
    };
    let mut stream = cfg.seed;
    let mut outcome = FuzzOutcome::default();
    let mut seen_pairs: Vec<(String, String)> = Vec::new();

    loop {
        if let Some(d) = deadline {
            if Instant::now() >= d {
                break;
            }
        }
        if let Some(max) = cfg.iters {
            if outcome.iterations >= max {
                break;
            }
        }
        let iter_seed = crate::splitmix64(&mut stream);
        let shape = Shape::ALL[(outcome.iterations % Shape::ALL.len() as u64) as usize];
        let text = generate_program(shape, iter_seed);
        outcome.iterations += 1;
        match check_text(&text, &cfg.matrix) {
            Ok(summary) => outcome.summary.absorb(&summary),
            Err(first) => {
                let provenance = format!("{} seed {iter_seed:#x}", shape.name());
                let (min_text, disagreement) = if cfg.shrink {
                    let min = shrink_text(&text, first.kind, &cfg.matrix);
                    // Re-run to get the diagnosis of the *shrunk* program.
                    let d = match check_text(&min, &cfg.matrix) {
                        Err(d) => d,
                        Ok(_) => first.clone(),
                    };
                    (min, d)
                } else {
                    (text.clone(), first)
                };
                let key = (
                    disagreement.kind.name().to_string(),
                    disagreement.pair.clone(),
                );
                let fresh = !seen_pairs.contains(&key);
                if fresh {
                    seen_pairs.push(key);
                    let path = cfg.corpus_dir.as_ref().and_then(|dir| {
                        write_reproducer(
                            dir,
                            disagreement.kind,
                            &disagreement.pair,
                            &disagreement.detail,
                            &provenance,
                            &min_text,
                        )
                        .ok()
                    });
                    outcome.failures.push(FuzzFailure {
                        disagreement,
                        text: min_text,
                        provenance,
                        path,
                    });
                }
            }
        }
        if cfg.progress_every > 0 && outcome.iterations % cfg.progress_every == 0 {
            eprintln!(
                "fuzz: {} programs, {} blocks, {} optima proven, {} failure(s), {:.1}s",
                outcome.iterations,
                outcome.summary.blocks,
                outcome.summary.optimal_proven,
                outcome.failures.len(),
                start.elapsed().as_secs_f64()
            );
        }
    }
    outcome.elapsed = start.elapsed();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "manual triage tool: dumps a specific iteration of a seed stream"]
    fn dump_iteration() {
        let master: u64 = std::env::var("HUNT_SEED")
            .ok()
            .and_then(|s| u64::from_str_radix(s.trim_start_matches("0x"), 16).ok())
            .unwrap_or(0xBEEF);
        let target: u64 = std::env::var("HUNT_ITER")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(6301);
        let mut stream = master;
        for i in 0u64..=target {
            let iter_seed = crate::splitmix64(&mut stream);
            if i == target {
                let shape = Shape::ALL[(i % Shape::ALL.len() as u64) as usize];
                let text = generate_program(shape, iter_seed);
                eprintln!(
                    "iter {i}: {} seed {iter_seed:#x}, {} lines",
                    shape.name(),
                    text.lines().count()
                );
                std::fs::write("/tmp/slow.s", &text).unwrap();
            }
        }
    }

    #[test]
    fn a_bounded_run_is_clean_and_deterministic() {
        let cfg = FuzzConfig {
            seed: 7,
            minutes: 0.0,
            iters: Some(14),
            shrink: false,
            ..FuzzConfig::default()
        };
        let a = run_fuzz(&cfg);
        let b = run_fuzz(&cfg);
        assert_eq!(a.iterations, 14);
        assert!(a.is_clean(), "{:?}", a.failures);
        assert_eq!(a.summary.blocks, b.summary.blocks);
        assert_eq!(a.summary.insns, b.summary.insns);
    }
}
