//! # dagsched-verify
//!
//! A differential correctness harness for the whole workspace. PRs 1–2
//! grew three independent ways to produce a schedule (serial driver,
//! parallel driver, cached service) on top of three DAG construction
//! families and six published schedulers; the paper's central claim is
//! that the cheap table-building constructors and heuristic passes are
//! *equivalent in result* to the expensive compare-against-all baseline.
//! This crate enforces that equivalence mechanically:
//!
//! * [`gen`] — a seeded, structure-diverse random block generator
//!   (layered / fan-in / fan-out / memory-heavy / carry / delay-slot
//!   shapes, plus mutation of workload-profile corpus blocks including
//!   the fpppp large-block profile).
//! * [`matrix`] — the N-way cross-check matrix run on every candidate:
//!   constructor closure equivalence, timing preservation, schedule
//!   dependence validity, `pipesim` interpreter-state equivalence
//!   against the unscheduled block, serial / parallel / cached-service
//!   bit-identity, optimality envelopes on small blocks, and wire
//!   round-trips.
//! * [`shrink`] — a ddmin-style line minimizer that reduces a failing
//!   program to a minimal reproducer that still fails the *same* check.
//! * [`corpus`] — writes shrunk reproducers into a committed
//!   `tests/corpus/` directory and replays them.
//! * [`fuzz`] — the seed/minutes-budgeted driver loop behind
//!   `dagsched fuzz`.
//!
//! Every candidate is canonicalized through the assembly printer and
//! parser before checking, so a reproducer written to disk is byte-for-
//! byte the program the matrix actually saw.

pub mod corpus;
pub mod fuzz;
pub mod gen;
pub mod matrix;
pub mod shrink;
pub mod validity;

pub use corpus::{replay_dir, write_reproducer, ReplayFailure};
pub use fuzz::{run_fuzz, FuzzConfig, FuzzOutcome};
pub use gen::{generate_program, mutate_program, Shape};
pub use matrix::{check_text, CheckKind, CheckSummary, Disagreement, MatrixConfig};
pub use shrink::shrink_text;
pub use validity::{check_reordering, check_reordering_text};

/// SplitMix64: the stream splitter used to derive per-iteration seeds
/// from the master fuzz seed (same finalizer as `SeedableRng::seed_from_u64`).
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}
