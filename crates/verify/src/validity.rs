//! Standalone schedule-validity oracle for reordered programs.
//!
//! The matrix ([`crate::matrix`]) verifies schedules it *built itself*
//! against the DAG it built them from. Chaos testing needs something
//! weaker-coupled: the load generator receives an instruction stream
//! over the wire — possibly produced on a *degraded* rung of the cost
//! ladder — and must decide whether it is still a correct schedule
//! without re-deriving the server's exact configuration. This module
//! answers that with two policy-independent checks per basic block:
//!
//! 1. **Permutation**: the scheduled block contains exactly the
//!    original instructions (as a multiset) — nothing dropped,
//!    duplicated, or invented.
//! 2. **Semantic equivalence**: running both orders through the
//!    `pipesim` interpreter from the same pseudo-random machine states
//!    produces identical final states. A reorder that violates any
//!    true dependence diverges on almost every random state, so this
//!    is a strong oracle that needs no DAG and no knowledge of which
//!    memory-disambiguation policy or heuristic rung produced the
//!    schedule.

use dagsched_isa::{Instruction, MemExprId, Program};
use dagsched_pipesim::interp::{run, MachineState};
use dagsched_workloads::parse_asm;

/// Memory cells a block touches (initialized in every random state).
fn block_cells(insns: &[Instruction]) -> Vec<MemExprId> {
    let mut cells = Vec::new();
    for insn in insns {
        if let Some(m) = &insn.mem {
            if !cells.contains(&m.expr) {
                cells.push(m.expr);
            }
        }
    }
    cells
}

/// SplitMix64 step for deriving per-state seeds.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Check that `scheduled` is a valid per-block reordering of
/// `original`: same blocks, same instructions per block, identical
/// interpreter semantics on `states` random machine states per block.
///
/// Returns the first violation as a human-readable message.
pub fn check_reordering(
    original: &Program,
    scheduled: &Program,
    states: usize,
    seed: u64,
) -> Result<(), String> {
    if original.insns.len() != scheduled.insns.len() {
        return Err(format!(
            "instruction count changed: {} original vs {} scheduled",
            original.insns.len(),
            scheduled.insns.len()
        ));
    }
    let orig_blocks = original.basic_blocks();
    let sched_blocks = scheduled.basic_blocks();
    if orig_blocks.len() != sched_blocks.len() {
        return Err(format!(
            "block count changed: {} original vs {} scheduled",
            orig_blocks.len(),
            sched_blocks.len()
        ));
    }
    for (i, (ob, sb)) in orig_blocks.iter().zip(&sched_blocks).enumerate() {
        let oi = original.block_insns(ob);
        let si = scheduled.block_insns(sb);
        if oi.len() != si.len() {
            return Err(format!(
                "block {i}: length changed from {} to {}",
                oi.len(),
                si.len()
            ));
        }
        // Multiset equality via sorted rendered text.
        let mut a: Vec<String> = oi.iter().map(ToString::to_string).collect();
        let mut b: Vec<String> = si.iter().map(ToString::to_string).collect();
        a.sort();
        b.sort();
        if a != b {
            return Err(format!(
                "block {i}: scheduled block is not a permutation of the original"
            ));
        }
        // Interpreter-state equivalence. `MemExprId`s are interned per
        // parse, so the two programs' ids are not comparable directly;
        // re-parse both orders as ONE program so they share an intern
        // table, then run each half from the same initial states.
        let render = |insns: &[Instruction]| -> String {
            insns
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        };
        let pair_text = format!("{}\n{}", render(oi), render(si));
        let pair = parse_asm(&pair_text)
            .map_err(|e| format!("block {i}: combined reparse failed: {e}"))?;
        if pair.insns.len() != oi.len() * 2 {
            return Err(format!(
                "block {i}: combined reparse count mismatch ({} vs {})",
                pair.insns.len(),
                oi.len() * 2
            ));
        }
        let (ci, cs) = pair.insns.split_at(oi.len());
        let cells = block_cells(ci);
        let mut s = seed ^ (i as u64).wrapping_mul(0x9E37_79B9);
        for k in 0..states.max(1) {
            let init = MachineState::random(mix(&mut s), cells.iter().copied());
            let want = run(ci, &init);
            let got = run(cs, &init);
            if want != got {
                return Err(format!(
                    "block {i}: reordered block diverges from program order on random state {k}"
                ));
            }
        }
    }
    Ok(())
}

/// [`check_reordering`] over assembly text (e.g. a wire response's
/// rendered instruction stream joined with newlines).
pub fn check_reordering_text(
    original: &str,
    scheduled: &str,
    states: usize,
    seed: u64,
) -> Result<(), String> {
    let orig = parse_asm(original).map_err(|e| format!("original does not parse: {e}"))?;
    let sched = parse_asm(scheduled).map_err(|e| format!("scheduled does not parse: {e}"))?;
    check_reordering(&orig, &sched, states, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_driver::{schedule_program, DriverConfig};
    use dagsched_isa::MachineModel;
    use dagsched_workloads::{generate, BenchmarkProfile};

    #[test]
    fn identity_reordering_passes() {
        let text = "ld [%o0], %l0\n add %l0, %o1, %o2\n xor %o3, %o4, %o5";
        assert_eq!(check_reordering_text(text, text, 4, 1), Ok(()));
    }

    #[test]
    fn a_real_schedule_passes() {
        let bench = generate(BenchmarkProfile::by_name("grep").unwrap(), 1991);
        let model = MachineModel::sparc2();
        let scheduled = schedule_program(&bench.program, &model, &DriverConfig::default());
        let original: String = bench
            .program
            .insns
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n");
        let sched_text: String = scheduled
            .insns
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n");
        assert_eq!(check_reordering_text(&original, &sched_text, 3, 7), Ok(()));
    }

    #[test]
    fn a_dependence_violating_swap_is_caught() {
        // `add` consumes %l0 produced by the load: swapping them reads
        // a stale register and the interpreter oracle diverges.
        let original = "ld [%o0], %l0\n add %l0, %o1, %o2";
        let swapped = "add %l0, %o1, %o2\n ld [%o0], %l0";
        let err = check_reordering_text(original, swapped, 4, 1).unwrap_err();
        assert!(err.contains("diverges"), "{err}");
    }

    #[test]
    fn dropped_and_invented_instructions_are_caught() {
        let original = "sub %o0, %o1, %o2\n xor %o3, %o4, %o5";
        let dropped = "sub %o0, %o1, %o2";
        let err = check_reordering_text(original, dropped, 1, 1).unwrap_err();
        assert!(err.contains("count changed"), "{err}");
        let swapped_in = "sub %o0, %o1, %o2\n and %o3, %o4, %o5";
        let err = check_reordering_text(original, swapped_in, 1, 1).unwrap_err();
        assert!(err.contains("not a permutation"), "{err}");
    }
}
