//! The committed regression corpus.
//!
//! Every bug the fuzzer finds is landed with its shrunk reproducer as a
//! `tests/corpus/*.s` file. The file is plain assembly with a
//! `!`-comment header (the parser skips comments), so a reproducer is
//! replayable both by the corpus test and by hand:
//!
//! ```text
//! dagsched diff tests/corpus/interp-001a2b3c.s
//! ```
//!
//! Header fields: `check:` (the [`CheckKind`] the file originally
//! failed), `pair:` (the disagreeing pipeline pair), `detail:` (the
//! diagnosis at discovery time), `seed:`/`shape:` (provenance). Replay
//! ignores everything but the assembly — the whole matrix is re-run, so
//! a reproducer keeps protecting against *any* regression it can reach.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::matrix::{check_text, CheckKind, Disagreement, MatrixConfig};

/// A replayed corpus file that failed the matrix.
#[derive(Debug)]
pub struct ReplayFailure {
    /// The reproducer path.
    pub path: PathBuf,
    /// The assembly text it contains (for the failure report).
    pub text: String,
    /// The disagreement the matrix found.
    pub disagreement: Disagreement,
}

/// FNV-1a over the reproducer text, for stable file names.
fn text_hash(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Write a shrunk reproducer into `dir`, named
/// `<check>-<texthash>.s`. Returns the path (existing identical
/// reproducers are overwritten idempotently).
pub fn write_reproducer(
    dir: &Path,
    kind: CheckKind,
    pair: &str,
    detail: &str,
    provenance: &str,
    text: &str,
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}-{:08x}.s", kind.name(), text_hash(text) as u32));
    let mut out = String::new();
    out.push_str("! dagsched-verify reproducer (shrunk)\n");
    out.push_str(&format!("! check: {}\n", kind.name()));
    out.push_str(&format!("! pair: {pair}\n"));
    for line in detail.lines() {
        out.push_str(&format!("! detail: {line}\n"));
    }
    out.push_str(&format!("! found-by: {provenance}\n"));
    out.push_str(text);
    if !text.ends_with('\n') {
        out.push('\n');
    }
    fs::write(&path, out)?;
    Ok(path)
}

/// The `check:` header of a reproducer file, when present.
pub fn reproducer_kind(text: &str) -> Option<CheckKind> {
    for line in text.lines() {
        if let Some(rest) = line.trim().strip_prefix("! check:") {
            return CheckKind::from_name(rest.trim());
        }
    }
    None
}

/// Replay every `*.s` file in `dir` through the full matrix. Returns
/// the failures (an empty vector means the corpus is green). A missing
/// directory replays as empty — the corpus starts life with no entries.
pub fn replay_dir(dir: &Path, cfg: &MatrixConfig) -> io::Result<Vec<ReplayFailure>> {
    let mut failures = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(failures),
        Err(e) => return Err(e),
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "s"))
        .collect();
    paths.sort();
    for path in paths {
        let text = fs::read_to_string(&path)?;
        if let Err(disagreement) = check_text(&text, cfg) {
            failures.push(ReplayFailure {
                path,
                text,
                disagreement,
            });
        }
    }
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_replay_roundtrips() {
        let dir = std::env::temp_dir().join(format!("dagsched-corpus-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        // A healthy block: replay must be green.
        let good = "    add %o0, %o1, %o2\n";
        let p = write_reproducer(
            &dir,
            CheckKind::Interp,
            "example vs example",
            "written by a unit test",
            "unit-test",
            good,
        )
        .expect("write");
        let on_disk = fs::read_to_string(&p).expect("read");
        assert_eq!(reproducer_kind(&on_disk), Some(CheckKind::Interp));
        let failures = replay_dir(&dir, &MatrixConfig::default()).expect("replay");
        assert!(failures.is_empty(), "{failures:?}");
        // An unparseable file must be reported with its path.
        fs::write(dir.join("parse-zz.s"), "! check: parse\n    junk here\n").unwrap();
        let failures = replay_dir(&dir, &MatrixConfig::default()).expect("replay");
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].disagreement.kind, CheckKind::Parse);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_an_empty_corpus() {
        let dir = Path::new("/nonexistent/dagsched-corpus");
        let failures = replay_dir(dir, &MatrixConfig::default()).expect("replay");
        assert!(failures.is_empty());
    }
}
