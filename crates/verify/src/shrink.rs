//! Reproducer minimization.
//!
//! A ddmin-style delta debugger over assembly *lines*: repeatedly try
//! removing chunks of the program (halves, quarters, …, single lines)
//! and keep any removal after which the matrix still fails with the
//! *same* [`CheckKind`]. Pinning the kind prevents the classic shrinking
//! failure mode where the reproducer morphs into a different (usually
//! shallower) bug along the way.
//!
//! Minimization is bounded by an evaluation budget: each candidate costs
//! a full matrix run, and a pathological input could otherwise stall the
//! fuzz loop.

use crate::matrix::{check_text, CheckKind, MatrixConfig};

/// Upper bound on matrix evaluations per shrink.
const MAX_EVALS: usize = 1500;

/// Does `text` still fail with `kind`?
fn still_fails(text: &str, kind: CheckKind, cfg: &MatrixConfig, evals: &mut usize) -> bool {
    *evals += 1;
    matches!(check_text(text, cfg), Err(d) if d.kind == kind)
}

fn join(lines: &[String]) -> String {
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

/// Minimize `text` so it still fails the matrix with `kind`.
///
/// Returns the smallest failing variant found (at worst, `text` itself,
/// normalized to non-empty lines). Deterministic: the same input always
/// shrinks to the same reproducer.
pub fn shrink_text(text: &str, kind: CheckKind, cfg: &MatrixConfig) -> String {
    let mut lines: Vec<String> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.to_string())
        .collect();
    let mut evals = 0usize;
    if lines.is_empty() || !still_fails(&join(&lines), kind, cfg, &mut evals) {
        // The normalized text no longer fails (or there is nothing to
        // shrink); keep the original bytes as the reproducer.
        return text.to_string();
    }

    // Phase 1: ddmin chunk removal. Start with big chunks and refine.
    let mut chunk = lines.len().div_ceil(2).max(1);
    while chunk >= 1 && evals < MAX_EVALS {
        let mut removed_any = false;
        let mut start = 0usize;
        while start < lines.len() && evals < MAX_EVALS {
            if lines.len() <= 1 {
                break;
            }
            let end = (start + chunk).min(lines.len());
            let mut candidate = lines.clone();
            candidate.drain(start..end);
            if !candidate.is_empty() && still_fails(&join(&candidate), kind, cfg, &mut evals) {
                lines = candidate;
                removed_any = true;
                // Do not advance: the next chunk slid into `start`.
            } else {
                start += chunk;
            }
        }
        if chunk == 1 && !removed_any {
            break;
        }
        if !removed_any {
            chunk /= 2;
        }
        // After a successful pass at this granularity, retry the same
        // size first — removals often unlock each other.
    }
    join(&lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrink_reduces_a_parse_failure_to_one_line() {
        let text = "    add %o0, %o1, %o2\n    sub %o2, %o1, %o3\n    bogus_opcode %o0\n    xor %o0, %o1, %o2\n";
        let cfg = MatrixConfig::default();
        let min = shrink_text(text, CheckKind::Parse, &cfg);
        assert_eq!(min.trim(), "bogus_opcode %o0");
    }

    #[test]
    fn shrink_keeps_text_that_does_not_fail() {
        let text = "    add %o0, %o1, %o2\n";
        let cfg = MatrixConfig::default();
        assert_eq!(shrink_text(text, CheckKind::Parse, &cfg), text);
    }
}
