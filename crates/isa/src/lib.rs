//! SPARC-like instruction set and machine timing model.
//!
//! This crate is the *machine substrate* for the `dagsched` workspace, a
//! reproduction of Smotherman, Krishnamurthy, Aravind and Hunnicutt,
//! *"Efficient DAG Construction and Heuristic Calculation for Instruction
//! Scheduling"* (MICRO-24, 1991). The paper measures DAG construction and
//! list scheduling over SPARC assembly produced by late-1980s compilers;
//! this crate models the relevant slice of that world:
//!
//! * [`Reg`] / [`Resource`] — architectural resources on which data
//!   dependencies (RAW / WAR / WAW) are computed: integer and floating
//!   point registers, condition codes, the `%y` register, and interned
//!   symbolic memory expressions ([`MemExprPool`]).
//! * [`Opcode`] / [`Instruction`] — a SPARC-flavoured operation set with
//!   enough structure for dependence analysis: definitions and uses,
//!   double-word register pairs, condition-code effects, delay slots.
//! * [`MachineModel`] — the timing rules used to weight DAG arcs: per-opcode
//!   result latencies, short WAR delays, asymmetric bypass adjustments
//!   (IBM RS/6000-style second-operand penalties, store forwarding
//!   discounts, double-word load pair skew) and the function-unit pool used
//!   for structural hazards.
//! * [`Program`] / [`BasicBlock`] — basic-block partitioning with the
//!   paper's counting conventions (delay slot instructions belong to the
//!   *following* block; calls and register-window instructions end blocks).
//!
//! # Example
//!
//! ```
//! use dagsched_isa::{Instruction, MachineModel, Opcode, Program, Reg};
//!
//! let mut prog = Program::new();
//! prog.push(Instruction::fp3(Opcode::FDivD, Reg::f(0), Reg::f(2), Reg::f(4)));
//! prog.push(Instruction::fp3(Opcode::FAddD, Reg::f(6), Reg::f(8), Reg::f(0)));
//! let model = MachineModel::sparc2();
//! assert_eq!(model.exec_latency(&prog.insns[0]), 20);
//! let blocks = prog.basic_blocks();
//! assert_eq!(blocks.len(), 1);
//! ```

mod block;
mod fingerprint;
mod insn;
mod machine;
mod memexpr;
mod opcode;
mod reg;

pub use block::{BasicBlock, Program};
pub use fingerprint::{fnv64, Fnv64};
pub use insn::{Instruction, MemRef};
pub use machine::{DepKind, FuncUnit, MachineModel, UnitDesc};
pub use memexpr::{MemExprId, MemExprPool};
pub use opcode::{InsnClass, MemAccessKind, Opcode};
pub use reg::{Reg, RegClass, Resource};
