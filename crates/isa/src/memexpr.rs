//! Interned symbolic memory address expressions.
//!
//! The paper characterizes benchmarks by the number of *unique memory
//! expressions* per basic block (Table 3) and notes that its DAG
//! construction implementation grows a variable-length resource map as new
//! expressions are encountered. We reproduce that structure: each distinct
//! symbolic address text (`[%fp-8]`, `[%o0+%o1]`, a synthetic generator
//! token, …) is interned once per [`MemExprPool`] and identified by a
//! [`MemExprId`].

use std::collections::HashMap;
use std::fmt;

/// Identifier of an interned symbolic memory address expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemExprId(u32);

impl MemExprId {
    /// Construct from a raw pool index.
    pub fn from_index(ix: u32) -> MemExprId {
        MemExprId(ix)
    }

    /// The raw pool index.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for MemExprId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mexpr#{}", self.0)
    }
}

/// A pool of interned symbolic memory address expressions.
///
/// ```
/// use dagsched_isa::MemExprPool;
/// let mut pool = MemExprPool::new();
/// let a = pool.intern("[%fp-8]");
/// let b = pool.intern("[%fp-12]");
/// assert_ne!(a, b);
/// assert_eq!(pool.intern("[%fp-8]"), a);
/// assert_eq!(pool.text(a), "[%fp-8]");
/// assert_eq!(pool.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemExprPool {
    texts: Vec<String>,
    index: HashMap<String, MemExprId>,
}

impl MemExprPool {
    /// An empty pool.
    pub fn new() -> MemExprPool {
        MemExprPool::default()
    }

    /// Intern `text`, returning the existing id if already present.
    pub fn intern(&mut self, text: &str) -> MemExprId {
        if let Some(&id) = self.index.get(text) {
            return id;
        }
        let id = MemExprId(self.texts.len() as u32);
        self.texts.push(text.to_owned());
        self.index.insert(text.to_owned(), id);
        id
    }

    /// Look up an expression without interning it.
    pub fn get(&self, text: &str) -> Option<MemExprId> {
        self.index.get(text).copied()
    }

    /// The text of an interned expression.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this pool.
    pub fn text(&self, id: MemExprId) -> &str {
        &self.texts[id.0 as usize]
    }

    /// Number of distinct expressions interned so far.
    pub fn len(&self) -> usize {
        self.texts.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.texts.is_empty()
    }

    /// Iterate over `(id, text)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (MemExprId, &str)> {
        self.texts
            .iter()
            .enumerate()
            .map(|(i, t)| (MemExprId(i as u32), t.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut pool = MemExprPool::new();
        let a = pool.intern("x");
        let a2 = pool.intern("x");
        assert_eq!(a, a2);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn ids_are_dense_in_order() {
        let mut pool = MemExprPool::new();
        for i in 0..10 {
            let id = pool.intern(&format!("e{i}"));
            assert_eq!(id.index(), i);
        }
        let collected: Vec<_> = pool.iter().map(|(id, _)| id.index()).collect();
        assert_eq!(collected, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn get_does_not_intern() {
        let mut pool = MemExprPool::new();
        assert_eq!(pool.get("y"), None);
        let id = pool.intern("y");
        assert_eq!(pool.get("y"), Some(id));
        assert_eq!(pool.len(), 1);
    }
}
