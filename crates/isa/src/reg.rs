//! Architectural registers and schedulable resources.

use std::fmt;

use crate::memexpr::MemExprId;

/// An architectural register of the modelled SPARC-like machine.
///
/// Integer registers are numbered 0–31 and displayed with the SPARC window
/// naming convention (`%g0`–`%g7`, `%o0`–`%o7`, `%l0`–`%l7`, `%i0`–`%i7`).
/// Floating point registers are `%f0`–`%f31`. The integer and floating
/// point condition codes and the `%y` multiply/divide register are modelled
/// as dedicated resources so that compare/branch and `mul`/`div` chains are
/// properly serialized.
///
/// ```
/// use dagsched_isa::Reg;
/// assert_eq!(Reg::int(9).to_string(), "%o1");
/// assert_eq!(Reg::f(2).to_string(), "%f2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Reg {
    /// Integer register `0..32` (`%g`, `%o`, `%l`, `%i` banks).
    Int(u8),
    /// Floating point register `0..32`.
    Fp(u8),
    /// Integer condition codes (set by `subcc`/`addcc`, read by `bicc`).
    Icc,
    /// Floating point condition codes (set by `fcmp*`, read by `fbcc`).
    Fcc,
    /// The `%y` register used by integer multiply/divide.
    Y,
}

impl Reg {
    /// Integer register `n` (0–31).
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub fn int(n: u8) -> Reg {
        assert!(n < 32, "integer register out of range: {n}");
        Reg::Int(n)
    }

    /// Floating point register `n` (0–31).
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub fn f(n: u8) -> Reg {
        assert!(n < 32, "fp register out of range: {n}");
        Reg::Fp(n)
    }

    /// Global integer register `%gN`.
    pub fn g(n: u8) -> Reg {
        assert!(n < 8);
        Reg::Int(n)
    }

    /// Output integer register `%oN`.
    pub fn o(n: u8) -> Reg {
        assert!(n < 8);
        Reg::Int(8 + n)
    }

    /// Local integer register `%lN`.
    pub fn l(n: u8) -> Reg {
        assert!(n < 8);
        Reg::Int(16 + n)
    }

    /// Input integer register `%iN`.
    pub fn i(n: u8) -> Reg {
        assert!(n < 8);
        Reg::Int(24 + n)
    }

    /// The frame pointer `%fp` (alias of `%i6`).
    pub fn fp() -> Reg {
        Reg::Int(30)
    }

    /// The stack pointer `%sp` (alias of `%o6`).
    pub fn sp() -> Reg {
        Reg::Int(14)
    }

    /// The register class this register belongs to.
    pub fn class(&self) -> RegClass {
        match self {
            Reg::Int(_) => RegClass::Int,
            Reg::Fp(_) => RegClass::Fp,
            Reg::Icc | Reg::Fcc => RegClass::CondCode,
            Reg::Y => RegClass::Special,
        }
    }

    /// Whether writes to this register create a value (`%g0` is hardwired
    /// to zero on SPARC, so defining it is a no-op and births no register).
    pub fn is_writable(&self) -> bool {
        !matches!(self, Reg::Int(0))
    }

    /// The next consecutive register of the same bank, used for double-word
    /// register pairs (`ldd`/`std`/`lddf`). Returns `None` at bank ends or
    /// for non-numbered registers.
    pub fn pair_partner(&self) -> Option<Reg> {
        match *self {
            Reg::Int(n) if n + 1 < 32 => Some(Reg::Int(n + 1)),
            Reg::Fp(n) if n + 1 < 32 => Some(Reg::Fp(n + 1)),
            _ => None,
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Reg::Int(n) => {
                let (bank, idx) = match n {
                    0..=7 => ('g', n),
                    8..=15 => ('o', n - 8),
                    16..=23 => ('l', n - 16),
                    _ => ('i', n - 24),
                };
                write!(f, "%{bank}{idx}")
            }
            Reg::Fp(n) => write!(f, "%f{n}"),
            Reg::Icc => write!(f, "%icc"),
            Reg::Fcc => write!(f, "%fcc"),
            Reg::Y => write!(f, "%y"),
        }
    }
}

/// Broad register classes, used by register-pressure heuristics and by the
/// workload generator's operand selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegClass {
    /// General purpose integer registers.
    Int,
    /// Floating point registers.
    Fp,
    /// Condition code registers.
    CondCode,
    /// Special registers (`%y`).
    Special,
}

/// A schedulable resource: the unit on which RAW/WAR/WAW dependencies are
/// computed during DAG construction.
///
/// Memory is represented by interned symbolic address expressions
/// ([`MemExprId`]), matching the paper's Table 3 statistic "unique memory
/// expressions". How expressions are mapped to dependence-relevant
/// resources (one resource per expression, a single serialized memory
/// resource, base+offset disambiguation, …) is a *policy* decision made by
/// the DAG construction crate; `Resource::MemAll` exists so that the
/// fully-serialized policy can be expressed in resource terms too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Resource {
    /// An architectural register.
    Reg(Reg),
    /// One interned symbolic memory expression.
    Mem(MemExprId),
    /// All of memory as a single resource (strict load/store serialization).
    MemAll,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Reg(r) => write!(f, "{r}"),
            Resource::Mem(id) => write!(f, "[mem#{}]", id.index()),
            Resource::MemAll => write!(f, "[mem]"),
        }
    }
}

impl From<Reg> for Resource {
    fn from(r: Reg) -> Resource {
        Resource::Reg(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_window_banks() {
        assert_eq!(Reg::int(0).to_string(), "%g0");
        assert_eq!(Reg::int(8).to_string(), "%o0");
        assert_eq!(Reg::int(17).to_string(), "%l1");
        assert_eq!(Reg::int(31).to_string(), "%i7");
        assert_eq!(Reg::Y.to_string(), "%y");
    }

    #[test]
    fn bank_constructors_agree_with_flat_numbering() {
        assert_eq!(Reg::g(3), Reg::int(3));
        assert_eq!(Reg::o(3), Reg::int(11));
        assert_eq!(Reg::l(3), Reg::int(19));
        assert_eq!(Reg::i(3), Reg::int(27));
        assert_eq!(Reg::fp(), Reg::i(6));
        assert_eq!(Reg::sp(), Reg::o(6));
    }

    #[test]
    fn g0_is_not_writable() {
        assert!(!Reg::int(0).is_writable());
        assert!(Reg::int(1).is_writable());
        assert!(Reg::f(0).is_writable());
    }

    #[test]
    fn pair_partner_is_next_register() {
        assert_eq!(Reg::f(0).pair_partner(), Some(Reg::f(1)));
        assert_eq!(Reg::int(5).pair_partner(), Some(Reg::int(6)));
        assert_eq!(Reg::f(31).pair_partner(), None);
        assert_eq!(Reg::Icc.pair_partner(), None);
    }

    #[test]
    fn classes() {
        assert_eq!(Reg::int(4).class(), RegClass::Int);
        assert_eq!(Reg::f(4).class(), RegClass::Fp);
        assert_eq!(Reg::Icc.class(), RegClass::CondCode);
        assert_eq!(Reg::Fcc.class(), RegClass::CondCode);
        assert_eq!(Reg::Y.class(), RegClass::Special);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_register_bounds_checked() {
        let _ = Reg::int(32);
    }
}
