//! Instructions: operands, definitions and uses.

use std::fmt;

use crate::memexpr::MemExprId;
use crate::opcode::{InsnClass, MemAccessKind, Opcode};
use crate::reg::{Reg, Resource};

/// A memory operand: `[base + index + offset]`, plus the interned symbolic
/// address expression used for dependence analysis and the paper's "unique
/// memory expressions" statistic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Base address register.
    pub base: Reg,
    /// Optional index register.
    pub index: Option<Reg>,
    /// Constant displacement.
    pub offset: i32,
    /// Interned symbolic address expression.
    pub expr: MemExprId,
}

impl MemRef {
    /// A `[base + offset]` reference.
    pub fn base_offset(base: Reg, offset: i32, expr: MemExprId) -> MemRef {
        MemRef {
            base,
            index: None,
            offset,
            expr,
        }
    }

    /// A `[base + index]` reference.
    pub fn base_index(base: Reg, index: Reg, expr: MemExprId) -> MemRef {
        MemRef {
            base,
            index: Some(index),
            offset: 0,
            expr,
        }
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}", self.base)?;
        if let Some(ix) = self.index {
            write!(f, "+{ix}")?;
        }
        if self.offset != 0 {
            write!(f, "{:+}", self.offset)?;
        }
        write!(f, "]")
    }
}

/// One machine instruction.
///
/// An instruction is an [`Opcode`] plus operands. Definitions and uses —
/// the inputs to DAG construction — are derived from the opcode's static
/// properties and the operands by [`Instruction::defs`] and
/// [`Instruction::uses`].
///
/// ```
/// use dagsched_isa::{Instruction, Opcode, Reg, Resource};
/// // %f6 = %f8 + %f0
/// let add = Instruction::fp3(Opcode::FAddD, Reg::f(8), Reg::f(0), Reg::f(6));
/// assert_eq!(add.defs(), vec![Resource::Reg(Reg::f(6))]);
/// assert!(add.uses().contains(&Resource::Reg(Reg::f(0))));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// The operation.
    pub opcode: Opcode,
    /// Destination register, if any.
    pub rd: Option<Reg>,
    /// Register source operands, in operand order.
    pub rs: Vec<Reg>,
    /// Memory operand for loads and stores.
    pub mem: Option<MemRef>,
    /// Immediate operand, if any.
    pub imm: Option<i64>,
    /// Index of this instruction in the original program order. Assigned by
    /// [`Program::push`](crate::Program::push); used by the "original
    /// order" tie-break heuristic and by delay-slot bookkeeping.
    pub orig_index: u32,
}

impl Instruction {
    /// A bare instruction with no operands.
    pub fn new(opcode: Opcode) -> Instruction {
        Instruction {
            opcode,
            rd: None,
            rs: Vec::new(),
            mem: None,
            imm: None,
            orig_index: u32::MAX,
        }
    }

    /// Three-address integer operation `rd = rs1 op rs2`.
    pub fn int3(opcode: Opcode, rs1: Reg, rs2: Reg, rd: Reg) -> Instruction {
        debug_assert!(matches!(
            opcode.class(),
            InsnClass::IntAlu | InsnClass::IntMulDiv
        ));
        Instruction {
            rd: Some(rd),
            rs: vec![rs1, rs2],
            ..Instruction::new(opcode)
        }
    }

    /// Integer operation with immediate: `rd = rs1 op imm`.
    pub fn int_imm(opcode: Opcode, rs1: Reg, imm: i64, rd: Reg) -> Instruction {
        Instruction {
            rd: Some(rd),
            rs: vec![rs1],
            imm: Some(imm),
            ..Instruction::new(opcode)
        }
    }

    /// Three-address floating point operation `rd = rs1 op rs2`.
    pub fn fp3(opcode: Opcode, rs1: Reg, rs2: Reg, rd: Reg) -> Instruction {
        Instruction {
            rd: Some(rd),
            rs: vec![rs1, rs2],
            ..Instruction::new(opcode)
        }
    }

    /// Two-address floating point operation `rd = op rs` (moves,
    /// conversions, square root).
    pub fn fp2(opcode: Opcode, rs: Reg, rd: Reg) -> Instruction {
        Instruction {
            rd: Some(rd),
            rs: vec![rs],
            ..Instruction::new(opcode)
        }
    }

    /// Floating point compare (defines the FP condition codes only).
    pub fn fcmp(opcode: Opcode, rs1: Reg, rs2: Reg) -> Instruction {
        debug_assert!(opcode.sets_fcc());
        Instruction {
            rs: vec![rs1, rs2],
            ..Instruction::new(opcode)
        }
    }

    /// Integer compare `cmp rs1, rs2` (a `subcc` discarding its result).
    pub fn cmp(rs1: Reg, rs2: Reg) -> Instruction {
        Instruction {
            rs: vec![rs1, rs2],
            ..Instruction::new(Opcode::SubCc)
        }
    }

    /// Load `rd = [mem]`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `opcode` is not a load.
    pub fn load(opcode: Opcode, mem: MemRef, rd: Reg) -> Instruction {
        debug_assert_eq!(opcode.mem_access(), Some(MemAccessKind::Load));
        Instruction {
            rd: Some(rd),
            mem: Some(mem),
            ..Instruction::new(opcode)
        }
    }

    /// Store `[mem] = src`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `opcode` is not a store.
    pub fn store(opcode: Opcode, src: Reg, mem: MemRef) -> Instruction {
        debug_assert_eq!(opcode.mem_access(), Some(MemAccessKind::Store));
        Instruction {
            rs: vec![src],
            mem: Some(mem),
            ..Instruction::new(opcode)
        }
    }

    /// `sethi imm, rd`.
    pub fn sethi(imm: i64, rd: Reg) -> Instruction {
        Instruction {
            rd: Some(rd),
            imm: Some(imm),
            ..Instruction::new(Opcode::Sethi)
        }
    }

    /// `mov imm, rd`.
    pub fn mov_imm(imm: i64, rd: Reg) -> Instruction {
        Instruction {
            rd: Some(rd),
            imm: Some(imm),
            ..Instruction::new(Opcode::Mov)
        }
    }

    /// A control transfer with no register operands (`ba`, `bicc`, `fbcc`,
    /// `call`, `jmpl`).
    pub fn branch(opcode: Opcode) -> Instruction {
        debug_assert!(matches!(
            opcode.class(),
            InsnClass::Branch | InsnClass::Call
        ));
        Instruction::new(opcode)
    }

    /// `nop`.
    pub fn nop() -> Instruction {
        Instruction::new(Opcode::Nop)
    }

    /// The functional class (delegates to the opcode).
    pub fn class(&self) -> InsnClass {
        self.opcode.class()
    }

    /// All resources *defined* (written) by this instruction, in a fixed
    /// order: destination register (then its double-word partner), condition
    /// codes, `%y`, then the memory expression for stores.
    ///
    /// Writes to the hardwired zero register `%g0` are discarded.
    pub fn defs(&self) -> Vec<Resource> {
        let mut out = Vec::with_capacity(2);
        if let Some(rd) = self.rd {
            if rd.is_writable() {
                out.push(Resource::Reg(rd));
            }
            if self.opcode.is_dword() && self.opcode.mem_access() == Some(MemAccessKind::Load) {
                if let Some(hi) = rd.pair_partner() {
                    out.push(Resource::Reg(hi));
                }
            }
        }
        if self.opcode.sets_icc() {
            out.push(Resource::Reg(Reg::Icc));
        }
        if self.opcode.sets_fcc() {
            out.push(Resource::Reg(Reg::Fcc));
        }
        if self.opcode.sets_y() {
            out.push(Resource::Reg(Reg::Y));
        }
        if self.opcode.mem_access() == Some(MemAccessKind::Store) {
            if let Some(m) = &self.mem {
                out.push(Resource::Mem(m.expr));
            }
        }
        out
    }

    /// All resources *used* (read) by this instruction, in a fixed order:
    /// register sources (then double-word partners for dword stores),
    /// memory base/index registers, condition codes, `%y`, then the memory
    /// expression for loads.
    ///
    /// Reads of `%g0` are kept (they are harmless: `%g0` is never defined,
    /// so no arcs result).
    pub fn uses(&self) -> Vec<Resource> {
        let mut out = Vec::with_capacity(4);
        for &r in &self.rs {
            out.push(Resource::Reg(r));
            if self.opcode.is_dword() && self.opcode.mem_access() == Some(MemAccessKind::Store) {
                if let Some(hi) = r.pair_partner() {
                    out.push(Resource::Reg(hi));
                }
            }
        }
        if let Some(m) = &self.mem {
            out.push(Resource::Reg(m.base));
            if let Some(ix) = m.index {
                out.push(Resource::Reg(ix));
            }
        }
        if self.opcode.reads_icc() {
            out.push(Resource::Reg(Reg::Icc));
        }
        if self.opcode.reads_fcc() {
            out.push(Resource::Reg(Reg::Fcc));
        }
        if self.opcode.reads_y() {
            out.push(Resource::Reg(Reg::Y));
        }
        if self.opcode.mem_access() == Some(MemAccessKind::Load) {
            if let Some(m) = &self.mem {
                out.push(Resource::Mem(m.expr));
            }
        }
        out
    }

    /// Position of `res` among this instruction's *register source
    /// operands* (`rs`), used by asymmetric-bypass latency rules (a value
    /// consumed as the second source operand may see a different RAW delay
    /// than one consumed as the first — cf. the paper's RS/6000 example).
    pub fn src_position(&self, res: Resource) -> Option<usize> {
        match res {
            Resource::Reg(r) => self.rs.iter().position(|&s| s == r),
            _ => None,
        }
    }

    /// Whether this instruction accesses memory.
    pub fn is_mem(&self) -> bool {
        self.opcode.mem_access().is_some()
    }

    /// Whether this instruction is a load.
    pub fn is_load(&self) -> bool {
        self.opcode.mem_access() == Some(MemAccessKind::Load)
    }

    /// Whether this instruction is a store.
    pub fn is_store(&self) -> bool {
        self.opcode.mem_access() == Some(MemAccessKind::Store)
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.opcode)?;
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if first {
                first = false;
                write!(f, " ")
            } else {
                write!(f, ", ")
            }
        };
        if self.is_load() {
            if let Some(m) = &self.mem {
                sep(f)?;
                write!(f, "{m}")?;
            }
        }
        for r in &self.rs {
            sep(f)?;
            write!(f, "{r}")?;
        }
        if let Some(imm) = self.imm {
            sep(f)?;
            write!(f, "{imm}")?;
        }
        if self.is_store() {
            if let Some(m) = &self.mem {
                sep(f)?;
                write!(f, "{m}")?;
            }
        }
        if let Some(rd) = self.rd {
            sep(f)?;
            write!(f, "{rd}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memexpr::MemExprPool;

    fn expr(pool: &mut MemExprPool, t: &str) -> MemExprId {
        pool.intern(t)
    }

    #[test]
    fn int3_defs_and_uses() {
        let i = Instruction::int3(Opcode::Add, Reg::o(0), Reg::o(1), Reg::o(2));
        assert_eq!(i.defs(), vec![Resource::Reg(Reg::o(2))]);
        assert_eq!(
            i.uses(),
            vec![Resource::Reg(Reg::o(0)), Resource::Reg(Reg::o(1))]
        );
    }

    #[test]
    fn g0_writes_are_discarded() {
        let i = Instruction::int3(Opcode::Add, Reg::o(0), Reg::o(1), Reg::g(0));
        assert!(i.defs().is_empty());
    }

    #[test]
    fn cmp_defines_only_icc() {
        let i = Instruction::cmp(Reg::o(0), Reg::o(1));
        assert_eq!(i.defs(), vec![Resource::Reg(Reg::Icc)]);
    }

    #[test]
    fn branch_uses_icc() {
        let i = Instruction::branch(Opcode::Bicc);
        assert_eq!(i.uses(), vec![Resource::Reg(Reg::Icc)]);
        assert!(i.defs().is_empty());
    }

    #[test]
    fn load_uses_base_and_memory_defines_rd() {
        let mut pool = MemExprPool::new();
        let e = expr(&mut pool, "[%fp-8]");
        let i = Instruction::load(Opcode::Ld, MemRef::base_offset(Reg::fp(), -8, e), Reg::l(0));
        assert_eq!(i.defs(), vec![Resource::Reg(Reg::l(0))]);
        assert_eq!(i.uses(), vec![Resource::Reg(Reg::fp()), Resource::Mem(e)]);
    }

    #[test]
    fn store_defines_memory_uses_value_and_base() {
        let mut pool = MemExprPool::new();
        let e = expr(&mut pool, "[%fp-8]");
        let i = Instruction::store(Opcode::St, Reg::l(1), MemRef::base_offset(Reg::fp(), -8, e));
        assert_eq!(i.defs(), vec![Resource::Mem(e)]);
        assert_eq!(
            i.uses(),
            vec![Resource::Reg(Reg::l(1)), Resource::Reg(Reg::fp())]
        );
    }

    #[test]
    fn dword_load_defines_register_pair() {
        let mut pool = MemExprPool::new();
        let e = expr(&mut pool, "[%o0]");
        let i = Instruction::load(
            Opcode::LdDf,
            MemRef::base_offset(Reg::o(0), 0, e),
            Reg::f(2),
        );
        assert_eq!(
            i.defs(),
            vec![Resource::Reg(Reg::f(2)), Resource::Reg(Reg::f(3))]
        );
    }

    #[test]
    fn dword_store_uses_register_pair() {
        let mut pool = MemExprPool::new();
        let e = expr(&mut pool, "[%o0]");
        let i = Instruction::store(
            Opcode::StDf,
            Reg::f(4),
            MemRef::base_offset(Reg::o(0), 0, e),
        );
        assert!(i.uses().contains(&Resource::Reg(Reg::f(4))));
        assert!(i.uses().contains(&Resource::Reg(Reg::f(5))));
    }

    #[test]
    fn mul_defines_y() {
        let i = Instruction::int3(Opcode::Umul, Reg::o(0), Reg::o(1), Reg::o(2));
        assert!(i.defs().contains(&Resource::Reg(Reg::Y)));
    }

    #[test]
    fn base_index_mem_uses_both_registers() {
        let mut pool = MemExprPool::new();
        let e = expr(&mut pool, "[%o0+%o1]");
        let i = Instruction::load(
            Opcode::LdF,
            MemRef::base_index(Reg::o(0), Reg::o(1), e),
            Reg::f(0),
        );
        assert!(i.uses().contains(&Resource::Reg(Reg::o(0))));
        assert!(i.uses().contains(&Resource::Reg(Reg::o(1))));
    }

    #[test]
    fn src_position_reports_operand_slot() {
        let i = Instruction::fp3(Opcode::FAddD, Reg::f(0), Reg::f(2), Reg::f(4));
        assert_eq!(i.src_position(Resource::Reg(Reg::f(0))), Some(0));
        assert_eq!(i.src_position(Resource::Reg(Reg::f(2))), Some(1));
        assert_eq!(i.src_position(Resource::Reg(Reg::f(4))), None);
    }

    #[test]
    fn display_formats_assembly() {
        let mut pool = MemExprPool::new();
        let e = expr(&mut pool, "[%fp-8]");
        let i = Instruction::int3(Opcode::Add, Reg::o(0), Reg::o(1), Reg::o(2));
        assert_eq!(i.to_string(), "add %o0, %o1, %o2");
        let l = Instruction::load(Opcode::Ld, MemRef::base_offset(Reg::fp(), -8, e), Reg::l(0));
        assert_eq!(l.to_string(), "ld [%i6-8], %l0");
        let s = Instruction::store(Opcode::St, Reg::l(0), MemRef::base_offset(Reg::fp(), -8, e));
        assert_eq!(s.to_string(), "st %l0, [%i6-8]");
    }
}
