//! Machine timing model: arc latency rules and function units.

use std::collections::HashMap;
use std::fmt;

use crate::insn::Instruction;
use crate::opcode::{InsnClass, Opcode};
use crate::reg::Resource;

/// Data dependence kinds, as classified in the paper's introduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DepKind {
    /// Read-after-write: true dependence.
    Raw,
    /// Write-after-read: anti-dependence.
    War,
    /// Write-after-write: output dependence.
    Waw,
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DepKind::Raw => "RAW",
            DepKind::War => "WAR",
            DepKind::Waw => "WAW",
        })
    }
}

/// Function units available for structural-hazard modelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FuncUnit {
    /// Integer ALU (also executes branches, window ops and nops here).
    IntAlu,
    /// Load/store unit.
    LoadStore,
    /// Floating point adder (add/sub/compare/convert/move).
    FpAdd,
    /// Floating point multiplier.
    FpMul,
    /// Floating point divide/sqrt unit (typically unpipelined).
    FpDiv,
}

impl FuncUnit {
    /// All function units.
    pub const ALL: &'static [FuncUnit] = &[
        FuncUnit::IntAlu,
        FuncUnit::LoadStore,
        FuncUnit::FpAdd,
        FuncUnit::FpMul,
        FuncUnit::FpDiv,
    ];

    /// The unit an instruction class executes on.
    pub fn for_class(class: InsnClass) -> FuncUnit {
        match class {
            InsnClass::Mem => FuncUnit::LoadStore,
            InsnClass::FpAdd => FuncUnit::FpAdd,
            InsnClass::FpMul => FuncUnit::FpMul,
            InsnClass::FpDiv => FuncUnit::FpDiv,
            _ => FuncUnit::IntAlu,
        }
    }
}

impl fmt::Display for FuncUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FuncUnit::IntAlu => "ialu",
            FuncUnit::LoadStore => "ldst",
            FuncUnit::FpAdd => "fadd",
            FuncUnit::FpMul => "fmul",
            FuncUnit::FpDiv => "fdiv",
        })
    }
}

/// Description of one function unit in a [`MachineModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitDesc {
    /// Which unit.
    pub unit: FuncUnit,
    /// Whether the unit accepts a new operation every cycle. An unpipelined
    /// unit is busy for the full execution latency of each operation —
    /// the structural hazard behind the paper's "busy times for floating
    /// point function units" heuristic.
    pub pipelined: bool,
}

/// The timing model used to weight DAG arcs and to simulate schedules.
///
/// Arc latencies follow the paper's discussion in §2:
///
/// * **RAW** delay is the producer's result latency, with optional
///   machine-specific adjustments — a discount when the consumer is a
///   store (operand bypass directly into the store pipeline), a penalty
///   when the value is consumed as the *second* source operand (asymmetric
///   bypass paths, the paper's RS/6000 example), and a skew for the second
///   register of a double-word load pair.
/// * **WAR** delays are short (default 1): the parent reads its operand in
///   an early pipe stage, so the child may overwrite it almost immediately.
///   Figure 1's correctness argument for retaining transitive arcs depends
///   on exactly this.
/// * **WAW** delays default to 1 (writes must merely stay ordered).
///
/// Construct a preset with [`MachineModel::sparc2`],
/// [`MachineModel::rs6000_like`] or [`MachineModel::deep_fpu`], then
/// customize via the builder-style setters.
///
/// ```
/// use dagsched_isa::{Instruction, MachineModel, Opcode, Reg, Resource};
/// let m = MachineModel::sparc2();
/// let div = Instruction::fp3(Opcode::FDivD, Reg::f(0), Reg::f(2), Reg::f(4));
/// let add = Instruction::fp3(Opcode::FAddD, Reg::f(4), Reg::f(6), Reg::f(8));
/// let lat = m.raw_latency(&div, &add, Resource::Reg(Reg::f(4)));
/// assert_eq!(lat, 20);
/// ```
#[derive(Debug, Clone)]
pub struct MachineModel {
    name: String,
    latency_overrides: HashMap<Opcode, u32>,
    war_delay: u32,
    waw_delay: u32,
    store_forward_discount: u32,
    second_src_penalty: u32,
    dword_pair_skew: u32,
    units: Vec<UnitDesc>,
    issue_width: u32,
}

impl MachineModel {
    /// A model with the given name, default opcode latencies, WAR/WAW
    /// delays of 1, no bypass asymmetries, fully pipelined units except the
    /// FP divider, and single issue.
    pub fn new(name: impl Into<String>) -> MachineModel {
        MachineModel {
            name: name.into(),
            latency_overrides: HashMap::new(),
            war_delay: 1,
            waw_delay: 1,
            store_forward_discount: 0,
            second_src_penalty: 0,
            dword_pair_skew: 0,
            units: vec![
                UnitDesc {
                    unit: FuncUnit::IntAlu,
                    pipelined: true,
                },
                UnitDesc {
                    unit: FuncUnit::LoadStore,
                    pipelined: true,
                },
                UnitDesc {
                    unit: FuncUnit::FpAdd,
                    pipelined: true,
                },
                UnitDesc {
                    unit: FuncUnit::FpMul,
                    pipelined: true,
                },
                UnitDesc {
                    unit: FuncUnit::FpDiv,
                    pipelined: false,
                },
            ],
            issue_width: 1,
        }
    }

    /// SPARCstation-2-flavoured preset: the default latencies of
    /// [`Opcode::default_latency`] (20-cycle `fdivd`, 4-cycle `faddd`,
    /// one-delay-slot loads — the numbers of the paper's Figure 1), a
    /// double-word load pair skew of 1 cycle, and an unpipelined FP
    /// divider.
    pub fn sparc2() -> MachineModel {
        let mut m = MachineModel::new("sparc2");
        m.dword_pair_skew = 1;
        m
    }

    /// RS/6000-flavoured preset exhibiting the asymmetric bypass paths the
    /// paper describes: +1 cycle when a value is consumed as the second
    /// source operand, and a 1-cycle discount when the consumer is a store.
    pub fn rs6000_like() -> MachineModel {
        let mut m = MachineModel::new("rs6000-like");
        m.second_src_penalty = 1;
        m.store_forward_discount = 1;
        m.dword_pair_skew = 1;
        m
    }

    /// A model with a deeper floating point pipeline (longer latencies),
    /// useful for stressing critical-path heuristics in ablations.
    pub fn deep_fpu() -> MachineModel {
        let mut m = MachineModel::new("deep-fpu");
        m.latency_overrides.insert(Opcode::FAddS, 6);
        m.latency_overrides.insert(Opcode::FAddD, 6);
        m.latency_overrides.insert(Opcode::FSubS, 6);
        m.latency_overrides.insert(Opcode::FSubD, 6);
        m.latency_overrides.insert(Opcode::FMulS, 10);
        m.latency_overrides.insert(Opcode::FMulD, 12);
        m.latency_overrides.insert(Opcode::FDivS, 26);
        m.latency_overrides.insert(Opcode::FDivD, 40);
        m.latency_overrides.insert(Opcode::Ld, 3);
        m.latency_overrides.insert(Opcode::LdF, 3);
        m.latency_overrides.insert(Opcode::Ldd, 4);
        m.latency_overrides.insert(Opcode::LdDf, 4);
        m.dword_pair_skew = 1;
        m
    }

    /// The model's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A deterministic 64-bit fingerprint of every timing-relevant field.
    ///
    /// Two models with equal fingerprints weight DAG arcs identically, so
    /// the scheduling service may share cached schedules between them;
    /// any builder-setter change (latency override, WAR/WAW delay, issue
    /// width, unit pipelining) changes the fingerprint. The latency
    /// override table is hashed in sorted order, so the value does not
    /// depend on `HashMap` iteration order.
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::Fnv64::new();
        h.write_str(&self.name);
        h.write_u32(self.war_delay);
        h.write_u32(self.waw_delay);
        h.write_u32(self.store_forward_discount);
        h.write_u32(self.second_src_penalty);
        h.write_u32(self.dword_pair_skew);
        h.write_u32(self.issue_width);
        let mut overrides: Vec<(String, u32)> = self
            .latency_overrides
            .iter()
            .map(|(op, &cycles)| (format!("{op:?}"), cycles))
            .collect();
        overrides.sort();
        h.write_u64(overrides.len() as u64);
        for (op, cycles) in &overrides {
            h.write_str(op);
            h.write_u32(*cycles);
        }
        h.write_u64(self.units.len() as u64);
        for u in &self.units {
            h.write_str(&format!("{:?}", u.unit));
            h.write_u32(u.pipelined as u32);
        }
        h.finish()
    }

    /// Override the result latency of `op`.
    pub fn with_latency(mut self, op: Opcode, cycles: u32) -> MachineModel {
        self.latency_overrides.insert(op, cycles);
        self
    }

    /// Set the WAR arc delay.
    pub fn with_war_delay(mut self, cycles: u32) -> MachineModel {
        self.war_delay = cycles;
        self
    }

    /// Set the WAW arc delay.
    pub fn with_waw_delay(mut self, cycles: u32) -> MachineModel {
        self.waw_delay = cycles;
        self
    }

    /// Set the superscalar issue width (used by the pipeline simulator and
    /// the "alternate type" heuristic's rationale).
    pub fn with_issue_width(mut self, width: u32) -> MachineModel {
        assert!(width >= 1);
        self.issue_width = width;
        self
    }

    /// Mark a function unit pipelined or not.
    pub fn with_unit_pipelined(mut self, unit: FuncUnit, pipelined: bool) -> MachineModel {
        for u in &mut self.units {
            if u.unit == unit {
                u.pipelined = pipelined;
            }
        }
        self
    }

    /// Execution (result) latency of an instruction.
    pub fn exec_latency(&self, insn: &Instruction) -> u32 {
        self.latency_overrides
            .get(&insn.opcode)
            .copied()
            .unwrap_or_else(|| insn.opcode.default_latency())
    }

    /// The function unit an instruction executes on.
    pub fn unit_of(&self, insn: &Instruction) -> FuncUnit {
        FuncUnit::for_class(insn.class())
    }

    /// Whether the unit executing `insn` is pipelined.
    pub fn unit_pipelined(&self, insn: &Instruction) -> bool {
        let unit = self.unit_of(insn);
        self.units
            .iter()
            .find(|u| u.unit == unit)
            .map(|u| u.pipelined)
            .unwrap_or(true)
    }

    /// Function unit descriptions.
    pub fn units(&self) -> &[UnitDesc] {
        &self.units
    }

    /// Superscalar issue width.
    pub fn issue_width(&self) -> u32 {
        self.issue_width
    }

    /// RAW arc delay from `parent` to `child` through `res`.
    ///
    /// Starts from the parent's result latency, then applies:
    /// * the double-word pair skew if `res` is the *second* register of a
    ///   double-word load pair,
    /// * the store-forwarding discount if `child` is a store consuming the
    ///   value as its stored operand,
    /// * the second-source-operand penalty if `child` consumes `res` as its
    ///   second register source.
    ///
    /// The result is never less than 1.
    pub fn raw_latency(&self, parent: &Instruction, child: &Instruction, res: Resource) -> u32 {
        let mut lat = self.exec_latency(parent) as i64;
        if self.dword_pair_skew > 0 && parent.opcode.is_dword() && parent.is_load() {
            if let (Some(rd), Resource::Reg(r)) = (parent.rd, res) {
                if rd.pair_partner() == Some(r) {
                    lat += self.dword_pair_skew as i64;
                }
            }
        }
        match child.src_position(res) {
            Some(pos) => {
                if child.is_store() && pos == 0 {
                    lat -= self.store_forward_discount as i64;
                } else if pos == 1 {
                    lat += self.second_src_penalty as i64;
                }
            }
            None => {
                // Consumed as an address register or condition code: no
                // operand-slot adjustment applies.
            }
        }
        lat.max(1) as u32
    }

    /// WAR arc delay (short: the parent reads early in the pipe).
    pub fn war_latency(&self, _parent: &Instruction, _child: &Instruction, _res: Resource) -> u32 {
        self.war_delay
    }

    /// WAW arc delay.
    pub fn waw_latency(&self, _parent: &Instruction, _child: &Instruction, _res: Resource) -> u32 {
        self.waw_delay
    }

    /// Arc delay for an arbitrary dependence kind.
    pub fn dep_latency(
        &self,
        kind: DepKind,
        parent: &Instruction,
        child: &Instruction,
        res: Resource,
    ) -> u32 {
        match kind {
            DepKind::Raw => self.raw_latency(parent, child, res),
            DepKind::War => self.war_latency(parent, child, res),
            DepKind::Waw => self.waw_latency(parent, child, res),
        }
    }

    /// Whether an RAW arc from `parent` would interlock a child issued in
    /// the very next cycle — i.e. the producer has at least one delay slot.
    pub fn has_delay_slots(&self, parent: &Instruction) -> bool {
        self.exec_latency(parent) > 1
    }
}

impl Default for MachineModel {
    fn default() -> MachineModel {
        MachineModel::sparc2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::MemRef;
    use crate::memexpr::MemExprPool;
    use crate::reg::Reg;

    #[test]
    fn default_latency_is_opcode_default() {
        let m = MachineModel::sparc2();
        let i = Instruction::int3(Opcode::Add, Reg::o(0), Reg::o(1), Reg::o(2));
        assert_eq!(m.exec_latency(&i), 1);
        let d = Instruction::fp3(Opcode::FDivD, Reg::f(0), Reg::f(2), Reg::f(4));
        assert_eq!(m.exec_latency(&d), 20);
    }

    #[test]
    fn latency_override_applies() {
        let m = MachineModel::sparc2().with_latency(Opcode::FDivD, 25);
        let d = Instruction::fp3(Opcode::FDivD, Reg::f(0), Reg::f(2), Reg::f(4));
        assert_eq!(m.exec_latency(&d), 25);
    }

    #[test]
    fn war_and_waw_delays() {
        let m = MachineModel::sparc2();
        let a = Instruction::fp3(Opcode::FAddD, Reg::f(0), Reg::f(2), Reg::f(4));
        let b = Instruction::fp3(Opcode::FAddD, Reg::f(6), Reg::f(8), Reg::f(0));
        assert_eq!(m.war_latency(&a, &b, Resource::Reg(Reg::f(0))), 1);
        assert_eq!(m.waw_latency(&a, &b, Resource::Reg(Reg::f(4))), 1);
    }

    #[test]
    fn dword_pair_skew_applies_to_second_register_only() {
        let mut pool = MemExprPool::new();
        let e = pool.intern("[%o0]");
        let m = MachineModel::sparc2();
        let ld = Instruction::load(
            Opcode::LdDf,
            MemRef::base_offset(Reg::o(0), 0, e),
            Reg::f(2),
        );
        let use_lo = Instruction::fp3(Opcode::FAddD, Reg::f(2), Reg::f(6), Reg::f(8));
        let use_hi = Instruction::fp3(Opcode::FAddD, Reg::f(3), Reg::f(6), Reg::f(8));
        assert_eq!(m.raw_latency(&ld, &use_lo, Resource::Reg(Reg::f(2))), 3);
        assert_eq!(m.raw_latency(&ld, &use_hi, Resource::Reg(Reg::f(3))), 4);
    }

    #[test]
    fn rs6000_asymmetric_bypass() {
        let m = MachineModel::rs6000_like();
        let mul = Instruction::fp3(Opcode::FMulD, Reg::f(0), Reg::f(2), Reg::f(4));
        let as_first = Instruction::fp3(Opcode::FAddD, Reg::f(4), Reg::f(6), Reg::f(8));
        let as_second = Instruction::fp3(Opcode::FAddD, Reg::f(6), Reg::f(4), Reg::f(8));
        let base = m.exec_latency(&mul);
        assert_eq!(
            m.raw_latency(&mul, &as_first, Resource::Reg(Reg::f(4))),
            base
        );
        assert_eq!(
            m.raw_latency(&mul, &as_second, Resource::Reg(Reg::f(4))),
            base + 1
        );
    }

    #[test]
    fn store_forwarding_discount() {
        let mut pool = MemExprPool::new();
        let e = pool.intern("[%o0]");
        let m = MachineModel::rs6000_like();
        let mul = Instruction::fp3(Opcode::FMulD, Reg::f(0), Reg::f(2), Reg::f(4));
        let st = Instruction::store(
            Opcode::StDf,
            Reg::f(4),
            MemRef::base_offset(Reg::o(0), 0, e),
        );
        let base = m.exec_latency(&mul);
        assert_eq!(m.raw_latency(&mul, &st, Resource::Reg(Reg::f(4))), base - 1);
    }

    #[test]
    fn raw_latency_never_below_one() {
        let m = MachineModel::rs6000_like();
        let mut pool = MemExprPool::new();
        let e = pool.intern("[%o0]");
        let mov = Instruction::mov_imm(1, Reg::o(1));
        let st = Instruction::store(Opcode::St, Reg::o(1), MemRef::base_offset(Reg::o(0), 0, e));
        // exec latency 1, discount 1 would give 0 — must clamp to 1.
        assert_eq!(m.raw_latency(&mov, &st, Resource::Reg(Reg::o(1))), 1);
    }

    #[test]
    fn fp_divider_is_unpipelined_by_default() {
        let m = MachineModel::sparc2();
        let d = Instruction::fp3(Opcode::FDivD, Reg::f(0), Reg::f(2), Reg::f(4));
        let a = Instruction::fp3(Opcode::FAddD, Reg::f(0), Reg::f(2), Reg::f(4));
        assert!(!m.unit_pipelined(&d));
        assert!(m.unit_pipelined(&a));
        let m2 = MachineModel::sparc2().with_unit_pipelined(FuncUnit::FpDiv, true);
        assert!(m2.unit_pipelined(&d));
    }

    #[test]
    fn address_register_consumption_has_no_slot_adjustment() {
        // A value consumed as a load's *base register* is not a register
        // source operand; no second-operand penalty applies.
        let mut pool = MemExprPool::new();
        let e = pool.intern("[%o2]");
        let m = MachineModel::rs6000_like();
        let add = Instruction::int3(Opcode::Add, Reg::o(0), Reg::o(1), Reg::o(2));
        let ld = Instruction::load(Opcode::Ld, MemRef::base_offset(Reg::o(2), 0, e), Reg::o(3));
        assert_eq!(m.raw_latency(&add, &ld, Resource::Reg(Reg::o(2))), 1);
    }

    #[test]
    fn delay_slot_detection() {
        let m = MachineModel::sparc2();
        let mut pool = MemExprPool::new();
        let e = pool.intern("[%o0]");
        let ld = Instruction::load(Opcode::Ld, MemRef::base_offset(Reg::o(0), 0, e), Reg::o(1));
        let add = Instruction::int3(Opcode::Add, Reg::o(0), Reg::o(1), Reg::o(2));
        assert!(m.has_delay_slots(&ld));
        assert!(!m.has_delay_slots(&add));
    }

    #[test]
    fn fingerprints_are_stable_and_sensitive() {
        let a = MachineModel::sparc2();
        let b = MachineModel::sparc2();
        // Deterministic across construction (HashMap order must not leak).
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Every preset is distinct.
        assert_ne!(
            MachineModel::sparc2().fingerprint(),
            MachineModel::rs6000_like().fingerprint()
        );
        assert_ne!(
            MachineModel::sparc2().fingerprint(),
            MachineModel::deep_fpu().fingerprint()
        );
        // Any builder tweak changes the fingerprint.
        assert_ne!(
            a.fingerprint(),
            MachineModel::sparc2()
                .with_latency(Opcode::Add, 9)
                .fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            MachineModel::sparc2().with_war_delay(3).fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            MachineModel::sparc2().with_issue_width(2).fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            MachineModel::sparc2()
                .with_unit_pipelined(FuncUnit::FpAdd, false)
                .fingerprint()
        );
    }
}
