//! Deterministic 64-bit content fingerprints (FNV-1a).
//!
//! The scheduling service keys its content-addressed schedule cache on
//! *configuration identity*: the same basic block scheduled under a
//! different [`crate::MachineModel`] (or algorithm, or heuristic stack)
//! must occupy a different cache slot. `Debug` formatting is not a usable
//! fingerprint for the machine model — its latency-override table is a
//! `HashMap`, whose iteration order varies run to run — so this module
//! provides a tiny explicit FNV-1a hasher and the model hashes its fields
//! in a fixed order ([`crate::MachineModel::fingerprint`]).
//!
//! FNV-1a is chosen for the same reason the paper's table-building
//! algorithms use direct-mapped tables: it is trivially portable, has no
//! dependencies, and is plenty strong for content addressing when the
//! caller also mixes in structural facts (lengths, counts) that make
//! accidental collisions vanishingly unlikely.

/// 64-bit FNV-1a offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental 64-bit FNV-1a hasher.
///
/// ```
/// use dagsched_isa::Fnv64;
/// let mut h = Fnv64::new();
/// h.write(b"fdivd %f0, %f2, %f4");
/// h.write_u64(20);
/// let a = h.finish();
/// assert_ne!(a, Fnv64::new().finish());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A hasher at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(FNV_OFFSET)
    }

    /// A hasher whose state is additionally seeded with `seed` — used to
    /// derive a second, independent hash of the same bytes so cache keys
    /// are effectively 128-bit.
    pub fn with_seed(seed: u64) -> Fnv64 {
        let mut h = Fnv64::new();
        h.write_u64(seed);
        h
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb a `u64` (little-endian bytes, length-prefixed by nothing —
    /// callers mix in their own structure).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb a `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb a UTF-8 string, delimited so `("ab", "c")` and `("a", "bc")`
    /// hash differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

/// One-shot FNV-1a of a byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn str_writes_are_delimited() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn seeding_gives_an_independent_stream() {
        let mut a = Fnv64::new();
        a.write(b"block");
        let mut b = Fnv64::with_seed(1991);
        b.write(b"block");
        assert_ne!(a.finish(), b.finish());
    }
}
