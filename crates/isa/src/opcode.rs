//! The modelled operation set.

use std::fmt;

/// Kind of memory access performed by an opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemAccessKind {
    /// The instruction reads memory (a load: memory is a *use*).
    Load,
    /// The instruction writes memory (a store: memory is a *definition*).
    Store,
}

/// Functional class of an instruction, used by block partitioning, the
/// "alternate type" heuristic and the superscalar issue model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InsnClass {
    /// Integer ALU operation.
    IntAlu,
    /// Integer multiply/divide (long-latency, uses `%y`).
    IntMulDiv,
    /// Memory access (load or store, integer or FP).
    Mem,
    /// Floating point add/subtract/compare/convert/move.
    FpAdd,
    /// Floating point multiply.
    FpMul,
    /// Floating point divide/square root (long latency, often unpipelined).
    FpDiv,
    /// Control transfer (branches).
    Branch,
    /// Procedure call / return.
    Call,
    /// Register window manipulation (`save`/`restore`).
    Window,
    /// No-operation.
    Nop,
}

/// A SPARC-flavoured opcode.
///
/// The set covers what late-1980s `cc -O4` / `f77 -O4` output actually
/// exercises: integer ALU and multiply/divide, single/double loads and
/// stores (integer and FP), the floating point pipeline, compares,
/// branches, calls and register-window instructions.
///
/// Static properties (class, default latency, condition-code effects,
/// double-word behaviour, block-ending behaviour) are centralized here;
/// *timing* beyond the per-opcode default latency lives in
/// [`MachineModel`](crate::MachineModel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // variants are standard SPARC mnemonics, documented as a group
pub enum Opcode {
    // -- integer ALU --------------------------------------------------
    Add,
    Sub,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    AddCc,
    SubCc,
    Sethi,
    /// Register/immediate move (synthesized from `or %g0, x, rd`).
    Mov,
    // -- integer multiply / divide ------------------------------------
    Umul,
    Smul,
    Udiv,
    Sdiv,
    /// Read the `%y` register.
    RdY,
    // -- memory --------------------------------------------------------
    Ld,
    Ldd,
    LdF,
    LdDf,
    St,
    Std,
    StF,
    StDf,
    // -- floating point -------------------------------------------------
    FAddS,
    FAddD,
    FSubS,
    FSubD,
    FMulS,
    FMulD,
    FDivS,
    FDivD,
    FSqrtD,
    FMovS,
    FNegS,
    FAbsS,
    FCmpS,
    FCmpD,
    FiToS,
    FiToD,
    FsToD,
    FdToS,
    FsToI,
    FdToI,
    // -- control --------------------------------------------------------
    /// Unconditional branch (`ba`), with a delay slot.
    Ba,
    /// Conditional branch on integer condition codes.
    Bicc,
    /// Conditional branch on FP condition codes.
    Fbcc,
    /// Procedure call.
    Call,
    /// Indirect jump / return (`jmpl`, `ret`).
    Jmpl,
    /// Register window save.
    Save,
    /// Register window restore.
    Restore,
    // -- other ----------------------------------------------------------
    Nop,
}

impl Opcode {
    /// Every opcode, in declaration order.
    pub const ALL: &'static [Opcode] = &[
        Opcode::Add,
        Opcode::Sub,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Sll,
        Opcode::Srl,
        Opcode::Sra,
        Opcode::AddCc,
        Opcode::SubCc,
        Opcode::Sethi,
        Opcode::Mov,
        Opcode::Umul,
        Opcode::Smul,
        Opcode::Udiv,
        Opcode::Sdiv,
        Opcode::RdY,
        Opcode::Ld,
        Opcode::Ldd,
        Opcode::LdF,
        Opcode::LdDf,
        Opcode::St,
        Opcode::Std,
        Opcode::StF,
        Opcode::StDf,
        Opcode::FAddS,
        Opcode::FAddD,
        Opcode::FSubS,
        Opcode::FSubD,
        Opcode::FMulS,
        Opcode::FMulD,
        Opcode::FDivS,
        Opcode::FDivD,
        Opcode::FSqrtD,
        Opcode::FMovS,
        Opcode::FNegS,
        Opcode::FAbsS,
        Opcode::FCmpS,
        Opcode::FCmpD,
        Opcode::FiToS,
        Opcode::FiToD,
        Opcode::FsToD,
        Opcode::FdToS,
        Opcode::FsToI,
        Opcode::FdToI,
        Opcode::Ba,
        Opcode::Bicc,
        Opcode::Fbcc,
        Opcode::Call,
        Opcode::Jmpl,
        Opcode::Save,
        Opcode::Restore,
        Opcode::Nop,
    ];

    /// The functional class of this opcode.
    pub fn class(&self) -> InsnClass {
        use Opcode::*;
        match self {
            Add | Sub | And | Or | Xor | Sll | Srl | Sra | AddCc | SubCc | Sethi | Mov | RdY => {
                InsnClass::IntAlu
            }
            Umul | Smul | Udiv | Sdiv => InsnClass::IntMulDiv,
            Ld | Ldd | LdF | LdDf | St | Std | StF | StDf => InsnClass::Mem,
            FAddS | FAddD | FSubS | FSubD | FMovS | FNegS | FAbsS | FCmpS | FCmpD | FiToS
            | FiToD | FsToD | FdToS | FsToI | FdToI => InsnClass::FpAdd,
            FMulS | FMulD => InsnClass::FpMul,
            FDivS | FDivD | FSqrtD => InsnClass::FpDiv,
            Ba | Bicc | Fbcc => InsnClass::Branch,
            Call | Jmpl => InsnClass::Call,
            Save | Restore => InsnClass::Window,
            Nop => InsnClass::Nop,
        }
    }

    /// Default result latency in cycles, before any
    /// [`MachineModel`](crate::MachineModel) override. These values follow
    /// the paper's Figure 1 conventions for the FP pipeline (`fdivd` 20
    /// cycles, double-precision add 4 cycles) and a one-delay-slot load.
    pub fn default_latency(&self) -> u32 {
        use Opcode::*;
        match self {
            Add | Sub | And | Or | Xor | Sll | Srl | Sra | AddCc | SubCc | Sethi | Mov | RdY => 1,
            Umul | Smul => 19,
            Udiv | Sdiv => 39,
            Ld | LdF => 2,
            Ldd | LdDf => 3,
            St | Std | StF | StDf => 1,
            FAddS | FSubS => 3,
            FAddD | FSubD => 4,
            FMovS | FNegS | FAbsS => 1,
            FCmpS | FCmpD => 2,
            FiToS | FiToD | FsToD | FdToS | FsToI | FdToI => 3,
            FMulS => 5,
            FMulD => 7,
            FDivS => 13,
            FDivD => 20,
            FSqrtD => 30,
            Ba | Bicc | Fbcc | Call | Jmpl | Save | Restore | Nop => 1,
        }
    }

    /// Whether this opcode writes the integer condition codes.
    pub fn sets_icc(&self) -> bool {
        matches!(self, Opcode::AddCc | Opcode::SubCc)
    }

    /// Whether this opcode writes the floating point condition codes.
    pub fn sets_fcc(&self) -> bool {
        matches!(self, Opcode::FCmpS | Opcode::FCmpD)
    }

    /// Whether this opcode reads the integer condition codes.
    pub fn reads_icc(&self) -> bool {
        matches!(self, Opcode::Bicc)
    }

    /// Whether this opcode reads the floating point condition codes.
    pub fn reads_fcc(&self) -> bool {
        matches!(self, Opcode::Fbcc)
    }

    /// Whether this opcode writes the `%y` register.
    pub fn sets_y(&self) -> bool {
        matches!(
            self,
            Opcode::Umul | Opcode::Smul | Opcode::Udiv | Opcode::Sdiv
        )
    }

    /// Whether this opcode reads the `%y` register.
    pub fn reads_y(&self) -> bool {
        matches!(self, Opcode::RdY | Opcode::Udiv | Opcode::Sdiv)
    }

    /// Whether this opcode transfers a double word and therefore defines or
    /// uses an even/odd register *pair*.
    pub fn is_dword(&self) -> bool {
        matches!(
            self,
            Opcode::Ldd | Opcode::LdDf | Opcode::Std | Opcode::StDf
        )
    }

    /// The kind of memory access, if any.
    pub fn mem_access(&self) -> Option<MemAccessKind> {
        use Opcode::*;
        match self {
            Ld | Ldd | LdF | LdDf => Some(MemAccessKind::Load),
            St | Std | StF | StDf => Some(MemAccessKind::Store),
            _ => None,
        }
    }

    /// Whether this instruction terminates a basic block.
    ///
    /// Branches always do. Per the paper, procedure calls and register
    /// window instructions (`save`/`restore`) also end blocks: window
    /// instructions rename physical resources, and calls are treated as
    /// barriers unless interprocedural def/use information is available.
    pub fn ends_block(&self) -> bool {
        matches!(
            self.class(),
            InsnClass::Branch | InsnClass::Call | InsnClass::Window
        )
    }

    /// Whether this control transfer has an architectural delay slot.
    pub fn has_delay_slot(&self) -> bool {
        matches!(
            self,
            Opcode::Ba | Opcode::Bicc | Opcode::Fbcc | Opcode::Call | Opcode::Jmpl
        )
    }

    /// Whether this opcode operates on floating point registers.
    pub fn is_fp(&self) -> bool {
        matches!(
            self.class(),
            InsnClass::FpAdd | InsnClass::FpMul | InsnClass::FpDiv
        ) || matches!(
            self,
            Opcode::LdF | Opcode::LdDf | Opcode::StF | Opcode::StDf
        )
    }

    /// The assembly mnemonic.
    pub fn mnemonic(&self) -> &'static str {
        use Opcode::*;
        match self {
            Add => "add",
            Sub => "sub",
            And => "and",
            Or => "or",
            Xor => "xor",
            Sll => "sll",
            Srl => "srl",
            Sra => "sra",
            AddCc => "addcc",
            SubCc => "subcc",
            Sethi => "sethi",
            Mov => "mov",
            Umul => "umul",
            Smul => "smul",
            Udiv => "udiv",
            Sdiv => "sdiv",
            RdY => "rd",
            Ld => "ld",
            Ldd => "ldd",
            LdF => "ldf",
            LdDf => "lddf",
            St => "st",
            Std => "std",
            StF => "stf",
            StDf => "stdf",
            FAddS => "fadds",
            FAddD => "faddd",
            FSubS => "fsubs",
            FSubD => "fsubd",
            FMulS => "fmuls",
            FMulD => "fmuld",
            FDivS => "fdivs",
            FDivD => "fdivd",
            FSqrtD => "fsqrtd",
            FMovS => "fmovs",
            FNegS => "fnegs",
            FAbsS => "fabss",
            FCmpS => "fcmps",
            FCmpD => "fcmpd",
            FiToS => "fitos",
            FiToD => "fitod",
            FsToD => "fstod",
            FdToS => "fdtos",
            FsToI => "fstoi",
            FdToI => "fdtoi",
            Ba => "ba",
            Bicc => "bicc",
            Fbcc => "fbcc",
            Call => "call",
            Jmpl => "jmpl",
            Save => "save",
            Restore => "restore",
            Nop => "nop",
        }
    }

    /// Look up an opcode by mnemonic (case-insensitive). Common SPARC
    /// branch spellings (`be`, `bne`, `bg`, …) map to [`Opcode::Bicc`], FP
    /// branch spellings (`fbe`, `fbne`, …) to [`Opcode::Fbcc`], and `ret`
    /// to [`Opcode::Jmpl`].
    pub fn from_mnemonic(s: &str) -> Option<Opcode> {
        let lower = s.to_ascii_lowercase();
        for op in Opcode::ALL {
            if op.mnemonic() == lower {
                return Some(*op);
            }
        }
        match lower.as_str() {
            "be" | "bne" | "bg" | "bge" | "bl" | "ble" | "bgu" | "bleu" | "bcs" | "bcc"
            | "bneg" | "bpos" | "bvs" | "bvc" | "b" => Some(Opcode::Bicc),
            "fbe" | "fbne" | "fbg" | "fbge" | "fbl" | "fble" | "fbu" | "fbo" => Some(Opcode::Fbcc),
            "ret" | "retl" => Some(Opcode::Jmpl),
            "cmp" => Some(Opcode::SubCc),
            "fcmped" => Some(Opcode::FCmpD),
            "fcmpes" => Some(Opcode::FCmpS),
            _ => None,
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_every_opcode_once() {
        let mut seen = std::collections::HashSet::new();
        for op in Opcode::ALL {
            assert!(seen.insert(*op), "duplicate in ALL: {op:?}");
        }
        assert_eq!(Opcode::ALL.len(), 53);
    }

    #[test]
    fn mnemonic_roundtrip() {
        for op in Opcode::ALL {
            let parsed = Opcode::from_mnemonic(op.mnemonic());
            assert_eq!(parsed, Some(*op), "mnemonic {}", op.mnemonic());
        }
    }

    #[test]
    fn branch_aliases_parse() {
        assert_eq!(Opcode::from_mnemonic("bne"), Some(Opcode::Bicc));
        assert_eq!(Opcode::from_mnemonic("FBE"), Some(Opcode::Fbcc));
        assert_eq!(Opcode::from_mnemonic("ret"), Some(Opcode::Jmpl));
        assert_eq!(Opcode::from_mnemonic("cmp"), Some(Opcode::SubCc));
        assert_eq!(Opcode::from_mnemonic("bogus"), None);
    }

    #[test]
    fn figure1_latencies() {
        // The paper's Figure 1 uses a 20-cycle FP divide and 4-cycle FP add.
        assert_eq!(Opcode::FDivD.default_latency(), 20);
        assert_eq!(Opcode::FAddD.default_latency(), 4);
    }

    #[test]
    fn block_ending_opcodes() {
        assert!(Opcode::Bicc.ends_block());
        assert!(Opcode::Call.ends_block());
        assert!(Opcode::Save.ends_block());
        assert!(Opcode::Restore.ends_block());
        assert!(!Opcode::Add.ends_block());
        assert!(!Opcode::Ld.ends_block());
    }

    #[test]
    fn delay_slots() {
        assert!(Opcode::Ba.has_delay_slot());
        assert!(Opcode::Call.has_delay_slot());
        assert!(!Opcode::Save.has_delay_slot());
        assert!(!Opcode::Add.has_delay_slot());
    }

    #[test]
    fn cc_effects() {
        assert!(Opcode::SubCc.sets_icc());
        assert!(Opcode::FCmpD.sets_fcc());
        assert!(Opcode::Bicc.reads_icc());
        assert!(Opcode::Fbcc.reads_fcc());
        assert!(!Opcode::Add.sets_icc());
    }

    #[test]
    fn dword_and_mem_kinds() {
        assert!(Opcode::LdDf.is_dword());
        assert_eq!(Opcode::LdDf.mem_access(), Some(MemAccessKind::Load));
        assert_eq!(Opcode::StDf.mem_access(), Some(MemAccessKind::Store));
        assert_eq!(Opcode::FAddD.mem_access(), None);
    }

    #[test]
    fn class_partition() {
        assert_eq!(Opcode::Umul.class(), InsnClass::IntMulDiv);
        assert_eq!(Opcode::FDivD.class(), InsnClass::FpDiv);
        assert_eq!(Opcode::FMulD.class(), InsnClass::FpMul);
        assert_eq!(Opcode::FCmpD.class(), InsnClass::FpAdd);
        assert_eq!(Opcode::Ld.class(), InsnClass::Mem);
    }

    #[test]
    fn y_register_effects() {
        assert!(Opcode::Umul.sets_y());
        assert!(Opcode::Sdiv.reads_y());
        assert!(Opcode::RdY.reads_y());
        assert!(!Opcode::Add.sets_y());
    }
}
