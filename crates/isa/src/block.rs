//! Programs and basic-block partitioning.

use std::fmt;
use std::ops::Range;

use crate::insn::Instruction;
use crate::memexpr::MemExprPool;

/// A straight-line instruction stream plus its interned memory expressions.
///
/// ```
/// use dagsched_isa::{Instruction, Opcode, Program, Reg};
/// let mut p = Program::new();
/// p.push(Instruction::int3(Opcode::Add, Reg::o(0), Reg::o(1), Reg::o(2)));
/// p.push(Instruction::branch(Opcode::Bicc));
/// p.push(Instruction::nop()); // delay slot: counted with the NEXT block
/// p.push(Instruction::int3(Opcode::Sub, Reg::o(0), Reg::o(1), Reg::o(3)));
/// let blocks = p.basic_blocks();
/// assert_eq!(blocks.len(), 2);
/// assert_eq!(blocks[0].len(), 2); // add + branch
/// assert_eq!(blocks[1].len(), 2); // delay-slot nop + sub
/// ```
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// The instructions, in original order.
    pub insns: Vec<Instruction>,
    /// Interned symbolic memory address expressions.
    pub mem_exprs: MemExprPool,
}

impl Program {
    /// An empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Append an instruction, assigning its
    /// [`orig_index`](Instruction::orig_index).
    pub fn push(&mut self, mut insn: Instruction) {
        insn.orig_index = self.insns.len() as u32;
        self.insns.push(insn);
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Partition the program into basic blocks using the paper's
    /// conventions:
    ///
    /// * branches, calls, indirect jumps and register-window instructions
    ///   (`save`/`restore`) end a block;
    /// * the delay-slot instruction following a delayed control transfer is
    ///   counted with the *following* block (Table 3's counting rule);
    /// * a trailing run of instructions with no terminator forms a final
    ///   block.
    pub fn basic_blocks(&self) -> Vec<BasicBlock> {
        let mut blocks = Vec::new();
        let mut start = 0usize;
        for (i, insn) in self.insns.iter().enumerate() {
            if insn.opcode.ends_block() {
                blocks.push(BasicBlock {
                    range: start..i + 1,
                });
                start = i + 1;
            }
        }
        if start < self.insns.len() {
            blocks.push(BasicBlock {
                range: start..self.insns.len(),
            });
        }
        blocks
    }

    /// The instructions of `block`.
    pub fn block_insns(&self, block: &BasicBlock) -> &[Instruction] {
        &self.insns[block.range.clone()]
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for insn in &self.insns {
            writeln!(f, "    {insn}")?;
        }
        Ok(())
    }
}

/// A maximal straight-line region: a contiguous index range of a
/// [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Index range into [`Program::insns`].
    pub range: Range<usize>,
}

impl BasicBlock {
    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// Whether the block is empty (never produced by the partitioner).
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::Opcode;
    use crate::reg::Reg;

    fn alu(d: u8) -> Instruction {
        Instruction::int3(Opcode::Add, Reg::o(0), Reg::o(1), Reg::o(d))
    }

    #[test]
    fn push_assigns_orig_index() {
        let mut p = Program::new();
        p.push(alu(2));
        p.push(alu(3));
        assert_eq!(p.insns[0].orig_index, 0);
        assert_eq!(p.insns[1].orig_index, 1);
    }

    #[test]
    fn straight_line_is_one_block() {
        let mut p = Program::new();
        for _ in 0..5 {
            p.push(alu(2));
        }
        let blocks = p.basic_blocks();
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].len(), 5);
    }

    #[test]
    fn branch_ends_block_delay_slot_counts_forward() {
        let mut p = Program::new();
        p.push(alu(2));
        p.push(Instruction::branch(Opcode::Ba));
        p.push(Instruction::nop()); // delay slot
        p.push(alu(3));
        let blocks = p.basic_blocks();
        assert_eq!(blocks.len(), 2);
        assert_eq!(p.block_insns(&blocks[0]).len(), 2);
        assert_eq!(p.block_insns(&blocks[1])[0].opcode, Opcode::Nop);
    }

    #[test]
    fn call_and_window_ops_end_blocks() {
        let mut p = Program::new();
        p.push(Instruction::new(Opcode::Save));
        p.push(alu(2));
        p.push(Instruction::branch(Opcode::Call));
        p.push(alu(3));
        p.push(Instruction::new(Opcode::Restore));
        let blocks = p.basic_blocks();
        // save | add call | add restore
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0].len(), 1);
        assert_eq!(blocks[1].len(), 2);
        assert_eq!(blocks[2].len(), 2);
    }

    #[test]
    fn trailing_terminator_leaves_no_empty_block() {
        let mut p = Program::new();
        p.push(alu(2));
        p.push(Instruction::branch(Opcode::Ba));
        let blocks = p.basic_blocks();
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].len(), 2);
    }

    #[test]
    fn empty_program_has_no_blocks() {
        assert!(Program::new().basic_blocks().is_empty());
    }
}
