//! Plain-text table rendering for the experiment harness.

use std::fmt;

/// A simple right-aligned ASCII table (first column left-aligned, like
/// the paper's benchmark-name column).
///
/// ```
/// use dagsched_stats::Table;
/// let mut t = Table::new(vec!["benchmark".into(), "insts".into()]);
/// t.row(vec!["grep".into(), "1739".into()]);
/// let text = t.to_string();
/// assert!(text.contains("grep"));
/// assert!(text.contains("1739"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: Vec<String>) -> Table {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Append a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                if i == 0 {
                    write!(f, "{c:<width$}", width = widths[i])?;
                } else {
                    write!(f, "{c:>width$}", width = widths[i])?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name".into(), "n".into()]);
        t.row(vec!["a".into(), "1".into()])
            .row(vec!["long-name".into(), "12345".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4); // header, rule, two rows
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Numeric column right-aligned: "1" ends where "12345" ends.
        assert_eq!(lines[2].len(), lines[3].len());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["x".into(), "y".into()]);
    }
}
