//! Timing harness.
//!
//! The paper's methodology (§6): timings "collected using /usr/bin/time
//! ... and taking the average of user + sys over five runs". The modern
//! equivalent here is a monotonic-clock average over `runs` executions.

use std::time::{Duration, Instant};

/// A timed result: the value of the last run and the mean wall-clock
/// duration.
#[derive(Debug, Clone)]
pub struct Timed<T> {
    /// Result of the final run.
    pub value: T,
    /// Mean duration over all runs.
    pub avg: Duration,
    /// Number of runs averaged.
    pub runs: u32,
}

impl<T> Timed<T> {
    /// Mean duration in (fractional) seconds.
    pub fn secs(&self) -> f64 {
        self.avg.as_secs_f64()
    }

    /// Mean duration in milliseconds.
    pub fn millis(&self) -> f64 {
        self.avg.as_secs_f64() * 1e3
    }
}

/// Run `f` `runs` times and average the wall-clock durations.
///
/// # Panics
///
/// Panics if `runs == 0`.
pub fn time_avg<T>(runs: u32, mut f: impl FnMut() -> T) -> Timed<T> {
    assert!(runs > 0, "need at least one run");
    let mut total = Duration::ZERO;
    let mut value = None;
    for _ in 0..runs {
        let start = Instant::now();
        value = Some(f());
        total += start.elapsed();
    }
    Timed {
        value: value.expect("runs > 0"),
        avg: total / runs,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_over_runs_and_returns_last_value() {
        let mut calls = 0;
        let t = time_avg(5, || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 5);
        assert_eq!(t.value, 5);
        assert_eq!(t.runs, 5);
        assert!(t.secs() >= 0.0);
        assert!((t.millis() - t.secs() * 1e3).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_panics() {
        let _ = time_avg(0, || ());
    }
}
