//! Structural statistics over blocks and DAGs.

use std::collections::HashSet;

use dagsched_core::Dag;
use dagsched_isa::{BasicBlock, Program};

/// A `(max, avg)` pair, the shape of every statistics column in the
/// paper's Tables 3–5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Maximum observed value.
    pub max: f64,
    /// Mean value.
    pub avg: f64,
}

impl Summary {
    /// Summarize a sequence of observations. Empty input yields zeros.
    pub fn of(values: impl IntoIterator<Item = f64>) -> Summary {
        let mut max = 0.0f64;
        let mut sum = 0.0f64;
        let mut n = 0usize;
        for v in values {
            max = max.max(v);
            sum += v;
            n += 1;
        }
        Summary {
            max,
            avg: if n == 0 { 0.0 } else { sum / n as f64 },
        }
    }
}

/// Table 3: per-benchmark block structure.
#[derive(Debug, Clone)]
pub struct BlockStructure {
    /// Number of basic blocks.
    pub blocks: usize,
    /// Total instructions.
    pub insts: usize,
    /// Instructions per block.
    pub insts_per_block: Summary,
    /// Unique symbolic memory expressions per block.
    pub mem_exprs_per_block: Summary,
}

/// Compute the Table 3 statistics for a program's block structure.
pub fn block_structure(program: &Program, blocks: &[BasicBlock]) -> BlockStructure {
    let sizes: Vec<f64> = blocks.iter().map(|b| b.len() as f64).collect();
    let uniques: Vec<f64> = blocks
        .iter()
        .map(|b| {
            let mut set = HashSet::new();
            for insn in program.block_insns(b) {
                if let Some(m) = &insn.mem {
                    set.insert(m.expr);
                }
            }
            set.len() as f64
        })
        .collect();
    BlockStructure {
        blocks: blocks.len(),
        insts: blocks.iter().map(|b| b.len()).sum(),
        insts_per_block: Summary::of(sizes),
        mem_exprs_per_block: Summary::of(uniques),
    }
}

/// Tables 4–5: DAG structure aggregated over a benchmark's blocks.
#[derive(Debug, Clone, Default)]
pub struct DagStructure {
    /// Children per instruction (out-degree), max and running totals.
    max_children: usize,
    total_children: usize,
    total_insts: usize,
    /// Arcs per block.
    max_arcs: usize,
    total_arcs: usize,
    blocks: usize,
}

impl DagStructure {
    /// An empty accumulator.
    pub fn new() -> DagStructure {
        DagStructure::default()
    }

    /// Fold one block's DAG into the statistics.
    pub fn add_dag(&mut self, dag: &Dag) {
        let n = dag.node_count();
        self.total_insts += n;
        self.total_arcs += dag.arc_count();
        self.max_arcs = self.max_arcs.max(dag.arc_count());
        self.blocks += 1;
        for node in dag.node_ids() {
            let c = dag.num_children(node);
            self.max_children = self.max_children.max(c);
            self.total_children += c;
        }
    }

    /// Fold another accumulator into this one: totals and block counts
    /// add, maxima take the maximum. Merging per-worker accumulators in
    /// any order yields the same result as folding every DAG into one
    /// accumulator serially.
    pub fn merge(&mut self, other: &DagStructure) {
        self.max_children = self.max_children.max(other.max_children);
        self.total_children += other.total_children;
        self.total_insts += other.total_insts;
        self.max_arcs = self.max_arcs.max(other.max_arcs);
        self.total_arcs += other.total_arcs;
        self.blocks += other.blocks;
    }

    /// Children per instruction, `(max, avg)`.
    pub fn children_per_inst(&self) -> Summary {
        Summary {
            max: self.max_children as f64,
            avg: if self.total_insts == 0 {
                0.0
            } else {
                self.total_children as f64 / self.total_insts as f64
            },
        }
    }

    /// Arcs per basic block, `(max, avg)`.
    pub fn arcs_per_block(&self) -> Summary {
        Summary {
            max: self.max_arcs as f64,
            avg: if self.blocks == 0 {
                0.0
            } else {
                self.total_arcs as f64 / self.blocks as f64
            },
        }
    }

    /// Number of blocks folded in.
    pub fn blocks(&self) -> usize {
        self.blocks
    }
}

/// One-shot DAG structure for a collection of DAGs.
pub fn dag_structure<'a>(dags: impl IntoIterator<Item = &'a Dag>) -> DagStructure {
    let mut s = DagStructure::new();
    for d in dags {
        s.add_dag(d);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_core::NodeId;
    use dagsched_isa::{DepKind, Instruction, MemExprPool, MemRef, Opcode, Reg};

    #[test]
    fn summary_of_values() {
        let s = Summary::of([1.0, 2.0, 3.0]);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.avg, 2.0);
        let empty = Summary::of(std::iter::empty());
        assert_eq!(empty.max, 0.0);
        assert_eq!(empty.avg, 0.0);
    }

    #[test]
    fn block_structure_counts_unique_exprs() {
        let mut p = Program::new();
        let mut pool = MemExprPool::new();
        let e1 = pool.intern("[%fp-8]");
        let e2 = pool.intern("[%fp-16]");
        p.mem_exprs = pool;
        p.push(Instruction::load(
            Opcode::Ld,
            MemRef::base_offset(Reg::fp(), -8, e1),
            Reg::o(0),
        ));
        p.push(Instruction::load(
            Opcode::Ld,
            MemRef::base_offset(Reg::fp(), -8, e1),
            Reg::o(1),
        ));
        p.push(Instruction::store(
            Opcode::St,
            Reg::o(1),
            MemRef::base_offset(Reg::fp(), -16, e2),
        ));
        p.push(Instruction::branch(Opcode::Ba));
        p.push(Instruction::nop());
        let blocks = p.basic_blocks();
        let s = block_structure(&p, &blocks);
        assert_eq!(s.blocks, 2);
        assert_eq!(s.insts, 5);
        assert_eq!(s.insts_per_block.max, 4.0);
        assert_eq!(s.mem_exprs_per_block.max, 2.0, "e1 counted once");
        assert_eq!(s.mem_exprs_per_block.avg, 1.0);
    }

    #[test]
    fn merge_matches_serial_accumulation() {
        let mut d1 = Dag::new(3);
        d1.add_arc(NodeId::new(0), NodeId::new(1), DepKind::Raw, 1);
        d1.add_arc(NodeId::new(0), NodeId::new(2), DepKind::Raw, 1);
        let mut d2 = Dag::new(2);
        d2.add_arc(NodeId::new(0), NodeId::new(1), DepKind::War, 1);
        let serial = dag_structure([&d1, &d2]);
        let mut merged = dag_structure([&d1]);
        merged.merge(&dag_structure([&d2]));
        assert_eq!(serial.children_per_inst(), merged.children_per_inst());
        assert_eq!(serial.arcs_per_block(), merged.arcs_per_block());
        assert_eq!(serial.blocks(), merged.blocks());
    }

    #[test]
    fn dag_structure_accumulates() {
        let mut d1 = Dag::new(3);
        d1.add_arc(NodeId::new(0), NodeId::new(1), DepKind::Raw, 1);
        d1.add_arc(NodeId::new(0), NodeId::new(2), DepKind::Raw, 1);
        let d2 = Dag::new(2); // no arcs
        let s = dag_structure([&d1, &d2]);
        assert_eq!(s.children_per_inst().max, 2.0);
        assert_eq!(s.children_per_inst().avg, 2.0 / 5.0);
        assert_eq!(s.arcs_per_block().max, 2.0);
        assert_eq!(s.arcs_per_block().avg, 1.0);
        assert_eq!(s.blocks(), 2);
    }
}
