//! Percentile extraction over sorted latency samples.
//!
//! Shared by the `loadgen` harness and anything else summarizing
//! latency windows. The estimator is nearest-rank with rounding
//! (`round((n-1) * p/100)`), which is exact on the degenerate windows
//! a short measurement produces: an empty window reads as 0, a
//! one-sample window returns that sample for every percentile, and a
//! two-sample window splits at p50.

/// The `p`-th percentile (0..=100) of an ascending-sorted sample
/// window, by the nearest-rank-with-rounding rule. Out-of-range `p` is
/// clamped to the window; an empty window reads as 0.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let pos = (sorted.len() - 1) as f64 * p.max(0.0) / 100.0;
    let idx = pos.round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_reads_zero() {
        for p in [0.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(percentile(&[], p), 0);
        }
    }

    #[test]
    fn one_sample_window_is_that_sample_at_every_percentile() {
        for p in [0.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(percentile(&[42], p), 42);
        }
    }

    #[test]
    fn two_sample_window_splits_at_the_median() {
        let w = [10, 20];
        assert_eq!(percentile(&w, 0.0), 10);
        assert_eq!(percentile(&w, 49.0), 10, "below the midpoint rounds down");
        assert_eq!(percentile(&w, 50.0), 20, "0.5 rounds half-up");
        assert_eq!(percentile(&w, 95.0), 20);
        assert_eq!(percentile(&w, 99.0), 20);
        assert_eq!(percentile(&w, 100.0), 20);
    }

    #[test]
    fn known_positions_on_a_larger_window() {
        // 101 samples 0..=100: percentile == value.
        let w: Vec<u64> = (0..=100).collect();
        assert_eq!(percentile(&w, 0.0), 0);
        assert_eq!(percentile(&w, 50.0), 50);
        assert_eq!(percentile(&w, 95.0), 95);
        assert_eq!(percentile(&w, 99.0), 99);
        assert_eq!(percentile(&w, 100.0), 100);
    }

    #[test]
    fn out_of_range_p_is_clamped_not_a_panic() {
        let w = [1, 2, 3];
        assert_eq!(percentile(&w, -5.0), 1);
        assert_eq!(percentile(&w, 250.0), 3);
    }

    #[test]
    fn duplicate_heavy_windows_stay_monotone() {
        let w = [5, 5, 5, 5, 9];
        let mut last = 0;
        for p in 0..=100 {
            let v = percentile(&w, p as f64);
            assert!(v >= last, "p{p}: {v} < {last}");
            last = v;
        }
        assert_eq!(percentile(&w, 99.0), 9);
    }
}
