//! Measurement support for the `dagsched` experiments: the structural
//! statistics of the paper's Tables 3–5, a timing harness matching its
//! methodology (average of repeated runs), and an ASCII table renderer.

mod percentile;
mod render;
mod structure;
mod timing;

pub use percentile::percentile;
pub use render::Table;
pub use structure::{block_structure, dag_structure, BlockStructure, DagStructure, Summary};
pub use timing::{time_avg, Timed};
