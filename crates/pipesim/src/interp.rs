//! An architectural interpreter for semantic-equivalence checking.
//!
//! Instruction scheduling must preserve program meaning; so must the
//! register allocator's renaming and spill code. This module executes
//! straight-line instruction sequences over concrete machine state so
//! tests can assert the strongest property available: *running the
//! transformed code produces the same memory image and live-out values as
//! the original*, for arbitrary initial states.
//!
//! Modelling notes:
//!
//! * Memory is addressed by symbolic-expression identity ([`MemExprId`]),
//!   mirroring the dependence analysis: expressions the analysis treats
//!   as distinct locations are distinct cells here, so any reordering the
//!   analysis allows is semantically harmless exactly when this
//!   interpreter says so.
//! * Floating point is IEEE `f64`; schedulers never reassociate, so
//!   results of reordered independent operations are bit-identical.
//! * Division by zero is total (defined results) to keep random testing
//!   crash-free.
//! * Control transfers and window instructions are executed as no-ops
//!   (the executor is for straight-line block bodies).

use std::collections::HashMap;

use dagsched_isa::{Instruction, MemExprId, Opcode, Reg};

/// Concrete machine state.
///
/// Equality is **bit-exact**: floating point registers compare by bit
/// pattern, so two identical executions compare equal even when an
/// operation produced NaN (IEEE `==` would say otherwise).
#[derive(Debug, Clone)]
pub struct MachineState {
    /// Integer registers (`%g0` is forced to zero on read).
    pub int_regs: [i64; 32],
    /// Floating point registers.
    pub fp_regs: [f64; 32],
    /// Integer condition codes (sign of last compare).
    pub icc: i8,
    /// FP condition codes.
    pub fcc: i8,
    /// The `%y` register.
    pub y: i64,
    /// Memory cells by symbolic expression identity. Integer and FP
    /// traffic share cells via bit patterns.
    pub mem: HashMap<MemExprId, u64>,
}

impl PartialEq for MachineState {
    fn eq(&self, other: &MachineState) -> bool {
        self.int_regs == other.int_regs
            && self
                .fp_regs
                .iter()
                .zip(&other.fp_regs)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && self.icc == other.icc
            && self.fcc == other.fcc
            && self.y == other.y
            && self.mem == other.mem
    }
}

impl Eq for MachineState {}

impl MachineState {
    /// All-zero state.
    pub fn zeroed() -> MachineState {
        MachineState {
            int_regs: [0; 32],
            fp_regs: [0.0; 32],
            icc: 0,
            fcc: 0,
            y: 0,
            mem: HashMap::new(),
        }
    }

    /// A deterministic pseudo-random state: every register and the given
    /// memory cells populated from `seed` (splitmix64).
    pub fn random(seed: u64, mem_cells: impl IntoIterator<Item = MemExprId>) -> MachineState {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let mut st = MachineState::zeroed();
        for r in st.int_regs.iter_mut().skip(1) {
            *r = next() as i64;
        }
        for f in st.fp_regs.iter_mut() {
            // Map into a tame range to avoid NaN/inf noise in comparisons.
            *f = (next() % 10_000) as f64 / 16.0;
        }
        st.y = next() as i64;
        for cell in mem_cells {
            st.mem.insert(cell, next());
        }
        st
    }

    fn read_int(&self, r: Reg) -> i64 {
        match r {
            Reg::Int(0) => 0,
            Reg::Int(n) => self.int_regs[n as usize],
            Reg::Y => self.y,
            _ => 0,
        }
    }

    fn write_int(&mut self, r: Reg, v: i64) {
        match r {
            Reg::Int(0) => {}
            Reg::Int(n) => self.int_regs[n as usize] = v,
            Reg::Y => self.y = v,
            _ => {}
        }
    }

    fn read_fp(&self, r: Reg) -> f64 {
        match r {
            Reg::Fp(n) => self.fp_regs[n as usize],
            _ => 0.0,
        }
    }

    fn write_fp(&mut self, r: Reg, v: f64) {
        if let Reg::Fp(n) = r {
            self.fp_regs[n as usize] = v;
        }
    }
}

fn total_sdiv(a: i64, b: i64) -> i64 {
    if b == 0 {
        -1
    } else {
        a.wrapping_div(b)
    }
}

fn total_udiv(a: i64, b: i64) -> i64 {
    if b == 0 {
        -1
    } else {
        ((a as u64) / (b as u64)) as i64
    }
}

/// Execute one instruction.
pub fn step(state: &mut MachineState, insn: &Instruction) {
    use Opcode::*;
    let rs = |k: usize| insn.rs.get(k).copied();
    let src2_int = |st: &MachineState| -> i64 {
        match (rs(1), insn.imm) {
            (Some(r), _) => st.read_int(r),
            (None, Some(imm)) => imm,
            _ => 0,
        }
    };
    match insn.opcode {
        Add | AddCc => {
            let v = state.read_int(rs(0).unwrap()).wrapping_add(src2_int(state));
            if insn.opcode == AddCc {
                state.icc = v.signum() as i8;
            }
            if let Some(rd) = insn.rd {
                state.write_int(rd, v);
            }
        }
        Sub | SubCc => {
            let v = state.read_int(rs(0).unwrap()).wrapping_sub(src2_int(state));
            if insn.opcode == SubCc {
                state.icc = v.signum() as i8;
            }
            if let Some(rd) = insn.rd {
                state.write_int(rd, v);
            }
        }
        And => bin_int(state, insn, |a, b| a & b),
        Or => bin_int(state, insn, |a, b| a | b),
        Xor => bin_int(state, insn, |a, b| a ^ b),
        Sll => bin_int(state, insn, |a, b| a.wrapping_shl((b & 63) as u32)),
        Srl => bin_int(state, insn, |a, b| ((a as u64) >> ((b & 63) as u64)) as i64),
        Sra => bin_int(state, insn, |a, b| a.wrapping_shr((b & 63) as u32)),
        Sethi => {
            if let (Some(rd), Some(imm)) = (insn.rd, insn.imm) {
                state.write_int(rd, imm.wrapping_shl(10));
            }
        }
        Mov => {
            if let Some(rd) = insn.rd {
                let v = match (rs(0), insn.imm) {
                    (Some(r), _) => state.read_int(r),
                    (None, Some(imm)) => imm,
                    _ => 0,
                };
                state.write_int(rd, v);
            }
        }
        Umul | Smul => {
            let (a, b) = (state.read_int(rs(0).unwrap()), src2_int(state));
            let wide = (a as i128).wrapping_mul(b as i128);
            state.y = (wide >> 64) as i64;
            if let Some(rd) = insn.rd {
                state.write_int(rd, wide as i64);
            }
        }
        Udiv => {
            let v = total_udiv(state.read_int(rs(0).unwrap()), src2_int(state));
            state.y = 0;
            if let Some(rd) = insn.rd {
                state.write_int(rd, v);
            }
        }
        Sdiv => {
            let v = total_sdiv(state.read_int(rs(0).unwrap()), src2_int(state));
            state.y = 0;
            if let Some(rd) = insn.rd {
                state.write_int(rd, v);
            }
        }
        RdY => {
            if let Some(rd) = insn.rd {
                let v = state.y;
                state.write_int(rd, v);
            }
        }
        Ld => {
            let cell = mem_cell(state, insn);
            if let Some(rd) = insn.rd {
                state.write_int(rd, cell as i64);
            }
        }
        Ldd => {
            let cell = mem_cell(state, insn);
            if let Some(rd) = insn.rd {
                state.write_int(rd, cell as i64);
                if let Some(hi) = rd.pair_partner() {
                    state.write_int(hi, (cell as i64).rotate_left(32));
                }
            }
        }
        LdF => {
            // Exact inverse of `StF` for finite values (so spill/reload
            // round-trips are lossless); random cells that decode to
            // NaN/inf are sanitized deterministically.
            let cell = mem_cell(state, insn);
            if let Some(rd) = insn.rd {
                let v = f64::from_bits(cell);
                let v = if v.is_finite() {
                    v
                } else {
                    (cell % 100_000) as f64 / 16.0
                };
                state.write_fp(rd, v);
            }
        }
        LdDf => {
            let cell = mem_cell(state, insn);
            if let Some(rd) = insn.rd {
                let v = (cell % 100_000) as f64 / 8.0;
                state.write_fp(rd, v);
                if let Some(hi) = rd.pair_partner() {
                    state.write_fp(hi, v + 0.5);
                }
            }
        }
        St => {
            let v = state.read_int(insn.rs[0]) as u64;
            store(state, insn, v);
        }
        Std => {
            let lo = state.read_int(insn.rs[0]) as u64;
            let hi = insn.rs[0]
                .pair_partner()
                .map(|p| state.read_int(p) as u64)
                .unwrap_or(0);
            store(state, insn, lo ^ hi.rotate_left(17));
        }
        StF => {
            let v = state.read_fp(insn.rs[0]).to_bits();
            store(state, insn, v);
        }
        StDf => {
            let lo = state.read_fp(insn.rs[0]).to_bits();
            let hi = insn.rs[0]
                .pair_partner()
                .map(|p| state.read_fp(p).to_bits())
                .unwrap_or(0);
            store(state, insn, lo ^ hi.rotate_left(21));
        }
        FAddS | FAddD => bin_fp(state, insn, |a, b| a + b),
        FSubS | FSubD => bin_fp(state, insn, |a, b| a - b),
        FMulS | FMulD => bin_fp(state, insn, |a, b| a * b),
        FDivS | FDivD => bin_fp(state, insn, |a, b| if b == 0.0 { 0.0 } else { a / b }),
        FSqrtD => un_fp(state, insn, |a| a.abs().sqrt()),
        FMovS => un_fp(state, insn, |a| a),
        FNegS => un_fp(state, insn, |a| -a),
        FAbsS => un_fp(state, insn, |a| a.abs()),
        FCmpS | FCmpD => {
            let a = state.read_fp(insn.rs[0]);
            let b = state.read_fp(insn.rs[1]);
            state.fcc = if a < b { -1 } else { i8::from(a > b) };
        }
        FiToS | FiToD => {
            // Modelled over the FP file (conversion of a staged value).
            un_fp(state, insn, |a| a.trunc())
        }
        FsToD | FdToS => un_fp(state, insn, |a| a),
        FsToI | FdToI => un_fp(state, insn, |a| a.trunc()),
        Ba | Bicc | Fbcc | Call | Jmpl | Save | Restore | Nop => {}
    }
}

fn bin_int(state: &mut MachineState, insn: &Instruction, f: impl Fn(i64, i64) -> i64) {
    let a = state.read_int(insn.rs[0]);
    let b = match (insn.rs.get(1), insn.imm) {
        (Some(&r), _) => state.read_int(r),
        (None, Some(imm)) => imm,
        _ => 0,
    };
    if let Some(rd) = insn.rd {
        state.write_int(rd, f(a, b));
    }
}

fn bin_fp(state: &mut MachineState, insn: &Instruction, f: impl Fn(f64, f64) -> f64) {
    let a = state.read_fp(insn.rs[0]);
    let b = state.read_fp(insn.rs[1]);
    if let Some(rd) = insn.rd {
        state.write_fp(rd, f(a, b));
    }
}

fn un_fp(state: &mut MachineState, insn: &Instruction, f: impl Fn(f64) -> f64) {
    let a = state.read_fp(insn.rs[0]);
    if let Some(rd) = insn.rd {
        state.write_fp(rd, f(a));
    }
}

fn mem_cell(state: &MachineState, insn: &Instruction) -> u64 {
    let expr = insn.mem.as_ref().expect("memory op").expr;
    state.mem.get(&expr).copied().unwrap_or(0)
}

fn store(state: &mut MachineState, insn: &Instruction, v: u64) {
    let expr = insn.mem.as_ref().expect("memory op").expr;
    state.mem.insert(expr, v);
}

/// Execute a straight-line sequence.
pub fn execute(insns: &[Instruction], state: &mut MachineState) {
    for insn in insns {
        step(state, insn);
    }
}

/// Run `insns` from `initial` and return the final state.
pub fn run(insns: &[Instruction], initial: &MachineState) -> MachineState {
    let mut st = initial.clone();
    execute(insns, &mut st);
    st
}

/// Compare two final states on their *memory images* (excluding the given
/// scratch cells, e.g. register-allocator spill slots) and, optionally,
/// on a set of live-out registers. Returns a description of the first
/// difference.
pub fn equivalent_observable(
    a: &MachineState,
    b: &MachineState,
    ignore_cells: &[MemExprId],
    live_out_int: &[Reg],
    live_out_fp: &[Reg],
) -> Result<(), String> {
    let keys: std::collections::BTreeSet<MemExprId> = a
        .mem
        .keys()
        .chain(b.mem.keys())
        .copied()
        .filter(|k| !ignore_cells.contains(k))
        .collect();
    for k in keys {
        let va = a.mem.get(&k).copied().unwrap_or(0);
        let vb = b.mem.get(&k).copied().unwrap_or(0);
        if va != vb {
            return Err(format!("memory cell {k} differs: {va:#x} vs {vb:#x}"));
        }
    }
    for &r in live_out_int {
        if a.read_int(r) != b.read_int(r) {
            return Err(format!(
                "{r} differs: {} vs {}",
                a.read_int(r),
                b.read_int(r)
            ));
        }
    }
    for &r in live_out_fp {
        if a.read_fp(r).to_bits() != b.read_fp(r).to_bits() {
            return Err(format!("{r} differs: {} vs {}", a.read_fp(r), b.read_fp(r)));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_isa::{MemExprPool, MemRef};

    #[test]
    fn integer_arithmetic_and_flags() {
        let mut st = MachineState::zeroed();
        st.int_regs[8] = 7; // %o0
        st.int_regs[9] = 5; // %o1
        execute(
            &[
                Instruction::int3(Opcode::Add, Reg::o(0), Reg::o(1), Reg::o(2)),
                Instruction::int_imm(Opcode::Sub, Reg::o(2), 2, Reg::o(3)),
                Instruction::cmp(Reg::o(3), Reg::o(0)),
            ],
            &mut st,
        );
        assert_eq!(st.int_regs[10], 12);
        assert_eq!(st.int_regs[11], 10);
        assert_eq!(st.icc, 1, "10 > 7");
    }

    #[test]
    fn g0_reads_zero_and_ignores_writes() {
        let mut st = MachineState::zeroed();
        st.int_regs[8] = 42;
        execute(
            &[Instruction::int3(
                Opcode::Add,
                Reg::o(0),
                Reg::g(0),
                Reg::g(0),
            )],
            &mut st,
        );
        assert_eq!(st.int_regs[0], 0);
        assert_eq!(st.read_int(Reg::g(0)), 0);
    }

    #[test]
    fn memory_round_trip() {
        let mut pool = MemExprPool::new();
        let e = pool.intern("[%fp-8]");
        let mut st = MachineState::zeroed();
        st.int_regs[8] = 1234;
        execute(
            &[
                Instruction::store(Opcode::St, Reg::o(0), MemRef::base_offset(Reg::fp(), -8, e)),
                Instruction::load(Opcode::Ld, MemRef::base_offset(Reg::fp(), -8, e), Reg::o(1)),
            ],
            &mut st,
        );
        assert_eq!(st.int_regs[9], 1234);
        assert_eq!(st.mem[&e], 1234);
    }

    #[test]
    fn fp_pipeline_and_compare() {
        let mut st = MachineState::zeroed();
        st.fp_regs[0] = 6.0;
        st.fp_regs[2] = 3.0;
        execute(
            &[
                Instruction::fp3(Opcode::FDivD, Reg::f(0), Reg::f(2), Reg::f(4)),
                Instruction::fp3(Opcode::FMulD, Reg::f(4), Reg::f(2), Reg::f(6)),
                Instruction::fcmp(Opcode::FCmpD, Reg::f(6), Reg::f(0)),
            ],
            &mut st,
        );
        assert_eq!(st.fp_regs[4], 2.0);
        assert_eq!(st.fp_regs[6], 6.0);
        assert_eq!(st.fcc, 0, "equal");
    }

    #[test]
    fn division_is_total() {
        let mut st = MachineState::zeroed();
        st.int_regs[8] = 10;
        execute(
            &[
                Instruction::int3(Opcode::Sdiv, Reg::o(0), Reg::g(0), Reg::o(1)),
                Instruction::fp3(Opcode::FDivD, Reg::f(0), Reg::f(2), Reg::f(4)),
            ],
            &mut st,
        );
        assert_eq!(st.int_regs[9], -1);
        assert_eq!(st.fp_regs[4], 0.0);
    }

    #[test]
    fn random_state_is_deterministic() {
        let mut pool = MemExprPool::new();
        let e = pool.intern("x");
        let a = MachineState::random(7, [e]);
        let b = MachineState::random(7, [e]);
        assert_eq!(a, b);
        let c = MachineState::random(8, [e]);
        assert_ne!(a, c);
        assert_eq!(a.int_regs[0], 0, "g0 stays zero");
    }

    #[test]
    fn observable_equivalence_ignores_scratch_cells() {
        let mut pool = MemExprPool::new();
        let real = pool.intern("[%fp-8]");
        let spill = pool.intern("[%fp-spill0]");
        let mut a = MachineState::zeroed();
        a.mem.insert(real, 5);
        let mut b = a.clone();
        b.mem.insert(spill, 99);
        assert!(equivalent_observable(&a, &b, &[spill], &[], &[]).is_ok());
        assert!(equivalent_observable(&a, &b, &[], &[], &[]).is_err());
        b.mem.insert(real, 6);
        assert!(equivalent_observable(&a, &b, &[spill], &[], &[]).is_err());
    }

    #[test]
    fn dword_pairs_are_deterministic_functions_of_the_cell() {
        let mut pool = MemExprPool::new();
        let e = pool.intern("[%o0]");
        let mut st = MachineState::zeroed();
        st.mem.insert(e, 0xdeadbeef);
        let ld = Instruction::load(
            Opcode::LdDf,
            MemRef::base_offset(Reg::o(0), 0, e),
            Reg::f(2),
        );
        step(&mut st, &ld);
        assert_eq!(st.fp_regs[3], st.fp_regs[2] + 0.5);
        let mut st2 = MachineState::zeroed();
        st2.mem.insert(e, 0xdeadbeef);
        step(&mut st2, &ld);
        assert_eq!(st.fp_regs[2].to_bits(), st2.fp_regs[2].to_bits());
    }
}
