//! In-order pipeline timing simulator.
//!
//! The paper motivates instruction scheduling by the stall cycles an
//! in-order pipeline suffers on dependent or structurally conflicting
//! instructions, but measures only scheduler *cost*. This crate supplies
//! the downstream half: given an instruction sequence (original program
//! order or a scheduler's output), it simulates an in-order machine built
//! from the same [`MachineModel`] that weighted the DAG arcs and reports
//! cycles and a stall breakdown.
//!
//! The simulator is deliberately independent of the DAG: it rediscovers
//! dependencies from architectural state (a resource scoreboard plus the
//! memory disambiguation policy), so it doubles as an oracle in tests —
//! a valid schedule must never run longer than its DAG critical path
//! suggests impossible, and never violate a dependence.
//!
//! # Example
//!
//! ```
//! use dagsched_isa::{Instruction, MachineModel, Opcode, Program, Reg};
//! use dagsched_pipesim::{simulate, SimOptions};
//!
//! let mut p = Program::new();
//! // A divide feeding an add: the add stalls until the divide finishes.
//! p.push(Instruction::fp3(Opcode::FDivD, Reg::f(0), Reg::f(2), Reg::f(4)));
//! p.push(Instruction::fp3(Opcode::FAddD, Reg::f(4), Reg::f(6), Reg::f(8)));
//! let report = simulate(&p.insns, &MachineModel::sparc2(), SimOptions::default());
//! assert_eq!(report.issue_cycle, vec![0, 20]);
//! assert_eq!(report.data_stalls, 19);
//! ```

pub mod interp;

use std::collections::HashMap;

use dagsched_core::{MemDepPolicy, MemKey};
use dagsched_isa::{FuncUnit, Instruction, MachineModel, MemAccessKind, Resource};

/// Simulation options.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Memory disambiguation the *hardware* is assumed to perform. The
    /// conservative default serializes all memory traffic, like a simple
    /// in-order load/store unit.
    pub mem_policy: MemDepPolicy,
    /// Instructions issued per cycle (the machine model's width is used
    /// when `None`). Multi-issue requires distinct function units per
    /// slot, which is what makes the "alternate type" heuristic pay off.
    pub issue_width: Option<u32>,
}

impl Default for SimOptions {
    fn default() -> SimOptions {
        SimOptions {
            mem_policy: MemDepPolicy::SingleResource,
            issue_width: None,
        }
    }
}

/// Why an instruction was delayed (its binding constraint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallCause {
    /// No delay: issued at the earliest in-order opportunity.
    None,
    /// Waiting for an operand (RAW) or an ordering hazard (WAR/WAW).
    Data,
    /// Waiting for a busy (unpipelined) function unit or an issue slot.
    Structural,
}

/// The result of simulating one instruction sequence.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Issue cycle per instruction, in sequence order.
    pub issue_cycle: Vec<u64>,
    /// The binding constraint of each instruction.
    pub stall_cause: Vec<StallCause>,
    /// Total completion time (last writeback).
    pub cycles: u64,
    /// Cycles lost to data hazards.
    pub data_stalls: u64,
    /// Cycles lost to structural hazards.
    pub struct_stalls: u64,
}

impl SimReport {
    /// Total stall cycles of any kind.
    pub fn total_stalls(&self) -> u64 {
        self.data_stalls + self.struct_stalls
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.issue_cycle.len() as f64 / self.cycles as f64
        }
    }
}

/// Render a simulation as an ASCII issue timeline: one row per
/// instruction, `I` at the issue cycle, `=` through the execution
/// latency, with the stall cause flagged. Rows are clamped to `width`
/// columns (long timelines get a `>` continuation mark).
pub fn render_timeline(
    insns: &[Instruction],
    model: &MachineModel,
    report: &SimReport,
    width: usize,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let width = width.max(16);
    for (i, insn) in insns.iter().enumerate() {
        let issue = report.issue_cycle[i] as usize;
        let lat = model.exec_latency(insn) as usize;
        let mut lane = String::new();
        for c in 0..width {
            lane.push(if c == issue {
                'I'
            } else if c > issue && c < issue + lat {
                '='
            } else {
                '.'
            });
        }
        if issue + lat > width {
            lane.pop();
            lane.push('>');
        }
        let cause = match report.stall_cause[i] {
            StallCause::None => ' ',
            StallCause::Data => 'd',
            StallCause::Structural => 's',
        };
        let _ = writeln!(out, "{i:>3} {cause} |{lane}| {insn}");
    }
    let _ = writeln!(
        out,
        "      {} cycles, {} data stalls, {} structural stalls",
        report.cycles, report.data_stalls, report.struct_stalls
    );
    out
}

#[derive(Debug, Default)]
struct Scoreboard {
    // Per register resource: (producer issue cycle, producer index).
    reg_writer: HashMap<Resource, (u64, usize)>,
    reg_readers: HashMap<Resource, Vec<(u64, usize)>>,
    // Memory accesses seen so far: (key, kind, issue cycle, index).
    mem_accesses: Vec<(MemKey, MemAccessKind, u64, usize)>,
}

/// Simulate executing `insns` in the given order on an in-order machine.
///
/// Each instruction issues at the earliest cycle satisfying, in order of
/// accounting priority: program order (in-order issue, bounded by issue
/// width), data hazards (RAW against producers with the model's
/// full bypass-adjusted latencies, WAR/WAW with short delays), and
/// structural hazards (unpipelined units, per-cycle unit conflicts).
pub fn simulate(insns: &[Instruction], model: &MachineModel, opts: SimOptions) -> SimReport {
    let width = opts.issue_width.unwrap_or(model.issue_width()).max(1) as u64;
    let mut board = Scoreboard::default();
    let mut unit_busy_until: HashMap<FuncUnit, u64> = HashMap::new();
    // (cycle, unit) pairs consumed in the current window for multi-issue.
    let mut cycle_units: HashMap<u64, Vec<FuncUnit>> = HashMap::new();
    let mut issued_in_cycle: HashMap<u64, u64> = HashMap::new();

    let mut issue_cycle = Vec::with_capacity(insns.len());
    let mut stall_cause = Vec::with_capacity(insns.len());
    let mut data_stalls = 0u64;
    let mut struct_stalls = 0u64;
    let mut cycles = 0u64;
    let mut last_issue = 0u64;

    for (i, insn) in insns.iter().enumerate() {
        // In-order issue: never before the previous instruction's cycle.
        let inorder_floor = if i == 0 { 0 } else { last_issue };
        // Baseline: the cycle this instruction would issue with no hazards
        // at all — the next cycle with a free issue slot.
        let baseline = {
            let mut c = inorder_floor;
            while issued_in_cycle.get(&c).copied().unwrap_or(0) >= width {
                c += 1;
            }
            c
        };

        // --- data hazards -------------------------------------------------
        let mut data_floor = baseline;
        for res in insn.uses() {
            match res {
                Resource::Mem(_) => {} // handled through mem_accesses below
                r => {
                    if let Some(&(wt, wi)) = board.reg_writer.get(&r) {
                        let lat = model.raw_latency(&insns[wi], insn, r) as u64;
                        data_floor = data_floor.max(wt + lat);
                    }
                }
            }
        }
        for res in insn.defs() {
            match res {
                Resource::Mem(_) => {}
                r => {
                    if let Some(readers) = board.reg_readers.get(&r) {
                        for &(rt, ri) in readers {
                            let lat = model.war_latency(&insns[ri], insn, r) as u64;
                            data_floor = data_floor.max(rt + lat);
                        }
                    }
                    if let Some(&(wt, wi)) = board.reg_writer.get(&r) {
                        let lat = model.waw_latency(&insns[wi], insn, r) as u64;
                        data_floor = data_floor.max(wt + lat);
                    }
                }
            }
        }
        if let Some(kind) = insn.opcode.mem_access() {
            let key = MemKey::of(insn.mem.as_ref().expect("memory op without operand"));
            for &(pkey, pkind, pt, pi) in &board.mem_accesses {
                if !opts.mem_policy.alias(&key, &pkey) {
                    continue;
                }
                let res = Resource::Mem(pkey.expr);
                let lat = match (pkind, kind) {
                    (MemAccessKind::Store, MemAccessKind::Load) => {
                        model.raw_latency(&insns[pi], insn, res) as u64
                    }
                    (MemAccessKind::Store, MemAccessKind::Store) => {
                        model.waw_latency(&insns[pi], insn, res) as u64
                    }
                    (MemAccessKind::Load, MemAccessKind::Store) => {
                        model.war_latency(&insns[pi], insn, res) as u64
                    }
                    (MemAccessKind::Load, MemAccessKind::Load) => continue,
                };
                data_floor = data_floor.max(pt + lat);
            }
        }
        // --- structural hazards -------------------------------------------
        let unit = model.unit_of(insn);
        let mut candidate = data_floor;
        if !model.unit_pipelined(insn) {
            if let Some(&busy) = unit_busy_until.get(&unit) {
                candidate = candidate.max(busy);
            }
        }
        // Find a cycle with a free issue slot and a free copy of the unit.
        loop {
            let slots_used = issued_in_cycle.get(&candidate).copied().unwrap_or(0);
            let unit_taken = cycle_units
                .get(&candidate)
                .is_some_and(|us| us.contains(&unit));
            if slots_used < width && !unit_taken {
                break;
            }
            candidate += 1;
        }
        let t = candidate;

        // --- account ------------------------------------------------------
        let data_part = data_floor - baseline;
        let struct_part = t - data_floor;
        data_stalls += data_part;
        struct_stalls += struct_part;
        let cause = if struct_part > 0 {
            StallCause::Structural
        } else if data_part > 0 {
            StallCause::Data
        } else {
            StallCause::None
        };

        issue_cycle.push(t);
        stall_cause.push(cause);
        *issued_in_cycle.entry(t).or_insert(0) += 1;
        cycle_units.entry(t).or_default().push(unit);
        if !model.unit_pipelined(insn) {
            unit_busy_until.insert(unit, t + model.exec_latency(insn) as u64);
        }
        // Update the scoreboard.
        for res in insn.uses() {
            if !matches!(res, Resource::Mem(_)) {
                board.reg_readers.entry(res).or_default().push((t, i));
            }
        }
        for res in insn.defs() {
            if !matches!(res, Resource::Mem(_)) {
                board.reg_writer.insert(res, (t, i));
                board.reg_readers.remove(&res);
            }
        }
        if let Some(kind) = insn.opcode.mem_access() {
            let key = MemKey::of(insn.mem.as_ref().unwrap());
            board.mem_accesses.push((key, kind, t, i));
        }
        cycles = cycles.max(t + model.exec_latency(insn) as u64);
        last_issue = t;
    }

    SimReport {
        issue_cycle,
        stall_cause,
        cycles,
        data_stalls,
        struct_stalls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_isa::{MemExprPool, MemRef, Opcode, Reg};

    fn m() -> MachineModel {
        MachineModel::sparc2()
    }

    #[test]
    fn independent_stream_issues_every_cycle() {
        let insns: Vec<Instruction> = (0..4)
            .map(|i| Instruction::int3(Opcode::Add, Reg::o(0), Reg::o(1), Reg::o(2 + i)))
            .collect();
        let r = simulate(&insns, &m(), SimOptions::default());
        assert_eq!(r.issue_cycle, vec![0, 1, 2, 3]);
        assert_eq!(r.total_stalls(), 0);
        assert_eq!(r.cycles, 4);
    }

    #[test]
    fn raw_dependence_stalls() {
        let insns = vec![
            Instruction::fp3(Opcode::FDivD, Reg::f(0), Reg::f(2), Reg::f(4)),
            Instruction::fp3(Opcode::FAddD, Reg::f(4), Reg::f(6), Reg::f(8)),
        ];
        let r = simulate(&insns, &m(), SimOptions::default());
        assert_eq!(r.issue_cycle, vec![0, 20]);
        assert_eq!(r.data_stalls, 19);
        assert_eq!(r.stall_cause[1], StallCause::Data);
    }

    #[test]
    fn scheduling_shrinks_stalls() {
        // Dependent pair plus independent filler: program order stalls,
        // filler-in-shadow does not (load has one delay slot).
        let mut pool = MemExprPool::new();
        let e = pool.intern("[%fp-8]");
        let naive = vec![
            Instruction::load(Opcode::Ld, MemRef::base_offset(Reg::fp(), -8, e), Reg::o(1)),
            Instruction::int_imm(Opcode::Add, Reg::o(1), 1, Reg::o(2)),
            Instruction::int3(Opcode::Add, Reg::o(3), Reg::o(4), Reg::o(5)),
        ];
        let r1 = simulate(&naive, &m(), SimOptions::default());
        assert_eq!(r1.data_stalls, 1);
        let scheduled = vec![naive[0].clone(), naive[2].clone(), naive[1].clone()];
        let r2 = simulate(&scheduled, &m(), SimOptions::default());
        assert_eq!(r2.total_stalls(), 0);
        assert!(r2.cycles < r1.cycles);
    }

    #[test]
    fn unpipelined_divider_is_a_structural_hazard() {
        let insns = vec![
            Instruction::fp3(Opcode::FDivD, Reg::f(0), Reg::f(2), Reg::f(4)),
            Instruction::fp3(Opcode::FDivD, Reg::f(6), Reg::f(8), Reg::f(10)),
        ];
        let r = simulate(&insns, &m(), SimOptions::default());
        assert_eq!(r.issue_cycle, vec![0, 20]);
        assert_eq!(r.stall_cause[1], StallCause::Structural);
        assert!(r.struct_stalls >= 19);
    }

    #[test]
    fn memory_serialization_policies_differ() {
        let mut pool = MemExprPool::new();
        let e1 = pool.intern("[%fp-8]");
        let e2 = pool.intern("[%fp-16]");
        let insns = vec![
            Instruction::store(
                Opcode::St,
                Reg::o(0),
                MemRef::base_offset(Reg::fp(), -8, e1),
            ),
            Instruction::load(
                Opcode::Ld,
                MemRef::base_offset(Reg::fp(), -16, e2),
                Reg::o(1),
            ),
        ];
        let strict = simulate(&insns, &m(), SimOptions::default());
        // Store latency is 1, so even serialized there is no extra stall
        // beyond in-order issue — check the ordering constraint applied.
        assert_eq!(strict.issue_cycle[1], 1);
        let optimistic = simulate(
            &insns,
            &m(),
            SimOptions {
                mem_policy: MemDepPolicy::SymbolicExpr,
                issue_width: None,
            },
        );
        assert_eq!(optimistic.issue_cycle[1], 1);
    }

    #[test]
    fn dual_issue_requires_alternate_units() {
        let model = MachineModel::sparc2().with_issue_width(2);
        // Two integer adds: same unit, cannot pair.
        let same = vec![
            Instruction::int3(Opcode::Add, Reg::o(0), Reg::o(1), Reg::o(2)),
            Instruction::int3(Opcode::Add, Reg::o(0), Reg::o(1), Reg::o(3)),
        ];
        let r = simulate(&same, &model, SimOptions::default());
        assert_eq!(r.issue_cycle, vec![0, 1], "unit conflict prevents pairing");
        // An add and an independent FP add: different units, pair up.
        let mixed = vec![
            Instruction::int3(Opcode::Add, Reg::o(0), Reg::o(1), Reg::o(2)),
            Instruction::fp3(Opcode::FAddD, Reg::f(0), Reg::f(2), Reg::f(4)),
        ];
        let r = simulate(&mixed, &model, SimOptions::default());
        assert_eq!(r.issue_cycle, vec![0, 0], "alternate types dual-issue");
        assert_eq!(r.ipc(), 2.0 / r.cycles as f64);
    }

    #[test]
    fn war_hazard_enforced() {
        // Read of %f1 then a write to it one instruction later: WAR keeps
        // order but costs only the short delay.
        let insns = vec![
            Instruction::fp3(Opcode::FDivD, Reg::f(1), Reg::f(2), Reg::f(3)),
            Instruction::fp3(Opcode::FAddD, Reg::f(4), Reg::f(5), Reg::f(1)),
        ];
        let r = simulate(&insns, &m(), SimOptions::default());
        assert_eq!(r.issue_cycle, vec![0, 1], "WAR is cheap");
    }

    #[test]
    fn empty_sequence() {
        let r = simulate(&[], &m(), SimOptions::default());
        assert_eq!(r.cycles, 0);
        assert!(r.issue_cycle.is_empty());
        assert_eq!(r.ipc(), 0.0);
    }

    #[test]
    fn timeline_renders_issue_and_stalls() {
        let insns = vec![
            Instruction::fp3(Opcode::FDivD, Reg::f(0), Reg::f(2), Reg::f(4)),
            Instruction::fp3(Opcode::FAddD, Reg::f(4), Reg::f(6), Reg::f(8)),
        ];
        let model = m();
        let r = simulate(&insns, &model, SimOptions::default());
        let t = render_timeline(&insns, &model, &r, 30);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("|I===="), "divide starts at 0: {t}");
        assert!(lines[1].contains(" d |"), "the add is data-stalled: {t}");
        assert!(
            lines[1].contains("....................I"),
            "issue at 20: {t}"
        );
        assert!(lines[2].contains("19 data stalls"));
    }

    #[test]
    fn report_ipc_is_instructions_over_cycles() {
        let insns: Vec<Instruction> = (0..10)
            .map(|i| Instruction::int3(Opcode::Add, Reg::o(0), Reg::o(1), Reg::o(2 + (i % 5))))
            .collect();
        let r = simulate(&insns, &m(), SimOptions::default());
        assert!(r.ipc() > 0.9, "near-1 IPC for independent ALU stream");
    }
}
