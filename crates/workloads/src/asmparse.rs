//! A small assembly parser for tests, examples and hand-written blocks.
//!
//! Two syntaxes are accepted, line by line:
//!
//! * SPARC-flavoured: `add %o0, %o1, %o2`, `ld [%fp-8], %l0`,
//!   `st %l0, [%fp-8]`, `fdivd %f0, %f2, %f4`, `cmp %o0, %o1`, `bne L1`,
//!   `call f`, `nop`, `save`, `restore`.
//! * The paper's Figure 1 notation: `DIVF R1,R2,R3` (meaning
//!   `R3 = R1 / R2` — destination **last**), `ADDF R4,R5,R1`,
//!   `SUBF`/`MULF` likewise, with `Rn` mapping to `%fn`.
//!
//! Comments start with `!`, `;` or `#`; labels (`name:`) are skipped.

use dagsched_isa::{Instruction, MemRef, Opcode, Program, Reg};

/// A parse failure, with 1-based line number and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseAsmError {}

/// Parse an assembly listing into a [`Program`].
///
/// # Errors
///
/// Returns the first line that fails to parse.
///
/// ```
/// use dagsched_workloads::parse_asm;
/// let prog = parse_asm("
///     ! the paper's Figure 1
///     DIVF R1,R2,R3
///     ADDF R4,R5,R1
///     ADDF R1,R3,R6
/// ").unwrap();
/// assert_eq!(prog.len(), 3);
/// ```
pub fn parse_asm(text: &str) -> Result<Program, ParseAsmError> {
    let mut prog = Program::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() || line.ends_with(':') {
            continue;
        }
        let insn = parse_line(line, &mut prog).map_err(|message| ParseAsmError {
            line: lineno + 1,
            message,
        })?;
        prog.push(insn);
    }
    Ok(prog)
}

fn strip_comment(line: &str) -> &str {
    let cut = line.find(['!', ';', '#']).unwrap_or(line.len());
    &line[..cut]
}

fn parse_line(line: &str, prog: &mut Program) -> Result<Instruction, String> {
    let (mnemonic, rest) = match line.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (line, ""),
    };
    // Figure 1 notation: dst-last FP three-address ops on Rn registers.
    if let Some(op) = fig1_opcode(mnemonic) {
        let ops = split_operands(rest);
        if ops.len() != 3 {
            return Err(format!("{mnemonic} expects 3 operands"));
        }
        let a = parse_fig1_reg(&ops[0])?;
        let b = parse_fig1_reg(&ops[1])?;
        let d = parse_fig1_reg(&ops[2])?;
        return Ok(Instruction::fp3(op, a, b, d));
    }

    let op =
        Opcode::from_mnemonic(mnemonic).ok_or_else(|| format!("unknown mnemonic `{mnemonic}`"))?;
    let ops = split_operands(rest);
    match op {
        Opcode::Nop | Opcode::Save | Opcode::Restore => Ok(Instruction::new(op)),
        Opcode::Ba | Opcode::Bicc | Opcode::Fbcc | Opcode::Call | Opcode::Jmpl => {
            Ok(Instruction::branch(op))
        }
        _ if op.mem_access() == Some(dagsched_isa::MemAccessKind::Load) => {
            if ops.len() != 2 {
                return Err(format!("{mnemonic} expects `[addr], reg`"));
            }
            let mem = parse_mem(&ops[0], prog)?;
            let rd = parse_reg(&ops[1])?;
            Ok(Instruction::load(op, mem, rd))
        }
        _ if op.mem_access() == Some(dagsched_isa::MemAccessKind::Store) => {
            if ops.len() != 2 {
                return Err(format!("{mnemonic} expects `reg, [addr]`"));
            }
            let rs = parse_reg(&ops[0])?;
            let mem = parse_mem(&ops[1], prog)?;
            Ok(Instruction::store(op, rs, mem))
        }
        Opcode::SubCc if ops.len() == 2 => {
            // `cmp a, b`
            Ok(Instruction::cmp(parse_reg(&ops[0])?, parse_reg(&ops[1])?))
        }
        Opcode::Sethi => {
            if ops.len() != 2 {
                return Err("sethi expects `imm, reg`".into());
            }
            Ok(Instruction::sethi(parse_imm(&ops[0])?, parse_reg(&ops[1])?))
        }
        Opcode::Mov => {
            if ops.len() != 2 {
                return Err("mov expects `imm|reg, reg`".into());
            }
            let rd = parse_reg(&ops[1])?;
            match parse_reg(&ops[0]) {
                Ok(rs) => Ok(Instruction::fp2(Opcode::Mov, rs, rd)),
                Err(_) => Ok(Instruction::mov_imm(parse_imm(&ops[0])?, rd)),
            }
        }
        Opcode::FCmpS | Opcode::FCmpD => {
            if ops.len() != 2 {
                return Err(format!("{mnemonic} expects 2 operands"));
            }
            Ok(Instruction::fcmp(
                op,
                parse_reg(&ops[0])?,
                parse_reg(&ops[1])?,
            ))
        }
        Opcode::FMovS
        | Opcode::FNegS
        | Opcode::FAbsS
        | Opcode::FSqrtD
        | Opcode::FiToS
        | Opcode::FiToD
        | Opcode::FsToD
        | Opcode::FdToS
        | Opcode::FsToI
        | Opcode::FdToI => {
            if ops.len() != 2 {
                return Err(format!("{mnemonic} expects 2 operands"));
            }
            Ok(Instruction::fp2(
                op,
                parse_reg(&ops[0])?,
                parse_reg(&ops[1])?,
            ))
        }
        _ => {
            // Three-address integer/FP: `op a, b, d` or `op a, imm, d`.
            if ops.len() != 3 {
                return Err(format!("{mnemonic} expects 3 operands"));
            }
            let a = parse_reg(&ops[0])?;
            let d = parse_reg(&ops[2])?;
            match parse_reg(&ops[1]) {
                Ok(b) if op.is_fp() => Ok(Instruction::fp3(op, a, b, d)),
                Ok(b) => Ok(Instruction::int3(op, a, b, d)),
                Err(_) => Ok(Instruction::int_imm(op, a, parse_imm(&ops[1])?, d)),
            }
        }
    }
}

fn fig1_opcode(mnemonic: &str) -> Option<Opcode> {
    match mnemonic.to_ascii_uppercase().as_str() {
        "DIVF" => Some(Opcode::FDivD),
        "ADDF" => Some(Opcode::FAddD),
        "SUBF" => Some(Opcode::FSubD),
        "MULF" => Some(Opcode::FMulD),
        _ => None,
    }
}

fn split_operands(rest: &str) -> Vec<String> {
    if rest.is_empty() {
        return Vec::new();
    }
    // Split on commas that are not inside a bracketed address.
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for ch in rest.chars() {
        match ch {
            '[' => {
                depth += 1;
                cur.push(ch);
            }
            ']' => {
                depth = depth.saturating_sub(1);
                cur.push(ch);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur = String::new();
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

fn parse_fig1_reg(s: &str) -> Result<Reg, String> {
    let rest = s
        .strip_prefix(['R', 'r'])
        .ok_or_else(|| format!("expected Rn register, got `{s}`"))?;
    let n: u8 = rest.parse().map_err(|_| format!("bad register `{s}`"))?;
    if n >= 32 {
        return Err(format!("register number out of range: `{s}`"));
    }
    Ok(Reg::f(n))
}

fn parse_reg(s: &str) -> Result<Reg, String> {
    let body = s
        .strip_prefix('%')
        .ok_or_else(|| format!("expected register, got `{s}`"))?;
    // Named registers first: `%fp` must not be read as the fp bank.
    match body {
        "fp" => return Ok(Reg::fp()),
        "sp" => return Ok(Reg::sp()),
        "y" => return Ok(Reg::Y),
        "icc" => return Ok(Reg::Icc),
        "fcc" => return Ok(Reg::Fcc),
        _ => {}
    }
    // `split_at(1)` would panic on an empty body (a bare `%`) or when the
    // first character is multi-byte (index 1 is not a char boundary) —
    // both reachable from user input, so they must be parse errors.
    if body.len() < 2 || !body.is_char_boundary(1) {
        return Err(format!("unknown register `{s}`"));
    }
    let (bank, num) = body.split_at(1);
    match (bank, num) {
        ("g", n) => ok_bank(n, 0, s),
        ("o", n) => ok_bank(n, 8, s),
        ("l", n) => ok_bank(n, 16, s),
        ("i", n) => ok_bank(n, 24, s),
        ("f", n) => {
            let k: u8 = n.parse().map_err(|_| format!("bad register `{s}`"))?;
            if k >= 32 {
                return Err(format!("fp register out of range `{s}`"));
            }
            Ok(Reg::f(k))
        }
        _ => Err(format!("unknown register `{s}`")),
    }
}

fn ok_bank(n: &str, base: u8, orig: &str) -> Result<Reg, String> {
    let k: u8 = n.parse().map_err(|_| format!("bad register `{orig}`"))?;
    if k >= 8 {
        return Err(format!("register out of range `{orig}`"));
    }
    Ok(Reg::Int(base + k))
}

fn parse_imm(s: &str) -> Result<i64, String> {
    let t = s.trim();
    if let Some(hex) = t.strip_prefix("0x") {
        i64::from_str_radix(hex, 16).map_err(|_| format!("bad immediate `{s}`"))
    } else {
        t.parse().map_err(|_| format!("bad immediate `{s}`"))
    }
}

/// Parse `[%base]`, `[%base+off]`, `[%base-off]` or `[%base+%index]`;
/// the bracketed text itself is interned as the symbolic expression.
fn parse_mem(s: &str, prog: &mut Program) -> Result<MemRef, String> {
    let inner = s
        .strip_prefix('[')
        .and_then(|x| x.strip_suffix(']'))
        .ok_or_else(|| format!("expected `[address]`, got `{s}`"))?
        .trim();
    let expr = prog.mem_exprs.intern(&format!("[{inner}]"));
    // %base ± rest
    let (base_txt, sign, rest) = match inner.find(['+', '-']) {
        Some(pos) => (
            inner[..pos].trim(),
            if inner.as_bytes()[pos] == b'+' {
                1i32
            } else {
                -1
            },
            inner[pos + 1..].trim(),
        ),
        None => (inner, 1, ""),
    };
    let base = parse_reg(base_txt)?;
    if rest.is_empty() {
        return Ok(MemRef::base_offset(base, 0, expr));
    }
    if rest.starts_with('%') {
        if sign < 0 {
            return Err(format!("negative index register in `{s}`"));
        }
        let index = parse_reg(rest)?;
        return Ok(MemRef::base_index(base, index, expr));
    }
    let off: i32 = rest.parse().map_err(|_| format!("bad offset in `{s}`"))?;
    Ok(MemRef::base_offset(base, sign * off, expr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_isa::Resource;

    #[test]
    fn parses_figure1_notation() {
        let p = parse_asm("DIVF R1,R2,R3\nADDF R4,R5,R1\nADDF R1,R3,R6").unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.insns[0].opcode, Opcode::FDivD);
        assert_eq!(p.insns[0].rd, Some(Reg::f(3)));
        assert_eq!(p.insns[0].rs, vec![Reg::f(1), Reg::f(2)]);
        assert_eq!(p.insns[2].rd, Some(Reg::f(6)));
    }

    #[test]
    fn parses_sparc_three_address() {
        let p = parse_asm("add %o0, %o1, %o2\nsub %o2, 4, %o3").unwrap();
        assert_eq!(p.insns[0].rs, vec![Reg::o(0), Reg::o(1)]);
        assert_eq!(p.insns[1].imm, Some(4));
    }

    #[test]
    fn parses_memory_operands() {
        let p = parse_asm("ld [%fp-8], %l0\nst %l0, [%fp-8]\nlddf [%o0+%o1], %f2").unwrap();
        let m0 = p.insns[0].mem.unwrap();
        assert_eq!(m0.base, Reg::fp());
        assert_eq!(m0.offset, -8);
        let m1 = p.insns[1].mem.unwrap();
        assert_eq!(m0.expr, m1.expr, "same text interns to the same expression");
        let m2 = p.insns[2].mem.unwrap();
        assert_eq!(m2.index, Some(Reg::o(1)));
    }

    #[test]
    fn parses_control_flow_and_blocks() {
        let p =
            parse_asm("cmp %o0, %o1\n bne loop\n nop\n add %o0, 1, %o0\n ba exit\n nop").unwrap();
        assert_eq!(p.insns[0].defs(), vec![Resource::Reg(Reg::Icc)]);
        // cmp+bne | nop+add+ba | nop (delay slots count with the next block)
        assert_eq!(p.basic_blocks().len(), 3);
    }

    #[test]
    fn comments_and_labels_are_skipped() {
        let p = parse_asm("! header\nstart:\n  add %o0, %o1, %o2  ; trailing\n# done").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_asm("add %o0, %o1, %o2\nbogus %o0").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bogus"));
        let err = parse_asm("add %q0, %o1, %o2").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn malformed_registers_are_errors_not_panics() {
        // A bare `%` used to panic in `split_at(1)` on the empty body.
        assert!(parse_asm("add %, %o1, %o2")
            .unwrap_err()
            .message
            .contains('%'));
        // A multi-byte first character used to panic on the char boundary.
        assert!(parse_asm("add %é0, %o1, %o2").is_err());
        assert!(parse_asm("ld [%é0-8], %l0").is_err());
        // One-character bank without a number stays an error.
        assert!(parse_asm("add %g, %o1, %o2").is_err());
    }

    #[test]
    fn save_restore_and_calls() {
        let p = parse_asm("save\ncall f\nnop\nrestore").unwrap();
        assert_eq!(p.insns[0].opcode, Opcode::Save);
        assert_eq!(p.insns[1].opcode, Opcode::Call);
        assert_eq!(p.basic_blocks().len(), 3);
    }

    #[test]
    fn display_parse_round_trip_over_generated_benchmarks() {
        // Every instruction the generator emits must print as parseable
        // assembly that reconstructs the same operation (memory expression
        // identity aside — the printed form is `[base+offset]`, not the
        // generator's synthetic name).
        for name in ["grep", "linpack", "tomcatv"] {
            let profile = crate::BenchmarkProfile::by_name(name).unwrap();
            let bench = crate::generate(profile, 1991);
            let text: String = bench
                .program
                .insns
                .iter()
                .map(|i| format!("{i}\n"))
                .collect();
            let reparsed = parse_asm(&text)
                .unwrap_or_else(|e| panic!("{name}: generated asm must reparse: {e}"));
            assert_eq!(reparsed.len(), bench.program.len(), "{name}");
            for (a, b) in bench.program.insns.iter().zip(&reparsed.insns) {
                assert_eq!(a.opcode, b.opcode, "{name}: {a}");
                assert_eq!(a.rd, b.rd, "{name}: {a}");
                assert_eq!(a.rs, b.rs, "{name}: {a}");
                assert_eq!(a.imm, b.imm, "{name}: {a}");
                match (&a.mem, &b.mem) {
                    (Some(ma), Some(mb)) => {
                        assert_eq!(ma.base, mb.base, "{name}: {a}");
                        assert_eq!(ma.offset, mb.offset, "{name}: {a}");
                        assert_eq!(ma.index, mb.index, "{name}: {a}");
                    }
                    (None, None) => {}
                    _ => panic!("{name}: memory operand mismatch on {a}"),
                }
            }
        }
    }

    #[test]
    fn mov_and_sethi_forms() {
        let p = parse_asm("mov 42, %o0\nsethi 0x1000, %o1\nfsqrtd %f0, %f2").unwrap();
        assert_eq!(p.insns[0].imm, Some(42));
        assert_eq!(p.insns[1].imm, Some(0x1000));
        assert_eq!(p.insns[2].opcode, Opcode::FSqrtD);
    }
}
