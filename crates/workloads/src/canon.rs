//! Canon-style DAG-shape generators for the overload workload mix.
//!
//! The Table 3 profiles reproduce the *statistics* of the paper's
//! benchmarks; they do not let an experiment dial in a dependence
//! *shape*. The overload audit wants exactly that: a heavy mix of
//! blocks whose DAGs stress the scheduler differently — dense random
//! graphs, layered pipelines, reductions, broadcasts — at varied
//! sizes, so a saturated daemon sees heterogeneous service times
//! rather than one comfortable distribution.
//!
//! Profiles here are *parametric names*, resolved dynamically rather
//! than listed in [`crate::ALL_PROFILES`]: `canon-<shape>-<n>` builds
//! one benchmark whose main block is an `n`-node DAG of the given
//! shape (plus two smaller echo blocks of the same shape, so every
//! request still exercises multi-block batching):
//!
//! * `canon-gnp-<n>` — Erdős–Rényi-style `G(n, p)` precedence: each
//!   node depends on each earlier node with probability `p ≈ 4/n`
//!   (expected in-degree ~2, independent of size).
//! * `canon-layers-<n>` — layer-by-layer: `√n`-wide ranks where every
//!   node reads one or two nodes of the previous rank.
//! * `canon-fanin-<n>` — a reduction tree: leaves first, every
//!   interior node folds the two oldest unconsumed values.
//! * `canon-fanout-<n>` — a broadcast: one root, every later node
//!   reads it (and sometimes one other earlier node).
//!
//! Dependencies are realized through registers (each node writes one
//! register from a rotating pool and reads its predecessors'), with
//! loads/stores against per-block unique memory expressions mixed in
//! the same way [`crate::generate`] does. Register reuse adds the
//! anti/output edges any real allocator would; the requested shape is
//! the true-dependence skeleton. Deterministic in `(name, seed)`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use dagsched_isa::{Instruction, MemRef, Opcode, Program, Reg};

use crate::gen::Benchmark;

/// The dependence skeleton a canon profile asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    Gnp,
    Layers,
    FanIn,
    FanOut,
}

/// The heavy mix the overload harness cycles over: every shape at
/// varied sizes, from quick fills to compile-bound giants.
pub fn canon_mix() -> Vec<String> {
    [
        "canon-gnp-64",
        "canon-gnp-192",
        "canon-gnp-384",
        "canon-layers-96",
        "canon-layers-256",
        "canon-fanin-128",
        "canon-fanin-320",
        "canon-fanout-128",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// Parse `canon-<shape>-<n>`; `None` when the name is not a canon
/// profile (the caller falls back to the Table 3 lookup).
fn parse_name(name: &str) -> Option<(Shape, usize)> {
    let rest = name.strip_prefix("canon-")?;
    let (shape, n) = rest.split_once('-')?;
    let n: usize = n.parse().ok()?;
    if !(8..=4096).contains(&n) {
        return None;
    }
    let shape = match shape {
        "gnp" => Shape::Gnp,
        "layers" => Shape::Layers,
        "fanin" => Shape::FanIn,
        "fanout" => Shape::FanOut,
        _ => return None,
    };
    Some((shape, n))
}

/// Whether `name` names a canon profile [`generate_canon`] can build.
pub fn is_canon_profile(name: &str) -> bool {
    parse_name(name).is_some()
}

/// FNV-1a, the same name-mixing `crate::generate` uses, so equal seeds
/// across different canon profiles still draw distinct streams.
fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Generate the benchmark for a `canon-<shape>-<n>` profile name, or
/// `None` if the name does not parse as one.
pub fn generate_canon(name: &str, seed: u64) -> Option<Benchmark> {
    let (shape, n) = parse_name(name)?;
    let mut rng = SmallRng::seed_from_u64(seed ^ hash_name(name));
    let mut program = Program::new();
    // The headline block plus two smaller echoes of the same shape:
    // multi-block requests keep the daemon's batching machinery honest
    // while the big block dominates service time.
    for (block_idx, m) in [n, (n / 2).max(8), (n / 3).max(8)].into_iter().enumerate() {
        emit_dag_block(&mut rng, &mut program, name, block_idx, shape, m);
    }
    let blocks = program.basic_blocks();
    Some(Benchmark {
        name: name.to_string(),
        program,
        blocks,
    })
}

/// The rotating destination pool: every allocatable integer register
/// the Table 3 generator also treats as fair game.
const POOL: [Reg; 25] = [
    Reg::Int(16),
    Reg::Int(17),
    Reg::Int(18),
    Reg::Int(19),
    Reg::Int(20),
    Reg::Int(21),
    Reg::Int(22),
    Reg::Int(23), // %l0-%l7
    Reg::Int(8),
    Reg::Int(9),
    Reg::Int(10),
    Reg::Int(11),
    Reg::Int(12),
    Reg::Int(13), // %o0-%o5
    Reg::Int(24),
    Reg::Int(25),
    Reg::Int(26),
    Reg::Int(27),
    Reg::Int(28),
    Reg::Int(29), // %i0-%i5
    Reg::Int(1),
    Reg::Int(2),
    Reg::Int(3),
    Reg::Int(4),
    Reg::Int(5), // %g1-%g5
];

/// The register node `v` writes (and successors read).
fn reg_of(v: usize) -> Reg {
    POOL[v % POOL.len()]
}

/// Sample each node's true-dependence predecessors for `shape`. Every
/// returned index is strictly smaller than the node's own, so emitting
/// nodes in order realizes the DAG.
fn sample_preds(rng: &mut SmallRng, shape: Shape, m: usize) -> Vec<Vec<usize>> {
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); m];
    match shape {
        Shape::Gnp => {
            // Expected in-degree ~2 regardless of size: p = 4/m over
            // v earlier candidates averages 2 across the block.
            let p = (4.0 / m as f64).min(1.0);
            for (v, pv) in preds.iter_mut().enumerate().skip(1) {
                for u in 0..v {
                    if rng.gen::<f64>() < p {
                        pv.push(u);
                    }
                }
            }
        }
        Shape::Layers => {
            let width = (m as f64).sqrt().round().max(1.0) as usize;
            for (v, pv) in preds.iter_mut().enumerate().skip(width) {
                let layer_start = v / width * width;
                let prev_start = layer_start - width;
                let a = prev_start + rng.gen_range(0..width).min(layer_start - prev_start - 1);
                pv.push(a.min(layer_start - 1));
                if rng.gen::<f64>() < 0.5 {
                    let b = prev_start + rng.gen_range(0..width);
                    pv.push(b.min(layer_start - 1));
                }
            }
        }
        Shape::FanIn => {
            // Reduction: leaves are the first ~half, then every node
            // folds the two oldest values not yet consumed.
            let leaves = m.div_ceil(2).max(1);
            let mut next = 0usize;
            for (v, pv) in preds.iter_mut().enumerate().skip(leaves) {
                if next + 1 < v {
                    pv.push(next);
                    pv.push(next + 1);
                    next += 2;
                } else if next < v {
                    pv.push(next);
                    next += 1;
                }
            }
        }
        Shape::FanOut => {
            for (v, p) in preds.iter_mut().enumerate().skip(1) {
                p.push(0);
                if rng.gen::<f64>() < 0.3 {
                    p.push(rng.gen_range(0..v));
                }
            }
        }
    }
    preds
}

/// Emit one block realizing an `m`-node DAG of `shape`, terminated the
/// way the Table 3 generator terminates blocks (`cmp` + `bicc`).
fn emit_dag_block(
    rng: &mut SmallRng,
    program: &mut Program,
    name: &str,
    block_idx: usize,
    shape: Shape,
    m: usize,
) {
    let preds = sample_preds(rng, shape, m);
    let mut mem_serial = 0usize;
    let new_mem = |program: &mut Program, k: usize| -> MemRef {
        let text = format!("{name}.b{block_idx}.e{k}");
        let id = program.mem_exprs.intern(&text);
        MemRef::base_offset(Reg::fp(), 8 * k as i32, id)
    };
    for (v, pv) in preds.iter().enumerate() {
        let rd = reg_of(v);
        // Registers carry at most two predecessors; denser G(n,p)
        // in-degrees keep the two most recent (the rest still shape
        // the block through the transitive closure).
        let take = &pv[pv.len().saturating_sub(2)..];
        let insn = match *take {
            [] => Instruction::mov_imm(i64::try_from(v).unwrap_or(0), rd),
            [a] => {
                if rng.gen::<f64>() < 0.25 {
                    // A load whose address depends on the predecessor.
                    let k = mem_serial;
                    mem_serial += 1;
                    let mem = new_mem(program, k);
                    let mem = MemRef::base_offset(reg_of(a), mem.offset, mem.expr);
                    Instruction::load(Opcode::Ld, mem, rd)
                } else {
                    Instruction::int_imm(Opcode::Add, reg_of(a), 8, rd)
                }
            }
            [a, b] => {
                let op = match rng.gen_range(0..8u32) {
                    0..=2 => Opcode::Add,
                    3 | 4 => Opcode::Sub,
                    5 => Opcode::Xor,
                    6 => Opcode::Umul,
                    _ => Opcode::And,
                };
                Instruction::int3(op, reg_of(a), reg_of(b), rd)
            }
            _ => unreachable!("take is at most two predecessors"),
        };
        program.push(insn);
        // Spill roughly every eighth value to its own unique memory
        // expression: stores make the sink frontier visible to the
        // DAG builder's memory ledger, as the Table 3 blocks do.
        if v % 8 == 7 {
            let k = mem_serial;
            mem_serial += 1;
            let mem = new_mem(program, k);
            program.push(Instruction::store(Opcode::St, rd, mem));
        }
    }
    program.push(Instruction::cmp(reg_of(m.saturating_sub(1)), Reg::g(0)));
    program.push(Instruction::branch(Opcode::Bicc));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canon_names_parse_and_foreign_names_do_not() {
        assert!(is_canon_profile("canon-gnp-64"));
        assert!(is_canon_profile("canon-layers-96"));
        assert!(is_canon_profile("canon-fanin-128"));
        assert!(is_canon_profile("canon-fanout-320"));
        for bad in [
            "grep",
            "canon-gnp",
            "canon-gnp-0",
            "canon-gnp-9999",
            "canon-ring-64",
            "canon-gnp-64-extra",
        ] {
            assert!(!is_canon_profile(bad), "{bad} must not parse");
        }
        for name in canon_mix() {
            assert!(is_canon_profile(&name), "{name} from the mix must parse");
        }
    }

    #[test]
    fn generation_is_deterministic_in_name_and_seed() {
        let a = generate_canon("canon-gnp-64", 1991).unwrap();
        let b = generate_canon("canon-gnp-64", 1991).unwrap();
        assert_eq!(a.program.insns.len(), b.program.insns.len());
        let render = |bench: &Benchmark| {
            bench
                .program
                .insns
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(render(&a), render(&b), "same (name, seed) → same bytes");
        let c = generate_canon("canon-gnp-64", 7).unwrap();
        assert_ne!(render(&a), render(&c), "a different seed must differ");
    }

    #[test]
    fn every_mix_entry_builds_a_multi_block_benchmark() {
        for name in canon_mix() {
            let bench = generate_canon(&name, 1991).unwrap();
            assert!(
                bench.blocks.len() >= 3,
                "{name}: headline block plus echoes"
            );
            assert!(!bench.program.insns.is_empty(), "{name}: non-empty program");
            // The headline block dominates: it holds at least as many
            // instructions as either echo.
            let sizes: Vec<usize> = bench
                .blocks
                .iter()
                .map(|b| bench.program.block_insns(b).len())
                .collect();
            assert!(sizes[0] >= sizes[1] && sizes[0] >= sizes[2], "{sizes:?}");
        }
    }

    #[test]
    fn shapes_produce_the_advertised_dependence_skeletons() {
        let mut rng = SmallRng::seed_from_u64(42);
        // Fan-out: every non-root node reads the root.
        let preds = sample_preds(&mut rng, Shape::FanOut, 64);
        assert!(preds.iter().skip(1).all(|p| p.contains(&0)));
        // Fan-in: interior nodes fold exactly two older values, and no
        // value is folded twice.
        let preds = sample_preds(&mut rng, Shape::FanIn, 64);
        let mut consumed = std::collections::HashSet::new();
        for (v, pv) in preds.iter().enumerate() {
            for &u in pv {
                assert!(u < v, "edges point backwards");
                assert!(consumed.insert(u), "value {u} folded twice");
            }
        }
        // Layers: every predecessor sits in the immediately previous
        // rank.
        let m = 100; // width 10
        let preds = sample_preds(&mut rng, Shape::Layers, m);
        for (v, pv) in preds.iter().enumerate().skip(10) {
            for &u in pv {
                assert_eq!(u / 10, v / 10 - 1, "node {v} must read rank {}", v / 10 - 1);
            }
        }
        // G(n,p): mean in-degree lands near 2.
        let preds = sample_preds(&mut rng, Shape::Gnp, 256);
        let edges: usize = preds.iter().map(Vec::len).sum();
        let mean = edges as f64 / 256.0;
        assert!((0.5..=4.0).contains(&mean), "mean in-degree {mean}");
    }
}
