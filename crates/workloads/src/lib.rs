//! Benchmark workloads for the `dagsched` experiments.
//!
//! The paper evaluates on SPARC assembly of GNU grep/regex/dfa/cccp,
//! Linpack, the Livermore Loops and SPEC tomcatv/nasa7/fpppp — inputs we
//! cannot redistribute. This crate substitutes a **deterministic synthetic
//! generator** calibrated to the structural statistics the paper reports
//! in Table 3 (block counts, instruction counts, block-size extremes,
//! unique-memory-expression density, instruction mix), which are the only
//! properties the measured algorithms consume. See `DESIGN.md` §2 for the
//! substitution rationale.
//!
//! * [`BenchmarkProfile`] / [`ALL_PROFILES`] — the twelve Table 3 rows.
//! * [`generate`] — profile + seed → instruction stream + block structure.
//! * [`generate_canon`] / [`canon_mix`] — parametric `canon-<shape>-<n>`
//!   DAG-shape profiles (G(n,p), layered, fan-in, fan-out) for the
//!   overload harness's heavy mix.
//! * [`clamp_blocks`] — the instruction-window mechanism behind the
//!   fpppp-1000/2000/4000 variants.
//! * [`parse_asm`] — a small assembly parser for hand-written blocks
//!   (including the paper's Figure 1 notation).
//!
//! # Example
//!
//! ```
//! use dagsched_workloads::{generate, BenchmarkProfile};
//! let profile = BenchmarkProfile::by_name("grep").unwrap();
//! let bench = generate(profile, 1991);
//! assert_eq!(bench.program.len(), 1739);   // Table 3: grep, 1739 insts
//! assert_eq!(bench.blocks.len(), 730);     // Table 3: grep, 730 blocks
//! ```

mod asmparse;
mod canon;
mod gen;
mod profile;
mod window;

pub use asmparse::{parse_asm, ParseAsmError};
pub use canon::{canon_mix, generate_canon, is_canon_profile};
pub use gen::{generate, Benchmark};
pub use profile::{base_profiles, BenchmarkProfile, OpMix, Placement, ALL_PROFILES};
pub use window::clamp_blocks;

/// The seed used throughout the experiment harness, chosen for the year
/// of the paper. Any seed works; this one makes every number in
/// `EXPERIMENTS.md` reproducible.
pub const PAPER_SEED: u64 = 1991;
