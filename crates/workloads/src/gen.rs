//! The synthetic benchmark generator.

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use dagsched_isa::{BasicBlock, Instruction, MemExprId, MemRef, Opcode, Program, Reg};

use crate::profile::{BenchmarkProfile, HubSpec, OpMix, Placement};
use crate::window::clamp_blocks;

/// A generated benchmark: the instruction stream plus the block structure
/// the experiments analyze (which, for the fpppp window variants, is the
/// base stream's blocks clamped to the window size).
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Profile name.
    pub name: String,
    /// The instruction stream.
    pub program: Program,
    /// Basic blocks to analyze (windowed for the fpppp variants).
    pub blocks: Vec<BasicBlock>,
}

impl Benchmark {
    /// The instructions of block `b`.
    pub fn block_insns(&self, b: usize) -> &[Instruction] {
        self.program.block_insns(&self.blocks[b])
    }
}

/// Generate a benchmark from its profile, deterministically in `seed`.
///
/// The same `(profile, seed)` pair always yields an identical program;
/// window variants generate their base benchmark with the same seed and
/// therefore share its instruction stream byte-for-byte.
pub fn generate(profile: &BenchmarkProfile, seed: u64) -> Benchmark {
    if let Some((base_name, window)) = profile.window {
        let base = BenchmarkProfile::by_name(base_name)
            .unwrap_or_else(|| panic!("window base profile {base_name} missing"));
        let mut bench = generate(base, seed);
        bench.name = profile.name.to_string();
        bench.blocks = clamp_blocks(&bench.blocks, window);
        return bench;
    }
    let mut rng = SmallRng::seed_from_u64(seed ^ hash_name(profile.name));
    let sizes = block_sizes(profile, &mut rng);
    debug_assert_eq!(sizes.iter().sum::<usize>(), profile.insts);
    debug_assert_eq!(sizes.len(), profile.blocks);

    let gamma = mem_gamma(profile);
    // Calibrate the power-law constant against the *drawn* sizes so the
    // per-block average of unique expressions lands on the Table 3 target
    // (fitting against the mean block size alone underestimates: the
    // pinned giant blocks hog instructions without proportional blocks).
    let target_total = (profile.mem_avg * profile.blocks as f64 - profile.mem_max as f64).max(0.0);
    // All drawn sizes except one instance of the pinned maximum block
    // (which is assigned exactly `mem_max` expressions).
    let body: Vec<usize> = {
        let mut out = sizes.clone();
        if let Some(pos) = out.iter().position(|&s| s == profile.max_block) {
            out.remove(pos);
        }
        out
    };
    // Fixed-point solve for c: the per-block unique count is clamped to
    // `min(block size - 1, mem_max)`, which bites hard on the tiny blocks
    // of the system benchmarks; fitting c against the unclamped power law
    // alone would undershoot the Table 3 average.
    let clamped_mass = |c: f64| -> f64 {
        body.iter()
            .map(|&s| {
                (c * (s as f64).powf(gamma))
                    .min(s.saturating_sub(1) as f64)
                    .min(profile.mem_max as f64)
            })
            .sum()
    };
    let unclamped: f64 = body
        .iter()
        .map(|&s| (s as f64).powf(gamma))
        .sum::<f64>()
        .max(1e-9);
    let mut c = target_total / unclamped;
    for _ in 0..8 {
        let mass = clamped_mass(c);
        if mass <= 1e-9 {
            break;
        }
        c *= target_total / mass;
    }
    let mut program = Program::new();
    let mut gen = BlockGen::new(profile);
    for (bi, &size) in sizes.iter().enumerate() {
        let is_max_block = size == profile.max_block;
        let unique = if is_max_block {
            profile.mem_max
        } else {
            sample_unique(&mut rng, c, gamma, size, profile.mem_max)
        };
        let hub = if is_max_block { profile.hub } else { None };
        gen.emit_block(&mut rng, &mut program, bi, size, unique, hub);
    }
    let blocks = program.basic_blocks();
    Benchmark {
        name: profile.name.to_string(),
        program,
        blocks,
    }
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a: stable across runs, unlike `DefaultHasher`.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Exponent of the power law `unique(s) ∝ s^gamma` fitted through the
/// profile's `(avg block size, avg unique)` and `(max block size,
/// max unique)` targets — larger blocks reuse expressions more.
fn mem_gamma(profile: &BenchmarkProfile) -> f64 {
    let avg_size = profile.insts as f64 / profile.blocks as f64;
    (profile.mem_max as f64 / profile.mem_avg.max(0.01)).ln()
        / (profile.max_block as f64 / avg_size).ln()
}

fn sample_unique(rng: &mut SmallRng, c: f64, gamma: f64, size: usize, cap: usize) -> usize {
    let jitter = 0.7 + rng.gen::<f64>() * 0.6;
    let x = (c * (size as f64).powf(gamma) * jitter).max(0.0);
    // Probabilistic rounding keeps the expectation on target.
    let base = x.floor();
    let u = base as usize + usize::from(rng.gen::<f64>() < x - base);
    u.min(cap).min(size.saturating_sub(1))
}

/// Standard normal via Box–Muller (rand's `StandardNormal` lives in
/// `rand_distr`, which this workspace does not depend on).
fn normal(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Block sizes: the pinned maximum block, any pinned extra blocks, and a
/// lognormal body adjusted to hit the exact instruction total.
fn block_sizes(profile: &BenchmarkProfile, rng: &mut SmallRng) -> Vec<usize> {
    let n_body = profile.blocks - 1 - profile.extra_blocks.len();
    let pinned: usize = profile.max_block + profile.extra_blocks.iter().sum::<usize>();
    let budget = profile.insts - pinned;
    let cap = profile
        .body_cap
        .min(profile.max_block.saturating_sub(1))
        .max(1);

    // Sample relative lognormal weights, scale to the budget.
    let sigma = 0.9;
    let weights: Vec<f64> = (0..n_body).map(|_| (sigma * normal(rng)).exp()).collect();
    let total: f64 = weights.iter().sum();
    let mut sizes: Vec<usize> = weights
        .iter()
        .map(|w| ((w / total * budget as f64).round() as usize).clamp(1, cap))
        .collect();

    // Deterministic residual fix-up within [1, cap].
    let mut sum: usize = sizes.iter().sum();
    let mut i = 0;
    while sum != budget {
        if sum < budget && sizes[i] < cap {
            sizes[i] += 1;
            sum += 1;
        } else if sum > budget && sizes[i] > 1 {
            sizes[i] -= 1;
            sum -= 1;
        }
        i = (i + 1) % sizes.len();
    }

    // Interleave pinned blocks into the body at deterministic positions.
    let mut all = sizes;
    let mid = all.len() / 2;
    all.insert(mid, profile.max_block);
    for (k, &extra) in profile.extra_blocks.iter().enumerate() {
        let pos = (all.len() * (k + 1)) / (profile.extra_blocks.len() + 2);
        all.insert(pos, extra);
    }
    all
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Slot {
    IntAlu,
    IntMulDiv,
    Load,
    Store,
    FpAdd,
    FpMul,
    FpDiv,
    Cmp,
    Terminator(Opcode),
}

/// Per-benchmark instruction emission state (register recency pools).
struct BlockGen {
    mix: OpMix,
    reuse: f64,
    placement: Placement,
    fp_heavy: bool,
    name: &'static str,
    recent_int: Vec<Reg>,
    recent_fp: Vec<Reg>,
    /// Hub state for the current block: `(region start, region end,
    /// probability that an FP operation consumes the hub)`.
    hub_region: Option<(usize, usize, f64)>,
    /// Position of the instruction being emitted (for hub gating).
    cur_pos: usize,
}

/// The hub register: outside the generator's normal (even-numbered) FP
/// destination range, so the hub value is never clobbered.
const HUB_REG: Reg = Reg::Fp(25);

const RECENT_CAP: usize = 8;

impl BlockGen {
    fn new(profile: &BenchmarkProfile) -> BlockGen {
        BlockGen {
            mix: profile.mix,
            reuse: profile.reuse,
            placement: profile.mem_placement,
            fp_heavy: profile.mix.fp_add > 0.1,
            name: profile.name,
            recent_int: Vec::new(),
            recent_fp: Vec::new(),
            hub_region: None,
            cur_pos: 0,
        }
    }

    fn emit_block(
        &mut self,
        rng: &mut SmallRng,
        program: &mut Program,
        block_idx: usize,
        size: usize,
        unique_mem: usize,
        hub: Option<HubSpec>,
    ) {
        // Value locality is per-block: blocks start from live-in registers.
        self.recent_int.clear();
        self.recent_fp.clear();
        self.hub_region = None;

        // Hub value (fpppp's giant block): one definition whose uses
        // spread over a bounded region, producing the paper's huge
        // maximum children/instruction.
        let hub_def_pos = hub.map(|h| {
            let def = ((size as f64 * h.def_at_frac) as usize).min(size.saturating_sub(2));
            let end = (def + h.span).min(size.saturating_sub(1));
            // Expected FP three-address operations in the region, from the mix.
            let fp_share = (self.mix.fp_add * 0.9 + self.mix.fp_mul + self.mix.fp_div)
                / (self.mix.int_alu
                    + self.mix.int_muldiv
                    + self.mix.load
                    + self.mix.store
                    + self.mix.fp_add
                    + self.mix.fp_mul
                    + self.mix.fp_div);
            let expected_fp = ((end - def) as f64 * fp_share).max(1.0);
            // Per-instruction hit probability, corrected for the two
            // independent source draws of a three-address FP operation.
            let p = (h.uses as f64 / expected_fp).min(1.0);
            let q = 1.0 - (1.0 - p).sqrt();
            self.hub_region = Some((def + 1, end, q));
            def
        });

        let mut slots = self.plan_slots(rng, size, unique_mem);
        let mem_positions: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, Slot::Load | Slot::Store))
            .map(|(i, _)| i)
            .collect();
        let intro = introduction_points(&mem_positions, unique_mem, self.placement);

        // Per-block memory expression templates: one MemRef per expression
        // so repeated references stay consistent for base+offset policies.
        let mut exprs: Vec<(MemExprId, MemRef)> = Vec::with_capacity(unique_mem);
        let mut next_expr = 0usize;
        let mut intro_set: HashMap<usize, ()> = intro.iter().map(|&p| (p, ())).collect();

        for (pos, slot) in slots.drain(..).enumerate() {
            self.cur_pos = pos;
            if Some(pos) == hub_def_pos {
                // Define the hub from a freshly computed value.
                let src = self.fp_src(rng);
                program.push(Instruction::fp2(Opcode::FMovS, src, HUB_REG));
                continue;
            }
            let insn = match slot {
                Slot::IntAlu => self.gen_int_alu(rng),
                Slot::IntMulDiv => self.gen_int_muldiv(rng),
                Slot::Load | Slot::Store => {
                    let is_new = intro_set.remove(&pos).is_some() || exprs.is_empty();
                    let (expr, mem) = if is_new && next_expr < unique_mem.max(1) {
                        let id = next_expr;
                        next_expr += 1;
                        let (eid, mem) = self.new_expr(rng, program, block_idx, id);
                        exprs.push((eid, mem));
                        exprs[exprs.len() - 1]
                    } else {
                        // Reuse, strongly biased toward recently introduced
                        // expressions: references cluster near their
                        // introduction, which keeps the *windowed* unique
                        // counts (fpppp-1000/2000/4000) from ballooning.
                        let k = exprs.len();
                        let ix = if rng.gen::<f64>() < 0.8 {
                            k - 1 - rng.gen_range(0..k.min(4))
                        } else {
                            rng.gen_range(0..k)
                        };
                        exprs[ix]
                    };
                    let _ = expr;
                    if slot == Slot::Load {
                        self.gen_load(rng, mem)
                    } else {
                        self.gen_store(rng, mem)
                    }
                }
                Slot::FpAdd => self.gen_fp_add(rng),
                Slot::FpMul => self.gen_fp3(rng, Opcode::FMulD),
                Slot::FpDiv => self.gen_fp3(rng, Opcode::FDivD),
                Slot::Cmp => Instruction::cmp(self.int_src(rng), self.int_src(rng)),
                Slot::Terminator(op) => match op {
                    Opcode::Save | Opcode::Restore => Instruction::new(op),
                    _ => Instruction::branch(op),
                },
            };
            program.push(insn);
        }
    }

    /// Decide each position's instruction category.
    fn plan_slots(&self, rng: &mut SmallRng, size: usize, unique_mem: usize) -> Vec<Slot> {
        let terminator = self.pick_terminator(rng);
        let needs_cmp = matches!(terminator, Opcode::Bicc) && size >= 2;
        let body = size - 1 - usize::from(needs_cmp);
        let mut slots = Vec::with_capacity(size);
        for _ in 0..body {
            slots.push(self.pick_category(rng));
        }
        // Blocks that must show no unique memory expressions carry no
        // memory traffic; blocks with a target must carry at least that
        // many memory operations.
        if unique_mem == 0 {
            for s in &mut slots {
                if matches!(s, Slot::Load | Slot::Store) {
                    *s = Slot::IntAlu;
                }
            }
        } else {
            let mut mem_count = slots
                .iter()
                .filter(|s| matches!(s, Slot::Load | Slot::Store))
                .count();
            let mut i = 0;
            while mem_count < unique_mem && i < slots.len() {
                if matches!(slots[i], Slot::IntAlu | Slot::FpAdd) {
                    slots[i] = Slot::Load;
                    mem_count += 1;
                }
                i += 1;
            }
        }
        if needs_cmp {
            slots.push(Slot::Cmp);
        }
        slots.push(Slot::Terminator(terminator));
        slots
    }

    fn pick_category(&self, rng: &mut SmallRng) -> Slot {
        let m = &self.mix;
        let total = m.int_alu + m.int_muldiv + m.load + m.store + m.fp_add + m.fp_mul + m.fp_div;
        let mut x = rng.gen::<f64>() * total;
        for (w, s) in [
            (m.int_alu, Slot::IntAlu),
            (m.int_muldiv, Slot::IntMulDiv),
            (m.load, Slot::Load),
            (m.store, Slot::Store),
            (m.fp_add, Slot::FpAdd),
            (m.fp_mul, Slot::FpMul),
            (m.fp_div, Slot::FpDiv),
        ] {
            if x < w {
                return s;
            }
            x -= w;
        }
        Slot::IntAlu
    }

    fn pick_terminator(&self, rng: &mut SmallRng) -> Opcode {
        let x = rng.gen::<f64>();
        if x < 0.55 {
            Opcode::Bicc
        } else if x < 0.70 {
            Opcode::Ba
        } else if x < 0.85 {
            Opcode::Call
        } else if x < 0.90 {
            Opcode::Jmpl
        } else if x < 0.95 {
            Opcode::Save
        } else {
            Opcode::Restore
        }
    }

    // ---- operand selection -----------------------------------------------

    fn int_src(&self, rng: &mut SmallRng) -> Reg {
        if !self.recent_int.is_empty() && rng.gen::<f64>() < self.reuse {
            self.recent_int[rng.gen_range(0..self.recent_int.len())]
        } else {
            INT_POOL[rng.gen_range(0..INT_POOL.len())]
        }
    }

    fn int_dst(&mut self, rng: &mut SmallRng) -> Reg {
        let r = INT_POOL[rng.gen_range(0..INT_POOL.len())];
        push_recent(&mut self.recent_int, r);
        r
    }

    fn fp_src(&self, rng: &mut SmallRng) -> Reg {
        if let Some((start, end, q)) = self.hub_region {
            if self.cur_pos >= start && self.cur_pos < end && rng.gen::<f64>() < q {
                return HUB_REG;
            }
        }
        if !self.recent_fp.is_empty() && rng.gen::<f64>() < self.reuse {
            self.recent_fp[rng.gen_range(0..self.recent_fp.len())]
        } else {
            Reg::f(2 * rng.gen_range(0..16))
        }
    }

    fn fp_dst(&mut self, rng: &mut SmallRng) -> Reg {
        let r = Reg::f(2 * rng.gen_range(0..16));
        push_recent(&mut self.recent_fp, r);
        r
    }

    // ---- instruction emitters ----------------------------------------------

    fn gen_int_alu(&mut self, rng: &mut SmallRng) -> Instruction {
        let ops = [
            Opcode::Add,
            Opcode::Sub,
            Opcode::And,
            Opcode::Or,
            Opcode::Xor,
            Opcode::Sll,
        ];
        let op = ops[rng.gen_range(0..ops.len())];
        if rng.gen::<f64>() < 0.35 {
            let (s, imm) = (self.int_src(rng), rng.gen_range(-64..64));
            let d = self.int_dst(rng);
            Instruction::int_imm(op, s, imm, d)
        } else {
            let (a, b) = (self.int_src(rng), self.int_src(rng));
            let d = self.int_dst(rng);
            Instruction::int3(op, a, b, d)
        }
    }

    fn gen_int_muldiv(&mut self, rng: &mut SmallRng) -> Instruction {
        let ops = [Opcode::Umul, Opcode::Smul, Opcode::Udiv, Opcode::Sdiv];
        let op = ops[rng.gen_range(0..ops.len())];
        let (a, b) = (self.int_src(rng), self.int_src(rng));
        let d = self.int_dst(rng);
        Instruction::int3(op, a, b, d)
    }

    fn gen_fp3(&mut self, rng: &mut SmallRng, op: Opcode) -> Instruction {
        let (a, b) = (self.fp_src(rng), self.fp_src(rng));
        let d = self.fp_dst(rng);
        Instruction::fp3(op, a, b, d)
    }

    fn gen_fp_add(&mut self, rng: &mut SmallRng) -> Instruction {
        match rng.gen_range(0..10) {
            0..=5 => self.gen_fp3(rng, Opcode::FAddD),
            6..=8 => self.gen_fp3(rng, Opcode::FSubD),
            _ => {
                let s = self.fp_src(rng);
                let d = self.fp_dst(rng);
                Instruction::fp2(Opcode::FMovS, s, d)
            }
        }
    }

    fn gen_load(&mut self, rng: &mut SmallRng, mem: MemRef) -> Instruction {
        if self.fp_heavy && rng.gen::<f64>() < 0.7 {
            let op = if rng.gen::<f64>() < 0.6 {
                Opcode::LdDf
            } else {
                Opcode::LdF
            };
            let mut d = self.fp_dst(rng);
            // A double-word load defines the register *pair*: keep it off
            // the hub register's partner or the hub would be clobbered.
            if op == Opcode::LdDf {
                while d.pair_partner() == Some(HUB_REG) {
                    d = self.fp_dst(rng);
                }
            }
            Instruction::load(op, mem, d)
        } else {
            let d = self.int_dst(rng);
            Instruction::load(Opcode::Ld, mem, d)
        }
    }

    fn gen_store(&mut self, rng: &mut SmallRng, mem: MemRef) -> Instruction {
        if self.fp_heavy && rng.gen::<f64>() < 0.7 {
            let op = if rng.gen::<f64>() < 0.6 {
                Opcode::StDf
            } else {
                Opcode::StF
            };
            Instruction::store(op, self.fp_src(rng), mem)
        } else {
            Instruction::store(Opcode::St, self.int_src(rng), mem)
        }
    }

    /// Intern a fresh symbolic expression for this block and fix its
    /// addressing template (base register + offset).
    fn new_expr(
        &self,
        rng: &mut SmallRng,
        program: &mut Program,
        block_idx: usize,
        k: usize,
    ) -> (MemExprId, MemRef) {
        let base = if rng.gen::<f64>() < 0.4 {
            Reg::fp()
        } else {
            BASE_POOL[rng.gen_range(0..BASE_POOL.len())]
        };
        let offset = 8 * k as i32;
        let text = format!("{}.b{block_idx}.e{k}", self.name);
        let id = program.mem_exprs.intern(&text);
        (id, MemRef::base_offset(base, offset, id))
    }
}

fn push_recent(pool: &mut Vec<Reg>, r: Reg) {
    pool.push(r);
    if pool.len() > RECENT_CAP {
        pool.remove(0);
    }
}

/// Destination-safe integer registers (`%o0-%o5`, `%l0-%l7`, `%i0-%i5`,
/// `%g1-%g3`).
static INT_POOL: &[Reg] = &[
    Reg::Int(8),
    Reg::Int(9),
    Reg::Int(10),
    Reg::Int(11),
    Reg::Int(12),
    Reg::Int(13),
    Reg::Int(16),
    Reg::Int(17),
    Reg::Int(18),
    Reg::Int(19),
    Reg::Int(20),
    Reg::Int(21),
    Reg::Int(22),
    Reg::Int(23),
    Reg::Int(24),
    Reg::Int(25),
    Reg::Int(26),
    Reg::Int(27),
    Reg::Int(28),
    Reg::Int(29),
    Reg::Int(1),
    Reg::Int(2),
    Reg::Int(3),
];

/// Base registers for non-stack memory references.
static BASE_POOL: &[Reg] = &[
    Reg::Int(24),
    Reg::Int(25),
    Reg::Int(26),
    Reg::Int(27),
    Reg::Int(1),
    Reg::Int(2),
];

/// Positions (indices into `mem_positions`) at which new expressions are
/// introduced, following the placement's quantiles.
fn introduction_points(mem_positions: &[usize], unique: usize, placement: Placement) -> Vec<usize> {
    let m = mem_positions.len();
    if m == 0 || unique == 0 {
        return Vec::new();
    }
    let u = unique.min(m);
    let mut taken = vec![false; m];
    let mut out = Vec::with_capacity(u);
    for k in 0..u {
        let q = (k as f64 + 0.5) / u as f64;
        let x = match placement {
            Placement::Uniform => q,
            // Density ∝ x (CDF x²): first occurrences skew toward the end
            // of the block — the fpppp property of §6, with the exponent
            // calibrated so the windowed unique-expression maxima of
            // fpppp-1000/2000/4000 track Table 3.
            Placement::EndHeavy => q.sqrt(),
        };
        let mut ix = ((x * m as f64) as usize).min(m - 1);
        // Find the nearest free slot.
        while taken[ix] {
            ix = if ix + 1 < m { ix + 1 } else { 0 };
        }
        taken[ix] = true;
        out.push(mem_positions[ix]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ALL_PROFILES;

    #[test]
    fn generation_is_deterministic() {
        let p = BenchmarkProfile::by_name("grep").unwrap();
        let a = generate(p, 1991);
        let b = generate(p, 1991);
        assert_eq!(a.program.insns, b.program.insns);
        let c = generate(p, 42);
        assert_ne!(a.program.insns, c.program.insns, "different seed differs");
    }

    #[test]
    fn block_structure_round_trips_through_the_partitioner() {
        for name in ["grep", "linpack", "tomcatv"] {
            let p = BenchmarkProfile::by_name(name).unwrap();
            let bench = generate(p, 1991);
            assert_eq!(bench.blocks, bench.program.basic_blocks(), "{name}");
        }
    }

    #[test]
    fn totals_match_profile_exactly() {
        for p in ALL_PROFILES.iter().filter(|p| p.window.is_none()) {
            if p.insts > 12000 {
                continue; // fpppp covered by its own test below
            }
            let bench = generate(p, 1991);
            assert_eq!(bench.program.len(), p.insts, "{} insts", p.name);
            assert_eq!(bench.blocks.len(), p.blocks, "{} blocks", p.name);
            let max = bench.blocks.iter().map(|b| b.len()).max().unwrap();
            assert_eq!(max, p.max_block, "{} max block", p.name);
        }
    }

    #[test]
    fn fpppp_and_window_variants_have_paper_block_counts() {
        for name in ["fpppp", "fpppp-1000", "fpppp-2000", "fpppp-4000"] {
            let p = BenchmarkProfile::by_name(name).unwrap();
            let bench = generate(p, 1991);
            assert_eq!(bench.program.len(), 25545, "{name} insts");
            assert_eq!(bench.blocks.len(), p.blocks, "{name} blocks");
            let max = bench.blocks.iter().map(|b| b.len()).max().unwrap();
            assert_eq!(max, p.max_block, "{name} max block");
        }
    }

    #[test]
    fn unique_mem_expr_stats_track_table3() {
        for name in ["grep", "linpack", "tomcatv", "nasa7"] {
            let p = BenchmarkProfile::by_name(name).unwrap();
            let bench = generate(p, 1991);
            let uniques: Vec<usize> = bench
                .blocks
                .iter()
                .map(|b| {
                    let mut set = std::collections::HashSet::new();
                    for insn in bench.program.block_insns(b) {
                        if let Some(m) = &insn.mem {
                            set.insert(m.expr);
                        }
                    }
                    set.len()
                })
                .collect();
            let max = *uniques.iter().max().unwrap();
            let avg = uniques.iter().sum::<usize>() as f64 / uniques.len() as f64;
            assert_eq!(max, p.mem_max, "{name}: max unique mem exprs");
            assert!(
                (avg - p.mem_avg).abs() / p.mem_avg < 0.35,
                "{name}: avg unique {avg:.2} vs target {}",
                p.mem_avg
            );
        }
    }

    #[test]
    fn endheavy_placement_concentrates_new_exprs_late() {
        let p = BenchmarkProfile::by_name("fpppp").unwrap();
        let bench = generate(p, 1991);
        let big = bench
            .blocks
            .iter()
            .find(|b| b.len() == 11750)
            .expect("the 11750 block");
        let insns = bench.program.block_insns(big);
        let mut seen = std::collections::HashSet::new();
        let mut first_positions = Vec::new();
        for (i, insn) in insns.iter().enumerate() {
            if let Some(m) = &insn.mem {
                if seen.insert(m.expr) {
                    first_positions.push(i);
                }
            }
        }
        let late = first_positions
            .iter()
            .filter(|&&i| i > insns.len() * 2 / 3)
            .count();
        assert!(
            late as f64 > 0.5 * first_positions.len() as f64,
            "end-heavy: most first occurrences in the last third ({late}/{})",
            first_positions.len()
        );
    }

    #[test]
    fn window_variants_share_the_base_stream() {
        let base = generate(BenchmarkProfile::by_name("fpppp").unwrap(), 7);
        let w = generate(BenchmarkProfile::by_name("fpppp-1000").unwrap(), 7);
        assert_eq!(base.program.insns, w.program.insns);
        assert!(w.blocks.len() > base.blocks.len());
    }

    #[test]
    fn zero_unique_blocks_have_no_memory_traffic() {
        let p = BenchmarkProfile::by_name("grep").unwrap();
        let bench = generate(p, 1991);
        for b in &bench.blocks {
            let insns = bench.program.block_insns(b);
            let uniques: std::collections::HashSet<_> =
                insns.iter().filter_map(|i| i.mem.map(|m| m.expr)).collect();
            let mems = insns.iter().filter(|i| i.is_mem()).count();
            if uniques.is_empty() {
                assert_eq!(mems, 0, "no-expr block must carry no mem ops");
            }
        }
    }
}
