//! Instruction windows.
//!
//! The paper keeps the `n**2` construction algorithm practical on huge
//! basic blocks by limiting the number of instructions considered at once:
//! fpppp-1000/2000/4000 are the same program analyzed with maximum block
//! sizes of 1000/2000/4000 instructions. A window does not change the
//! instruction stream — it splits oversized blocks into window-sized
//! chunks at analysis time.

use dagsched_isa::BasicBlock;

/// Split every block larger than `window` into consecutive chunks of at
/// most `window` instructions.
///
/// # Panics
///
/// Panics if `window == 0`.
///
/// ```
/// use dagsched_isa::BasicBlock;
/// use dagsched_workloads::clamp_blocks;
/// let blocks = vec![BasicBlock { range: 0..25 }, BasicBlock { range: 25..30 }];
/// let clamped = clamp_blocks(&blocks, 10);
/// let lens: Vec<usize> = clamped.iter().map(|b| b.len()).collect();
/// assert_eq!(lens, vec![10, 10, 5, 5]);
/// ```
pub fn clamp_blocks(blocks: &[BasicBlock], window: usize) -> Vec<BasicBlock> {
    assert!(window > 0, "window must be positive");
    let mut out = Vec::with_capacity(blocks.len());
    for b in blocks {
        let mut start = b.range.start;
        while start < b.range.end {
            let end = (start + window).min(b.range.end);
            out.push(BasicBlock { range: start..end });
            start = end;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(start: usize, end: usize) -> BasicBlock {
        BasicBlock { range: start..end }
    }

    #[test]
    fn small_blocks_pass_through() {
        let blocks = vec![block(0, 5), block(5, 8)];
        assert_eq!(clamp_blocks(&blocks, 100), blocks);
    }

    #[test]
    fn oversized_block_splits_with_ceil_division() {
        let blocks = vec![block(0, 11750)];
        let clamped = clamp_blocks(&blocks, 1000);
        assert_eq!(clamped.len(), 12);
        assert_eq!(clamped[0].len(), 1000);
        assert_eq!(clamped[11].len(), 750);
        // Coverage is exact and contiguous.
        let total: usize = clamped.iter().map(|b| b.len()).sum();
        assert_eq!(total, 11750);
        for w in clamped.windows(2) {
            assert_eq!(w[0].range.end, w[1].range.start);
        }
    }

    #[test]
    fn exact_multiple_makes_equal_chunks() {
        let clamped = clamp_blocks(&[block(10, 30)], 10);
        assert_eq!(clamped.len(), 2);
        assert!(clamped.iter().all(|b| b.len() == 10));
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        clamp_blocks(&[block(0, 1)], 0);
    }
}
