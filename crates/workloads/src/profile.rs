//! Benchmark profiles calibrated to the paper's Table 3.
//!
//! The paper measures nine programs (SPARC assembly from `cc -O4` /
//! `f77 -O4` under SunOS 4.1.1) plus three instruction-window variants of
//! fpppp. The original assembly is not redistributable, so each benchmark
//! is described here by the *structural* targets Table 3 reports — block
//! counts, instruction counts, block-size extremes, memory-expression
//! density — plus an instruction mix; the generator reproduces streams
//! with matching structure. The paper's algorithms consume exactly this
//! structure, so the substitution preserves the experiments' behaviour.

/// Instruction-category mix (weights, normalized by the generator).
#[derive(Debug, Clone, Copy)]
pub struct OpMix {
    /// Integer ALU operations.
    pub int_alu: f64,
    /// Integer multiply/divide.
    pub int_muldiv: f64,
    /// Loads.
    pub load: f64,
    /// Stores.
    pub store: f64,
    /// FP add/sub/convert/compare.
    pub fp_add: f64,
    /// FP multiply.
    pub fp_mul: f64,
    /// FP divide.
    pub fp_div: f64,
}

impl OpMix {
    /// A mix typical of late-1980s compiled C systems code: mostly integer
    /// ALU and pointer loads, almost no floating point.
    pub const SYSTEMS_C: OpMix = OpMix {
        int_alu: 0.58,
        int_muldiv: 0.01,
        load: 0.26,
        store: 0.13,
        fp_add: 0.01,
        fp_mul: 0.005,
        fp_div: 0.005,
    };

    /// A mix typical of double-precision Fortran kernels: FP pipeline
    /// traffic plus the integer address arithmetic feeding it.
    pub const FORTRAN_FP: OpMix = OpMix {
        int_alu: 0.22,
        int_muldiv: 0.01,
        load: 0.27,
        store: 0.12,
        fp_add: 0.22,
        fp_mul: 0.14,
        fp_div: 0.02,
    };
}

/// Where in a block new (first-occurrence) memory expressions appear.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Spread evenly through the block.
    Uniform,
    /// Concentrated toward the end of the block — the fpppp property the
    /// paper identifies in §6 ("the placement of symbolic memory address
    /// expressions more toward the end of the large basic block"), which
    /// makes *backward* table building encounter more of the resource
    /// universe early.
    EndHeavy,
}

/// A long-lived "hub" value in a giant block: defined once and consumed
/// hundreds of times (fpppp's Table 5 shows table-built maximum
/// children/instruction of 185–503 — a loop-invariant operand feeding a
/// huge expression region).
#[derive(Debug, Clone, Copy)]
pub struct HubSpec {
    /// Where in the block the hub is defined, as a fraction of its size.
    pub def_at_frac: f64,
    /// How many instructions after the definition its uses spread over.
    pub span: usize,
    /// Target number of uses.
    pub uses: usize,
}

/// Structural targets and generation knobs for one benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkProfile {
    /// Benchmark name (Table 3 row).
    pub name: &'static str,
    /// Target number of basic blocks.
    pub blocks: usize,
    /// Target total instruction count.
    pub insts: usize,
    /// The largest block's exact size.
    pub max_block: usize,
    /// Additional pinned large blocks (beyond the maximum one). fpppp
    /// carries a second multi-thousand-instruction block; its size makes
    /// the windowed block counts (fpppp-1000/2000/4000) come out right.
    pub extra_blocks: &'static [usize],
    /// Ordinary (non-pinned) blocks never exceed this size.
    pub body_cap: usize,
    /// Target maximum unique memory expressions in any block.
    pub mem_max: usize,
    /// Target average unique memory expressions per block.
    pub mem_avg: f64,
    /// Instruction mix.
    pub mix: OpMix,
    /// Operand reuse locality in `[0, 1]`: higher values chain results
    /// into later instructions more aggressively (more children per
    /// instruction — tomcatv-like).
    pub reuse: f64,
    /// Placement of first-occurrence memory expressions within blocks.
    pub mem_placement: Placement,
    /// When set, this profile is the named base benchmark processed with
    /// an instruction window of the given size (blocks are split into
    /// window-sized chunks at analysis time; the instruction stream is
    /// identical to the base).
    pub window: Option<(&'static str, usize)>,
    /// Hub value in the pinned maximum block, if any.
    pub hub: Option<HubSpec>,
}

impl BenchmarkProfile {
    /// Look up a built-in profile by Table 3 row name.
    pub fn by_name(name: &str) -> Option<&'static BenchmarkProfile> {
        ALL_PROFILES.iter().find(|p| p.name == name)
    }
}

/// All twelve Table 3 rows, in the paper's order.
pub static ALL_PROFILES: &[BenchmarkProfile] = &[
    BenchmarkProfile {
        name: "grep",
        blocks: 730,
        insts: 1739,
        max_block: 34,
        extra_blocks: &[],
        body_cap: 33,
        mem_max: 5,
        mem_avg: 0.32,
        mix: OpMix::SYSTEMS_C,
        reuse: 0.45,
        mem_placement: Placement::Uniform,
        window: None,
        hub: None,
    },
    BenchmarkProfile {
        name: "regex",
        blocks: 873,
        insts: 2417,
        max_block: 52,
        extra_blocks: &[],
        body_cap: 51,
        mem_max: 9,
        mem_avg: 0.31,
        mix: OpMix::SYSTEMS_C,
        reuse: 0.45,
        mem_placement: Placement::Uniform,
        window: None,
        hub: None,
    },
    BenchmarkProfile {
        name: "dfa",
        blocks: 1623,
        insts: 4760,
        max_block: 45,
        extra_blocks: &[],
        body_cap: 44,
        mem_max: 13,
        mem_avg: 0.67,
        mix: OpMix::SYSTEMS_C,
        reuse: 0.5,
        mem_placement: Placement::Uniform,
        window: None,
        hub: None,
    },
    BenchmarkProfile {
        name: "cccp",
        blocks: 3480,
        insts: 8831,
        max_block: 36,
        extra_blocks: &[],
        body_cap: 35,
        mem_max: 10,
        mem_avg: 0.35,
        mix: OpMix::SYSTEMS_C,
        reuse: 0.45,
        mem_placement: Placement::Uniform,
        window: None,
        hub: None,
    },
    BenchmarkProfile {
        name: "linpack",
        blocks: 390,
        insts: 3391,
        max_block: 145,
        extra_blocks: &[],
        body_cap: 144,
        mem_max: 62,
        mem_avg: 2.58,
        mix: OpMix::FORTRAN_FP,
        reuse: 0.55,
        mem_placement: Placement::Uniform,
        window: None,
        hub: None,
    },
    BenchmarkProfile {
        name: "lloops",
        blocks: 263,
        insts: 3753,
        max_block: 124,
        extra_blocks: &[],
        body_cap: 123,
        mem_max: 40,
        mem_avg: 4.37,
        mix: OpMix::FORTRAN_FP,
        reuse: 0.6,
        mem_placement: Placement::Uniform,
        window: None,
        hub: None,
    },
    BenchmarkProfile {
        name: "tomcatv",
        blocks: 112,
        insts: 1928,
        max_block: 326,
        extra_blocks: &[],
        body_cap: 325,
        mem_max: 68,
        mem_avg: 5.24,
        mix: OpMix::FORTRAN_FP,
        // tomcatv's blocks are dense with value reuse: the paper notes its
        // unusually high children/instruction and arcs/block.
        reuse: 0.8,
        mem_placement: Placement::Uniform,
        window: None,
        hub: None,
    },
    BenchmarkProfile {
        name: "nasa7",
        blocks: 756,
        insts: 10654,
        max_block: 284,
        extra_blocks: &[],
        body_cap: 283,
        mem_max: 60,
        mem_avg: 4.23,
        mix: OpMix::FORTRAN_FP,
        reuse: 0.65,
        mem_placement: Placement::Uniform,
        window: None,
        hub: None,
    },
    BenchmarkProfile {
        name: "fpppp-1000",
        blocks: 675,
        insts: 25545,
        max_block: 1000,
        extra_blocks: &[],
        body_cap: 1000,
        mem_max: 120,
        mem_avg: 5.92,
        mix: OpMix::FORTRAN_FP,
        reuse: 0.6,
        mem_placement: Placement::EndHeavy,
        window: Some(("fpppp", 1000)),
        hub: None,
    },
    BenchmarkProfile {
        name: "fpppp-2000",
        blocks: 668,
        insts: 25545,
        max_block: 2000,
        extra_blocks: &[],
        body_cap: 2000,
        mem_max: 161,
        mem_avg: 5.34,
        mix: OpMix::FORTRAN_FP,
        reuse: 0.6,
        mem_placement: Placement::EndHeavy,
        window: Some(("fpppp", 2000)),
        hub: None,
    },
    BenchmarkProfile {
        name: "fpppp-4000",
        blocks: 664,
        insts: 25545,
        max_block: 4000,
        extra_blocks: &[],
        body_cap: 4000,
        mem_max: 209,
        mem_avg: 5.02,
        mix: OpMix::FORTRAN_FP,
        reuse: 0.6,
        mem_placement: Placement::EndHeavy,
        window: Some(("fpppp", 4000)),
        hub: None,
    },
    BenchmarkProfile {
        name: "fpppp",
        blocks: 662,
        insts: 25545,
        max_block: 11750,
        // A second multi-thousand-instruction block: with the 11750 block
        // this reproduces the paper's windowed block counts exactly
        // (662 → 664/668/675 for windows 4000/2000/1000).
        extra_blocks: &[2800],
        body_cap: 1000,
        mem_max: 324,
        mem_avg: 4.76,
        mix: OpMix::FORTRAN_FP,
        reuse: 0.6,
        mem_placement: Placement::EndHeavy,
        window: None,
        // Definition at instruction 4000 — aligned to every window size
        // of the fpppp-1000/2000/4000 variants — with ~503 uses over the
        // following ~2700 instructions, reproducing Table 5's
        // children/instruction maxima ladder (185 / 403 / 503).
        hub: Some(HubSpec {
            def_at_frac: 4000.0 / 11750.0,
            span: 2700,
            uses: 395,
        }),
    },
];

/// The nine base benchmarks (no window variants), Table 3/4 order.
pub fn base_profiles() -> Vec<&'static BenchmarkProfile> {
    ALL_PROFILES.iter().filter(|p| p.window.is_none()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_profiles_matching_table3_rows() {
        assert_eq!(ALL_PROFILES.len(), 12);
        let names: Vec<_> = ALL_PROFILES.iter().map(|p| p.name).collect();
        assert!(names.contains(&"grep"));
        assert!(names.contains(&"fpppp"));
        assert!(names.contains(&"fpppp-1000"));
    }

    #[test]
    fn lookup_by_name() {
        let t = BenchmarkProfile::by_name("tomcatv").unwrap();
        assert_eq!(t.blocks, 112);
        assert_eq!(t.max_block, 326);
        assert!(BenchmarkProfile::by_name("nonesuch").is_none());
    }

    #[test]
    fn averages_are_consistent_with_totals() {
        // Table 3's avg insts/block is exactly insts/blocks; make sure the
        // targets we pinned reproduce the paper's printed averages.
        let expect = [
            ("grep", 2.38),
            ("regex", 2.77),
            ("dfa", 2.93),
            ("cccp", 2.54),
            ("linpack", 8.69),
            ("lloops", 14.27),
            ("tomcatv", 17.21),
            ("nasa7", 14.09),
            ("fpppp-1000", 37.84),
            ("fpppp-2000", 38.24),
            ("fpppp-4000", 38.47),
            ("fpppp", 38.59),
        ];
        for (name, avg) in expect {
            let p = BenchmarkProfile::by_name(name).unwrap();
            let computed = p.insts as f64 / p.blocks as f64;
            assert!(
                (computed - avg).abs() < 0.01,
                "{name}: {computed:.2} vs paper {avg}"
            );
        }
    }

    #[test]
    fn windowed_block_counts_follow_from_pinned_large_blocks() {
        // ceil-division bookkeeping behind the fpppp window variants.
        let split = |size: usize, w: usize| size.div_ceil(w);
        let base = BenchmarkProfile::by_name("fpppp").unwrap();
        for (name, w) in [
            ("fpppp-4000", 4000),
            ("fpppp-2000", 2000),
            ("fpppp-1000", 1000),
        ] {
            let variant = BenchmarkProfile::by_name(name).unwrap();
            let extra: usize = [base.max_block]
                .iter()
                .chain(base.extra_blocks)
                .map(|&s| split(s, w) - 1)
                .sum();
            assert_eq!(base.blocks + extra, variant.blocks, "{name}");
        }
    }

    #[test]
    fn pinned_blocks_fit_within_totals() {
        for p in ALL_PROFILES {
            let pinned: usize = p.max_block + p.extra_blocks.iter().sum::<usize>();
            assert!(pinned < p.insts, "{}", p.name);
            assert!(p.blocks > p.extra_blocks.len());
        }
    }
}
