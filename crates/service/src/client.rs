//! A small blocking client for the `dagsched-service` protocol, with
//! optional bounded retries.
//!
//! # Retries
//!
//! [`Client::request_with_retry`] wraps a request in a
//! [`RetryPolicy`]: bounded attempts, jittered exponential backoff
//! (each delay drawn uniformly from `[cap/2, cap]`, `cap` doubling up
//! to `max_delay`), per-attempt socket timeouts, an optional overall
//! deadline, and automatic redial after transport failures. The policy
//! only retries failures the server marked transient
//! ([`crate::proto::ErrorCode::is_retryable`]) or transport-level
//! breakage (reset, truncated/corrupt frame); malformed requests fail
//! identically every time and are returned at once. A server-supplied
//! `retry_after_ms` hint overrides a shorter computed backoff.
//!
//! Retried requests are idempotent by construction: the server's
//! schedule cache and quarantine both key on request *content* (the
//! `attempt` counter is excluded), so a retry can never produce a
//! different schedule than the attempt it replaces — at most it
//! produces a cache hit.
//!
//! # Retry budgets
//!
//! A [`RetryBudget`] is a token bucket shared by a fleet of callers:
//! every *retry* spends one token, every *success* refills a fraction
//! of one (10% by default), and first attempts are never gated. The
//! effect is a hard cap on retry amplification — during a brownout,
//! wire requests cannot exceed roughly `logical × (1 + ratio)` once
//! the initial allowance drains, which is what breaks the retry-storm
//! half of the metastable-failure loop (DESIGN.md §16).
//! [`Client::request_with_retry_budgeted`] consults one; the router's
//! hedges and failovers draw from the same mechanism.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::proto::{
    read_frame, write_frame, AdminCommand, ErrorReply, FrameKind, FrameReadError, ScheduleRequest,
    ScheduleResponse, DEFAULT_MAX_FRAME,
};
use crate::server::{parse_endpoint, Listen};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server's frame could not be read.
    Frame(FrameReadError),
    /// The server answered with an unexpected or undecodable frame.
    Protocol(String),
    /// The server answered with a structured error.
    Server(ErrorReply),
}

impl ClientError {
    /// Whether a retry could plausibly succeed. Transport breakage and
    /// undecodable frames are retryable (the bytes may have been
    /// corrupted in flight; the connection is redialed first); server
    /// errors defer to [`crate::proto::ErrorCode::is_retryable`].
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Io(_) | ClientError::Frame(_) | ClientError::Protocol(_) => true,
            ClientError::Server(reply) => reply.code.is_retryable(),
        }
    }

    /// Whether the underlying connection can no longer be trusted
    /// (mid-frame failure leaves the stream at an unknown offset).
    fn poisons_connection(&self) -> bool {
        matches!(
            self,
            ClientError::Io(_) | ClientError::Frame(_) | ClientError::Protocol(_)
        )
    }

    /// The server's suggested retry delay, when it sent one.
    fn retry_after(&self) -> Option<Duration> {
        match self {
            ClientError::Server(reply) => reply.retry_after_ms.map(Duration::from_millis),
            _ => None,
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "frame error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<FrameReadError> for ClientError {
    fn from(e: FrameReadError) -> ClientError {
        ClientError::Frame(e)
    }
}

/// How [`Client::request_with_retry`] behaves.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (`0` = try exactly once).
    pub max_retries: u32,
    /// Backoff cap before the first retry; doubles per retry.
    pub base_delay: Duration,
    /// Upper bound the doubling cap saturates at.
    pub max_delay: Duration,
    /// Socket read/write timeout applied to every attempt.
    pub per_attempt_timeout: Option<Duration>,
    /// Wall-clock budget for the whole call, backoff included. When a
    /// computed backoff would cross it, the last error returns instead.
    pub overall_timeout: Option<Duration>,
    /// Seed for the deterministic jitter stream (reproducible runs).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(1),
            per_attempt_timeout: Some(Duration::from_secs(10)),
            overall_timeout: None,
            jitter_seed: 0x5EED_1991,
        }
    }
}

/// SplitMix64: tiny, seedable, good enough for jitter.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// The jittered backoff before retry number `retry` (0-based),
    /// advancing `rng`. The value is uniform in `[cap/2, cap]` where
    /// `cap = min(base_delay << retry, max_delay)` — bounded above by
    /// the doubling envelope and below by half of it, so consecutive
    /// delays grow on average but never synchronize across clients.
    pub fn backoff_delay(&self, retry: u32, rng: &mut u64) -> Duration {
        let shift = retry.min(20); // 2^20 × base already dwarfs max_delay
        let cap = self
            .base_delay
            .saturating_mul(1u32 << shift)
            .min(self.max_delay);
        let cap_ns = u64::try_from(cap.as_nanos()).unwrap_or(u64::MAX);
        let half = cap_ns / 2;
        let span = cap_ns - half; // inclusive range [half, cap_ns]
        let jitter = if span == 0 {
            0
        } else {
            splitmix64(rng) % (span + 1)
        };
        Duration::from_nanos(half + jitter)
    }
}

/// What a retried call actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Total attempts sent (≥ 1 unless the overall deadline was
    /// already spent).
    pub attempts: u32,
    /// Attempts after the first.
    pub retries: u32,
    /// Reconnections performed after transport failures.
    pub redials: u32,
    /// Backoffs that honoured a server `retry_after_ms` hint.
    pub server_hints_honoured: u32,
    /// Total time spent sleeping between attempts.
    pub backoff_total: Duration,
}

/// Default retry-budget allowance, in whole tokens.
pub const RETRY_BUDGET_DEFAULT_TOKENS: u64 = 10;

/// Default refill per success, in millitokens: 100‰ = one retry earned
/// per ten successes, the ~10% amplification cap.
pub const RETRY_BUDGET_REFILL_PER_MILLE: u64 = 100;

/// A shared token bucket bounding retry amplification (see the module
/// docs). Thread-safe and lock-free: the balance is millitokens in one
/// atomic, CAS-updated, so a fleet of client threads can share one
/// budget without coordination.
///
/// Invariant: total spends can never exceed the initial allowance plus
/// `successes × refill/1000` tokens — the balance saturates at zero
/// and refills are capped, so no interleaving of successes and spends
/// escapes the ratio.
#[derive(Debug)]
pub struct RetryBudget {
    /// Current balance, in millitokens (1 token = 1 retry = 1000).
    millitokens: AtomicU64,
    /// Balance ceiling, in millitokens.
    cap_milli: u64,
    /// Credit per recorded success, in millitokens.
    refill_milli: u64,
}

impl Default for RetryBudget {
    fn default() -> RetryBudget {
        RetryBudget::new(
            RETRY_BUDGET_DEFAULT_TOKENS,
            RETRY_BUDGET_DEFAULT_TOKENS,
            RETRY_BUDGET_REFILL_PER_MILLE,
        )
    }
}

impl RetryBudget {
    /// A budget starting with `initial_tokens`, capped at `cap_tokens`,
    /// earning `refill_per_mille` millitokens per success.
    pub fn new(initial_tokens: u64, cap_tokens: u64, refill_per_mille: u64) -> RetryBudget {
        let cap_milli = cap_tokens.saturating_mul(1000).max(1);
        RetryBudget {
            millitokens: AtomicU64::new(initial_tokens.saturating_mul(1000).min(cap_milli)),
            cap_milli,
            refill_milli: refill_per_mille,
        }
    }

    /// Credit the budget for one successful request.
    pub fn record_success(&self) {
        let mut cur = self.millitokens.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(self.refill_milli).min(self.cap_milli);
            match self.millitokens.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Take one token for a retry/hedge/failover. `false` means the
    /// budget is exhausted and the extra attempt must be skipped.
    pub fn try_spend(&self) -> bool {
        let mut cur = self.millitokens.load(Ordering::Relaxed);
        loop {
            if cur < 1000 {
                return false;
            }
            match self.millitokens.compare_exchange_weak(
                cur,
                cur - 1000,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Whole tokens currently available.
    pub fn tokens(&self) -> u64 {
        self.millitokens.load(Ordering::Relaxed) / 1000
    }
}

/// The concrete connection (kept as an enum so per-attempt socket
/// timeouts can be applied; trait objects would hide `set_read_timeout`).
enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    fn set_timeouts(&self, timeout: Option<Duration>) {
        match self {
            Stream::Tcp(s) => {
                let _ = s.set_read_timeout(timeout);
                let _ = s.set_write_timeout(timeout);
            }
            #[cfg(unix)]
            Stream::Unix(s) => {
                let _ = s.set_read_timeout(timeout);
                let _ = s.set_write_timeout(timeout);
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A cancellation handle for one in-flight [`Client`] call, cloned off
/// the live connection with [`Client::cancel_handle`].
///
/// [`CancelHandle::cancel`] shuts the socket down from *another*
/// thread, which makes the blocked read or write on the owning thread
/// return an error immediately — the std-only equivalent of aborting a
/// future. The router's hedged forwards use this to cancel the losing
/// side of a request race: the cancelled `Client` surfaces a transport
/// error and must be discarded (its stream is dead), which is exactly
/// the discipline callers already apply to broken connections.
pub struct CancelHandle {
    stream: Stream,
}

impl CancelHandle {
    /// Abort whatever call is in flight on the owning connection by
    /// shutting the socket down in both directions. Idempotent; a
    /// handle whose connection already finished cleanly just breaks
    /// the (now unused) stream.
    pub fn cancel(&self) {
        match &self.stream {
            Stream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            Stream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

/// A blocking connection to a `dagsched-service` daemon.
pub struct Client {
    stream: Stream,
    max_frame: usize,
    /// Remembered dial target, enabling redial after transport errors.
    endpoint: Option<Listen>,
    /// Set when a transport error leaves the stream mid-frame; the
    /// next retried attempt redials before sending anything.
    broken: bool,
}

impl Client {
    /// Connect to an endpoint string (`tcp:HOST:PORT`, `HOST:PORT`, or
    /// `unix:/path`).
    pub fn connect(endpoint: &str) -> Result<Client, ClientError> {
        let listen = parse_endpoint(endpoint).map_err(ClientError::Protocol)?;
        let stream = Client::dial(&listen)?;
        Ok(Client {
            stream,
            max_frame: DEFAULT_MAX_FRAME,
            endpoint: Some(listen),
            broken: false,
        })
    }

    /// Connect to an endpoint string, retrying the *dial itself* under
    /// `policy`. This is how a client rides out a server restart
    /// window: `connection refused` (the old process is gone, the new
    /// one has not bound yet) and `not found` (a Unix socket path that
    /// is about to be re-created) are transport errors, and transport
    /// errors are always retryable. Backoff is the same jittered
    /// exponential envelope as [`Client::request_with_retry`], and the
    /// `overall_timeout` budget is honoured.
    pub fn connect_with_retry(
        endpoint: &str,
        policy: &RetryPolicy,
    ) -> Result<(Client, RetryStats), ClientError> {
        let listen = parse_endpoint(endpoint).map_err(ClientError::Protocol)?;
        let started = Instant::now();
        let mut rng = policy.jitter_seed;
        let mut stats = RetryStats::default();
        let mut last_err: Option<ClientError> = None;
        for attempt in 0..=policy.max_retries {
            if let Some(overall) = policy.overall_timeout {
                if attempt > 0 && started.elapsed() >= overall {
                    return Err(last_err.expect("attempt > 0 implies a recorded error"));
                }
            }
            stats.attempts += 1;
            if attempt > 0 {
                stats.retries += 1;
                stats.redials += 1;
            }
            match Client::dial(&listen) {
                Ok(stream) => {
                    let client = Client {
                        stream,
                        max_frame: DEFAULT_MAX_FRAME,
                        endpoint: Some(listen),
                        broken: false,
                    };
                    return Ok((client, stats));
                }
                Err(err) => {
                    if attempt == policy.max_retries {
                        return Err(err);
                    }
                    let mut delay = policy.backoff_delay(attempt, &mut rng);
                    if let Some(overall) = policy.overall_timeout {
                        if started.elapsed() + delay >= overall {
                            return Err(err);
                        }
                        // Never sleep past the budget.
                        delay = delay.min(overall.saturating_sub(started.elapsed()));
                    }
                    last_err = Some(err);
                    std::thread::sleep(delay);
                    stats.backoff_total += delay;
                }
            }
        }
        Err(last_err.unwrap_or_else(|| {
            ClientError::Protocol("connect loop ended without an attempt".to_string())
        }))
    }

    fn dial(listen: &Listen) -> Result<Stream, ClientError> {
        match listen {
            Listen::Tcp(addr) => {
                let stream = TcpStream::connect(addr)?;
                // Frames are written header-then-payload; with Nagle on,
                // that interacts with delayed ACKs into a ~40 ms stall
                // per request-sized write. This is a request/response
                // protocol: always flush segments immediately.
                stream.set_nodelay(true)?;
                Ok(Stream::Tcp(stream))
            }
            #[cfg(unix)]
            Listen::Unix(path) => Ok(Stream::Unix(UnixStream::connect(path)?)),
            #[cfg(not(unix))]
            Listen::Unix(_) => Err(ClientError::Protocol(
                "unix sockets are not available on this platform".to_string(),
            )),
        }
    }

    /// Wrap an already connected TCP stream. Such a client cannot
    /// redial: transport failures during a retried call are final.
    pub fn from_tcp(stream: TcpStream) -> Client {
        let _ = stream.set_nodelay(true);
        Client {
            stream: Stream::Tcp(stream),
            max_frame: DEFAULT_MAX_FRAME,
            endpoint: None,
            broken: false,
        }
    }

    /// Connect over a Unix-domain socket.
    #[cfg(unix)]
    pub fn connect_unix(path: &Path) -> Result<Client, ClientError> {
        Ok(Client {
            stream: Stream::Unix(UnixStream::connect(path)?),
            max_frame: DEFAULT_MAX_FRAME,
            endpoint: Some(Listen::Unix(path.to_path_buf())),
            broken: false,
        })
    }

    fn roundtrip(
        &mut self,
        kind: FrameKind,
        payload: &[u8],
    ) -> Result<(FrameKind, Vec<u8>), ClientError> {
        write_frame(&mut self.stream, kind, payload)?;
        let (kind, payload) = read_frame(&mut self.stream, self.max_frame)?;
        if kind == FrameKind::Error {
            let reply = decode_error(&payload)?;
            return Err(ClientError::Server(reply));
        }
        Ok((kind, payload))
    }

    /// Schedule a program (exactly one attempt).
    pub fn request(&mut self, req: &ScheduleRequest) -> Result<ScheduleResponse, ClientError> {
        let payload = req.to_json().to_string();
        let (kind, payload) = self.roundtrip(FrameKind::Request, payload.as_bytes())?;
        if kind != FrameKind::Response {
            return Err(ClientError::Protocol(format!(
                "expected a response frame, got {kind:?}"
            )));
        }
        let value = decode_json(&payload)?;
        ScheduleResponse::from_json(&value)
            .ok_or_else(|| ClientError::Protocol("undecodable response".to_string()))
    }

    /// Schedule a program under `policy`, retrying transient failures
    /// with jittered exponential backoff. Returns the response plus a
    /// record of what the retry loop did.
    pub fn request_with_retry(
        &mut self,
        req: &ScheduleRequest,
        policy: &RetryPolicy,
    ) -> Result<(ScheduleResponse, RetryStats), ClientError> {
        self.request_with_retry_budgeted(req, policy, None)
    }

    /// [`Client::request_with_retry`] under a shared [`RetryBudget`]:
    /// the first attempt always goes out, but every retry must first
    /// win a token — an exhausted budget returns the last error
    /// immediately (recorded as `budget_denied`), and every success
    /// credits the bucket back.
    pub fn request_with_retry_budgeted(
        &mut self,
        req: &ScheduleRequest,
        policy: &RetryPolicy,
        budget: Option<&RetryBudget>,
    ) -> Result<(ScheduleResponse, RetryStats), ClientError> {
        let started = Instant::now();
        let mut rng = policy.jitter_seed;
        let mut stats = RetryStats::default();
        let mut attempt_req = req.clone();
        let mut last_err: Option<ClientError> = None;

        for attempt in 0..=policy.max_retries {
            // Respect the overall budget before doing any work.
            if let Some(overall) = policy.overall_timeout {
                if started.elapsed() >= overall && attempt > 0 {
                    return Err(last_err.expect("attempt > 0 implies a recorded error"));
                }
            }
            // Every attempt past the first must win a retry token;
            // first attempts are never gated by the budget. A denied
            // retry returns the last error as-is.
            if attempt > 0 {
                if let Some(b) = budget {
                    if !b.try_spend() {
                        return Err(last_err.expect("attempt > 0 implies a recorded error"));
                    }
                }
            }
            // A broken stream must be redialed before reuse.
            if self.broken {
                match &self.endpoint {
                    Some(listen) => match Client::dial(listen) {
                        Ok(stream) => {
                            self.stream = stream;
                            self.broken = false;
                            stats.redials += 1;
                        }
                        Err(e) => {
                            last_err = Some(e);
                            // Fall through to backoff-and-retry below.
                            if !self.backoff(policy, attempt, started, &mut rng, &mut stats, None) {
                                return Err(last_err.expect("recorded above"));
                            }
                            continue;
                        }
                    },
                    None => {
                        return Err(last_err.unwrap_or_else(|| {
                            ClientError::Protocol(
                                "connection broken and no endpoint to redial".to_string(),
                            )
                        }))
                    }
                }
            }

            self.stream.set_timeouts(policy.per_attempt_timeout);
            // Tag the wire request with the attempt number: servers
            // count retries, and operators can spot retry storms. The
            // tag is excluded from cache and quarantine keys.
            attempt_req.attempt = u64::from(attempt);
            stats.attempts += 1;
            if attempt > 0 {
                stats.retries += 1;
            }

            match self.request(&attempt_req) {
                Ok(resp) => {
                    if let Some(b) = budget {
                        b.record_success();
                    }
                    return Ok((resp, stats));
                }
                Err(err) => {
                    if err.poisons_connection() {
                        self.broken = true;
                    }
                    if !err.is_retryable() || attempt == policy.max_retries {
                        return Err(err);
                    }
                    let hint = err.retry_after();
                    last_err = Some(err);
                    if !self.backoff(policy, attempt, started, &mut rng, &mut stats, hint) {
                        return Err(last_err.expect("recorded above"));
                    }
                }
            }
        }
        Err(last_err.unwrap_or_else(|| {
            ClientError::Protocol("retry loop ended without an attempt".to_string())
        }))
    }

    /// Sleep before the next retry. Returns `false` when the overall
    /// deadline would be crossed (the caller gives up instead).
    fn backoff(
        &self,
        policy: &RetryPolicy,
        attempt: u32,
        started: Instant,
        rng: &mut u64,
        stats: &mut RetryStats,
        server_hint: Option<Duration>,
    ) -> bool {
        let mut delay = policy.backoff_delay(attempt, rng);
        if let Some(hint) = server_hint {
            if hint > delay {
                delay = hint;
                stats.server_hints_honoured += 1;
            }
        }
        if let Some(overall) = policy.overall_timeout {
            if started.elapsed() + delay >= overall {
                return false;
            }
        }
        std::thread::sleep(delay);
        stats.backoff_total += delay;
        true
    }

    /// A [`CancelHandle`] for the current connection, or `None` when
    /// the socket cannot be cloned. Cancellation only covers *this*
    /// stream: a later redial needs a fresh handle.
    pub fn cancel_handle(&self) -> Option<CancelHandle> {
        let stream = match &self.stream {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone().ok()?),
            #[cfg(unix)]
            Stream::Unix(s) => Stream::Unix(s.try_clone().ok()?),
        };
        Some(CancelHandle { stream })
    }

    /// Apply a read/write timeout to the underlying socket. Calls that
    /// go through [`Client::request_with_retry`] get their timeout from
    /// the policy; one-shot calls (`ping`, `metrics`, `admin`) use
    /// whatever was last set here (default: none).
    pub fn set_io_timeout(&self, timeout: Option<Duration>) {
        self.stream.set_timeouts(timeout);
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let (kind, _) = self.roundtrip(FrameKind::Ping, b"")?;
        match kind {
            FrameKind::Pong => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected pong, got {other:?}"
            ))),
        }
    }

    /// Send an admin command (snapshot export/install on a daemon,
    /// membership changes on a router) and return the JSON result.
    pub fn admin(&mut self, cmd: &AdminCommand) -> Result<Json, ClientError> {
        let payload = cmd.to_json().to_string();
        let (kind, payload) = self.roundtrip(FrameKind::Admin, payload.as_bytes())?;
        if kind != FrameKind::AdminReply {
            return Err(ClientError::Protocol(format!(
                "expected an admin reply, got {kind:?}"
            )));
        }
        decode_json(&payload)
    }

    /// Fetch the server's metrics snapshot.
    pub fn metrics(&mut self) -> Result<Json, ClientError> {
        let (kind, payload) = self.roundtrip(FrameKind::Metrics, b"")?;
        if kind != FrameKind::Metrics {
            return Err(ClientError::Protocol(format!(
                "expected metrics, got {kind:?}"
            )));
        }
        decode_json(&payload)
    }

    /// Ask the server to drain and exit.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        let (kind, _) = self.roundtrip(FrameKind::Shutdown, b"")?;
        match kind {
            FrameKind::Pong => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected shutdown ack, got {other:?}"
            ))),
        }
    }
}

fn decode_json(payload: &[u8]) -> Result<Json, ClientError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| ClientError::Protocol("payload is not UTF-8".to_string()))?;
    Json::parse(text).map_err(|e| ClientError::Protocol(format!("payload is not JSON: {e}")))
}

fn decode_error(payload: &[u8]) -> Result<ErrorReply, ClientError> {
    let value = decode_json(payload)?;
    ErrorReply::from_json(&value)
        .ok_or_else(|| ClientError::Protocol("undecodable error reply".to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::ErrorCode;

    /// Property: for every retry index and many seeds, the jittered
    /// delay stays inside the `[cap/2, cap]` envelope, and the cap
    /// itself is monotone non-decreasing and bounded by `max_delay`.
    #[test]
    fn backoff_jitter_respects_the_monotone_bounded_envelope() {
        let policy = RetryPolicy {
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(640),
            ..RetryPolicy::default()
        };
        for seed in 0..200u64 {
            let mut rng = seed;
            let mut prev_cap = Duration::ZERO;
            for retry in 0..12u32 {
                let cap = policy
                    .base_delay
                    .saturating_mul(1 << retry.min(20))
                    .min(policy.max_delay);
                assert!(cap >= prev_cap, "cap is monotone");
                assert!(cap <= policy.max_delay, "cap is bounded");
                prev_cap = cap;
                let d = policy.backoff_delay(retry, &mut rng);
                assert!(
                    d >= cap / 2 && d <= cap,
                    "seed {seed} retry {retry}: {d:?} outside [{:?}, {cap:?}]",
                    cap / 2,
                );
            }
        }
    }

    /// Property: the jitter stream is deterministic per seed (so chaos
    /// runs replay exactly) and differs across seeds (so a fleet of
    /// clients does not thunder in lockstep).
    #[test]
    fn backoff_jitter_is_seeded_and_decorrelated() {
        let policy = RetryPolicy::default();
        let series = |seed: u64| -> Vec<Duration> {
            let mut rng = seed;
            (0..8).map(|r| policy.backoff_delay(r, &mut rng)).collect()
        };
        assert_eq!(series(42), series(42), "same seed, same delays");
        let a = series(1);
        let b = series(2);
        assert_ne!(a, b, "different seeds must decorrelate");
    }

    #[test]
    fn degenerate_policies_never_panic() {
        // Zero base: delay pinned at zero.
        let zero = RetryPolicy {
            base_delay: Duration::ZERO,
            ..RetryPolicy::default()
        };
        let mut rng = 7;
        assert_eq!(zero.backoff_delay(0, &mut rng), Duration::ZERO);
        assert_eq!(zero.backoff_delay(31, &mut rng), Duration::ZERO);
        // Huge retry index: shift is clamped, cap saturates at max.
        let policy = RetryPolicy::default();
        let d = policy.backoff_delay(u32::MAX, &mut rng);
        assert!(d <= policy.max_delay);
    }

    /// Property: retryability classification — transport errors retry,
    /// server errors follow the code's contract.
    #[test]
    fn non_retryable_errors_are_never_retried() {
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::ParseError,
            ErrorCode::BlockTooLarge,
            ErrorCode::DeadlineExpired,
            ErrorCode::MalformedFrame,
            ErrorCode::OversizedFrame,
            ErrorCode::Quarantined,
            ErrorCode::IdleTimeout,
        ] {
            let err = ClientError::Server(ErrorReply::new(code, "x"));
            assert!(!err.is_retryable(), "{code} must not retry");
        }
        for code in [ErrorCode::Busy, ErrorCode::Draining, ErrorCode::Internal] {
            let err = ClientError::Server(ErrorReply::new(code, "x"));
            assert!(err.is_retryable(), "{code} must retry");
            assert!(!err.poisons_connection(), "server replies keep the stream");
        }
        let io_err = ClientError::Io(io::Error::new(io::ErrorKind::ConnectionReset, "rst"));
        assert!(io_err.is_retryable());
        assert!(io_err.poisons_connection());
    }

    /// A dial that keeps failing gives up after `max_retries` with the
    /// last transport error, quickly (the delays are tiny).
    #[test]
    fn connect_with_retry_gives_up_on_a_dead_endpoint() {
        let policy = RetryPolicy {
            max_retries: 2,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            overall_timeout: Some(Duration::from_secs(5)),
            ..RetryPolicy::default()
        };
        let err = Client::connect_with_retry("unix:/nonexistent/dagsched-nowhere.sock", &policy)
            .err()
            .expect("no listener can ever appear at that path");
        assert!(matches!(err, ClientError::Io(_)), "{err}");
    }

    /// The restart-window scenario in miniature: nothing is listening
    /// when the client first dials (connection refused / not found),
    /// a listener appears shortly after, and `connect_with_retry`
    /// rides the gap instead of failing fast.
    #[cfg(unix)]
    #[test]
    fn connect_with_retry_survives_a_late_binding_listener() {
        use std::os::unix::net::UnixListener;
        let path =
            std::env::temp_dir().join(format!("dagsched-late-bind-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let bind_path = path.clone();
        let binder = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(60));
            let listener = UnixListener::bind(&bind_path).expect("bind");
            // Hold the accepted connection long enough for connect to
            // return on the client side.
            let (_conn, _) = listener.accept().expect("accept");
            std::thread::sleep(Duration::from_millis(40));
        });
        let policy = RetryPolicy {
            max_retries: 50,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(20),
            overall_timeout: Some(Duration::from_secs(10)),
            ..RetryPolicy::default()
        };
        let endpoint = format!("unix:{}", path.display());
        let (client, stats) =
            Client::connect_with_retry(&endpoint, &policy).expect("listener appears eventually");
        assert!(stats.retries > 0, "first dial must have failed: {stats:?}");
        assert_eq!(stats.redials, stats.retries);
        assert!(client.endpoint.is_some(), "redial target is remembered");
        binder.join().unwrap();
        let _ = std::fs::remove_file(&path);
    }

    /// A cancel handle aborts a request stuck on a server that accepts
    /// but never answers — the hedged-forward scenario: the loser of
    /// the race must return promptly instead of waiting out its socket
    /// timeout.
    #[cfg(unix)]
    #[test]
    fn cancel_handle_unblocks_a_stuck_request() {
        use std::os::unix::net::UnixListener;
        let path =
            std::env::temp_dir().join(format!("dagsched-cancel-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path).expect("bind");
        let hold = std::thread::spawn(move || {
            // Accept, read the request, answer nothing.
            let (mut conn, _) = listener.accept().expect("accept");
            let mut buf = [0u8; 4096];
            let _ = conn.read(&mut buf);
            std::thread::sleep(Duration::from_secs(5));
        });
        let mut client = Client::connect_unix(&path).expect("connect");
        let cancel = client.cancel_handle().expect("clonable socket");
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            cancel.cancel();
        });
        let started = Instant::now();
        let err = client
            .request(&ScheduleRequest::asm("add %o0, %o1, %o2"))
            .expect_err("a cancelled request must not succeed");
        assert!(
            started.elapsed() < Duration::from_secs(3),
            "cancel must interrupt the blocked read, not wait out a timeout"
        );
        assert!(
            matches!(err, ClientError::Io(_) | ClientError::Frame(_)),
            "cancellation surfaces as transport breakage: {err}"
        );
        canceller.join().unwrap();
        hold.join().unwrap();
        let _ = std::fs::remove_file(&path);
    }

    /// Property: under *any* interleaving of successes and spend
    /// attempts — sequenced by a seeded splitmix64 stream — the bucket
    /// never grants more than `initial + successes × ratio` retries,
    /// and its balance never exceeds the cap. This is the wire-
    /// amplification bound: retries ≤ allowance + 10% of successes.
    #[test]
    fn retry_budget_never_exceeds_the_cap_ratio_under_any_interleaving() {
        for seed in 0..64u64 {
            let initial = seed % 8;
            let budget = RetryBudget::new(initial, 16, RETRY_BUDGET_REFILL_PER_MILLE);
            let mut rng = seed.wrapping_mul(0x9E37_79B9).wrapping_add(1);
            let (mut successes, mut spent) = (0u64, 0u64);
            for _ in 0..4096 {
                if splitmix64(&mut rng).is_multiple_of(3) {
                    budget.record_success();
                    successes += 1;
                } else if budget.try_spend() {
                    spent += 1;
                }
                assert!(
                    spent * 1000 <= initial * 1000 + successes * RETRY_BUDGET_REFILL_PER_MILLE,
                    "seed {seed}: {spent} spends from {initial} initial + {successes} successes"
                );
                assert!(budget.tokens() <= 16, "balance must respect the cap");
            }
        }
    }

    /// Concurrent spenders cannot overdraw: with N threads racing on
    /// one bucket, total grants still respect the allowance.
    #[test]
    fn retry_budget_is_race_free_across_threads() {
        use std::sync::atomic::AtomicU64 as Counter;
        use std::sync::Arc;
        let budget = Arc::new(RetryBudget::new(20, 20, 0));
        let granted = Arc::new(Counter::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let budget = Arc::clone(&budget);
                let granted = Arc::clone(&granted);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        if budget.try_spend() {
                            granted.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(granted.load(Ordering::SeqCst), 20, "exactly the allowance");
        assert!(!budget.try_spend(), "and not a token more");
    }

    /// Exhaustion gates *retries*, never first attempts: against a
    /// server that always sheds with `busy`, a client holding an empty
    /// budget still sends its first attempt, then returns the busy
    /// error instead of retrying.
    #[cfg(unix)]
    #[test]
    fn an_exhausted_budget_skips_retries_but_not_first_attempts() {
        use std::os::unix::net::UnixListener;
        let path =
            std::env::temp_dir().join(format!("dagsched-budget-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path).expect("bind");
        let server = std::thread::spawn(move || {
            // Answer every request on every connection with `busy`
            // until the client hangs up.
            for _ in 0..2 {
                let (mut conn, _) = listener.accept().expect("accept");
                while read_frame(&mut conn, DEFAULT_MAX_FRAME).is_ok() {
                    let reply = ErrorReply::new(crate::proto::ErrorCode::Busy, "shedding")
                        .with_retry_after_ms(1)
                        .to_json()
                        .to_string();
                    if write_frame(&mut conn, FrameKind::Error, reply.as_bytes()).is_err() {
                        break;
                    }
                }
            }
        });
        let policy = RetryPolicy {
            max_retries: 5,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            ..RetryPolicy::default()
        };
        let req = ScheduleRequest::asm("add %o0, %o1, %o2");

        // Empty budget: one wire attempt, the retry is denied.
        let empty = RetryBudget::new(0, 8, RETRY_BUDGET_REFILL_PER_MILLE);
        let mut client = Client::connect_unix(&path).expect("connect");
        let err = client
            .request_with_retry_budgeted(&req, &policy, Some(&empty))
            .expect_err("the server only ever sheds");
        assert!(matches!(&err, ClientError::Server(r) if r.code == crate::proto::ErrorCode::Busy));
        // Hang up so the server moves on to the next connection.
        drop(client);

        // One token: the retry goes out (second busy consumed by the
        // server thread), then the budget denies the third attempt.
        let one = RetryBudget::new(1, 8, RETRY_BUDGET_REFILL_PER_MILLE);
        let mut client = Client::connect_unix(&path).expect("connect");
        let err = client
            .request_with_retry_budgeted(&req, &policy, Some(&one))
            .expect_err("still shedding");
        assert!(matches!(&err, ClientError::Server(r) if r.code == crate::proto::ErrorCode::Busy));
        assert_eq!(one.tokens(), 0, "the single token was spent");
        // Hang up so the server's read loop ends and the thread exits.
        drop(client);

        server.join().unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn retry_after_hints_surface_through_client_errors() {
        let err =
            ClientError::Server(ErrorReply::new(ErrorCode::Busy, "q full").with_retry_after_ms(75));
        assert_eq!(err.retry_after(), Some(Duration::from_millis(75)));
        let plain = ClientError::Server(ErrorReply::new(ErrorCode::Busy, "q full"));
        assert_eq!(plain.retry_after(), None);
    }
}
