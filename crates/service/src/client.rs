//! A small blocking client for the `dagsched-service` protocol.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::Path;

use crate::json::Json;
use crate::proto::{
    read_frame, write_frame, ErrorReply, FrameKind, FrameReadError, ScheduleRequest,
    ScheduleResponse, DEFAULT_MAX_FRAME,
};
use crate::server::{parse_endpoint, Listen};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server's frame could not be read.
    Frame(FrameReadError),
    /// The server answered with an unexpected or undecodable frame.
    Protocol(String),
    /// The server answered with a structured error.
    Server(ErrorReply),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "frame error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<FrameReadError> for ClientError {
    fn from(e: FrameReadError) -> ClientError {
        ClientError::Frame(e)
    }
}

trait Transport: Read + Write + Send {}
impl<T: Read + Write + Send> Transport for T {}

/// A blocking connection to a `dagsched-service` daemon.
pub struct Client {
    stream: Box<dyn Transport>,
    max_frame: usize,
}

impl Client {
    /// Connect to an endpoint string (`tcp:HOST:PORT`, `HOST:PORT`, or
    /// `unix:/path`).
    pub fn connect(endpoint: &str) -> Result<Client, ClientError> {
        match parse_endpoint(endpoint).map_err(ClientError::Protocol)? {
            Listen::Tcp(addr) => Ok(Client::from_tcp(TcpStream::connect(addr)?)),
            #[cfg(unix)]
            Listen::Unix(path) => Client::connect_unix(&path),
            #[cfg(not(unix))]
            Listen::Unix(_) => Err(ClientError::Protocol(
                "unix sockets are not available on this platform".to_string(),
            )),
        }
    }

    /// Wrap an already connected TCP stream.
    pub fn from_tcp(stream: TcpStream) -> Client {
        Client {
            stream: Box::new(stream),
            max_frame: DEFAULT_MAX_FRAME,
        }
    }

    /// Connect over a Unix-domain socket.
    #[cfg(unix)]
    pub fn connect_unix(path: &Path) -> Result<Client, ClientError> {
        Ok(Client {
            stream: Box::new(UnixStream::connect(path)?),
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    fn roundtrip(
        &mut self,
        kind: FrameKind,
        payload: &[u8],
    ) -> Result<(FrameKind, Vec<u8>), ClientError> {
        write_frame(&mut self.stream, kind, payload)?;
        let (kind, payload) = read_frame(&mut self.stream, self.max_frame)?;
        if kind == FrameKind::Error {
            let reply = decode_error(&payload)?;
            return Err(ClientError::Server(reply));
        }
        Ok((kind, payload))
    }

    /// Schedule a program.
    pub fn request(&mut self, req: &ScheduleRequest) -> Result<ScheduleResponse, ClientError> {
        let payload = req.to_json().to_string();
        let (kind, payload) = self.roundtrip(FrameKind::Request, payload.as_bytes())?;
        if kind != FrameKind::Response {
            return Err(ClientError::Protocol(format!(
                "expected a response frame, got {kind:?}"
            )));
        }
        let value = decode_json(&payload)?;
        ScheduleResponse::from_json(&value)
            .ok_or_else(|| ClientError::Protocol("undecodable response".to_string()))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let (kind, _) = self.roundtrip(FrameKind::Ping, b"")?;
        match kind {
            FrameKind::Pong => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected pong, got {other:?}"
            ))),
        }
    }

    /// Fetch the server's metrics snapshot.
    pub fn metrics(&mut self) -> Result<Json, ClientError> {
        let (kind, payload) = self.roundtrip(FrameKind::Metrics, b"")?;
        if kind != FrameKind::Metrics {
            return Err(ClientError::Protocol(format!(
                "expected metrics, got {kind:?}"
            )));
        }
        decode_json(&payload)
    }

    /// Ask the server to drain and exit.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        let (kind, _) = self.roundtrip(FrameKind::Shutdown, b"")?;
        match kind {
            FrameKind::Pong => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected shutdown ack, got {other:?}"
            ))),
        }
    }
}

fn decode_json(payload: &[u8]) -> Result<Json, ClientError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| ClientError::Protocol("payload is not UTF-8".to_string()))?;
    Json::parse(text).map_err(|e| ClientError::Protocol(format!("payload is not JSON: {e}")))
}

fn decode_error(payload: &[u8]) -> Result<ErrorReply, ClientError> {
    let value = decode_json(payload)?;
    ErrorReply::from_json(&value)
        .ok_or_else(|| ClientError::Protocol("undecodable error reply".to_string()))
}
