//! The content-addressed schedule cache.
//!
//! Real programs repeat themselves: unrolled loops, macro expansions and
//! generated code produce the same basic block over and over, and a
//! long-running scheduling daemon sees the same hot blocks across many
//! requests. This cache keys each block by *content* — a canonical
//! rendering of its instructions plus the machine / algorithm
//! configuration — and replays the previously computed schedule on a
//! hit, skipping DAG construction, heuristic calculation and list
//! scheduling entirely.
//!
//! # Keying
//!
//! The canonical bytes of a block are, per instruction, its rendered
//! text (which deliberately excludes the program-absolute `orig_index`
//! and the program-interned [`MemExprId`]) followed by the
//! *first-occurrence ordinal* of the instruction's memory-expression id
//! within the block. The ordinal encoding captures exactly the
//! information the symbolic memory-disambiguation policy consumes —
//! which memory references within the block share an address expression
//! — while remaining invariant under the program-wide renumbering that
//! makes raw `MemExprId`s unusable as keys. The configuration
//! fingerprint appends the scheduler's full `Debug` rendering (construction
//! algorithm, memory policy, heuristic list, direction, postpass flag),
//! the driver flags and [`MachineModel::fingerprint`]. Everything is
//! hashed with two independent FNV-1a streams into a 128-bit key, so
//! accidental collisions are out of reach for any realistic cache
//! population.
//!
//! # Why values store indices, not instructions
//!
//! A cached entry must replay *bit-identically* — including the interned
//! memory-expression identities the pipeline simulator keys on, which
//! differ from program to program. Entries therefore store the emitted
//! **order** (indices into the block, plus literal `nop`s inserted by
//! delay-slot filling) and reconstruct the stream from the *requesting*
//! block's own instructions; a hit is indistinguishable from a fresh
//! compile by construction.
//!
//! # Eviction
//!
//! A doubly-linked LRU list threaded through a slab, bounded by both an
//! entry count and an approximate byte budget. Oversized single entries
//! are never admitted. Hits, misses, insertions and evictions are
//! counted for the metrics endpoint.

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

use dagsched_core::NodeId;
use dagsched_driver::{BlockCache, BlockOutcome, BlockReport, DriverConfig};
use dagsched_isa::{Fnv64, Instruction, MachineModel};
use dagsched_sched::{CarryOut, SlotFill};

/// Seed of the second hash stream (an arbitrary odd constant).
const KEY_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// Sentinel slab index for "no node".
const NONE: usize = usize::MAX;

/// Fixed per-entry bookkeeping charged by [`CachedBlock::capture`]:
/// LRU links, report fields, vector headers and hash-table slack.
const ENTRY_OVERHEAD: usize = 96;

/// The minimum [`CachedBlock::cost_bytes`] any entry can be charged:
/// key storage (map + slab copy), the map's slab-index value, and
/// [`ENTRY_OVERHEAD`]. Exposed for the byte-accounting invariant in
/// the cache property test.
pub const MIN_ENTRY_COST: usize =
    2 * std::mem::size_of::<Key>() + std::mem::size_of::<usize>() + ENTRY_OVERHEAD;

/// Approximate footprint of an entry with `order_len` emitted slots
/// (used both when capturing a fresh compile and when rehydrating a
/// persisted entry, so the byte budget means the same thing in both
/// directions).
fn entry_cost(order_len: usize) -> usize {
    order_len * std::mem::size_of::<Instruction>() + MIN_ENTRY_COST
}

/// Configuration for [`ScheduleCache`].
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Maximum number of cached blocks.
    pub max_entries: usize,
    /// Approximate byte budget over all cached blocks.
    pub max_bytes: usize,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            max_entries: 4096,
            max_bytes: 64 << 20,
        }
    }
}

/// A 128-bit content key: two independent FNV-1a streams over the same
/// canonical bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key {
    a: u64,
    b: u64,
}

impl Key {
    /// The two 64-bit halves (for persistence).
    pub fn to_parts(self) -> (u64, u64) {
        (self.a, self.b)
    }

    /// Rebuild from the two halves.
    pub fn from_parts(a: u64, b: u64) -> Key {
        Key { a, b }
    }
}

/// Compute the cache key for (`insns`, `model`, `config`).
pub fn block_key(insns: &[Instruction], model: &MachineModel, config: &DriverConfig) -> Key {
    let mut a = Fnv64::new();
    let mut b = Fnv64::with_seed(KEY_SEED);
    let mut ordinals: HashMap<u32, u32> = HashMap::new();
    let mut text = String::new();
    for insn in insns {
        use std::fmt::Write as _;
        text.clear();
        let _ = write!(text, "{insn}");
        let ord = match &insn.mem {
            Some(m) => {
                let next = ordinals.len() as u32;
                *ordinals.entry(m.expr.index()).or_insert(next)
            }
            None => u32::MAX,
        };
        a.write_str(&text);
        a.write_u32(ord);
        b.write_str(&text);
        b.write_u32(ord);
    }
    let cfg = format!(
        "{:?}|inherit={}|fill={}|heur={:?}",
        config.scheduler, config.inherit_latencies, config.fill_delay_slots, config.heuristics
    );
    a.write_str(&cfg);
    b.write_str(&cfg);
    let mfp = model.fingerprint();
    a.write_u64(mfp);
    b.write_u64(mfp);
    Key {
        a: a.finish(),
        b: b.finish(),
    }
}

/// One position of a cached emitted stream.
#[derive(Debug, Clone)]
enum EmitSlot {
    /// The instruction at this index of the *requesting* block.
    FromBlock(u32),
    /// A literal instruction not present in the block (the delay-slot
    /// `nop`).
    Literal(Instruction),
}

/// The cached value: everything needed to reproduce a [`BlockOutcome`]
/// from the requesting block's own instructions.
#[derive(Debug, Clone)]
struct CachedBlock {
    order: Vec<EmitSlot>,
    len: usize,
    original_makespan: u64,
    scheduled_makespan: u64,
    slot: Option<SlotFill>,
    cost_bytes: usize,
}

impl CachedBlock {
    /// Capture a freshly compiled outcome, mapping each emitted
    /// instruction back to its index in `insns` (multiset matching, so
    /// duplicate instructions are assigned distinct indices).
    fn capture(insns: &[Instruction], outcome: &BlockOutcome) -> CachedBlock {
        let mut positions: HashMap<&Instruction, VecDeque<usize>> = HashMap::new();
        for (i, insn) in insns.iter().enumerate() {
            positions.entry(insn).or_default().push_back(i);
        }
        let order: Vec<EmitSlot> = outcome
            .emitted
            .iter()
            .map(
                |insn| match positions.get_mut(insn).and_then(VecDeque::pop_front) {
                    Some(i) => EmitSlot::FromBlock(i as u32),
                    None => EmitSlot::Literal(insn.clone()),
                },
            )
            .collect();
        // Approximate footprint of the whole entry, not just the
        // payload: the emitted-order slots, plus the 128-bit content
        // key this entry pins (stored twice — once in the lookup map,
        // once in the slab entry), the map's slab-index value, and
        // fixed per-entry bookkeeping (LRU links, report fields).
        // Omitting the key/index share under-counted every entry by
        // ~40 bytes, so a cache full of tiny blocks blew its byte
        // budget by an unbounded margin.
        let cost_bytes = entry_cost(order.len());
        CachedBlock {
            order,
            len: outcome.report.len,
            original_makespan: outcome.report.original_makespan,
            scheduled_makespan: outcome.report.scheduled_makespan,
            slot: outcome.report.slot.clone(),
            cost_bytes,
        }
    }

    /// Reconstruct the outcome for block `block` of the requesting
    /// program, using *its* instructions.
    fn replay(&self, block: usize, insns: &[Instruction]) -> Option<BlockOutcome> {
        let emitted: Option<Vec<Instruction>> = self
            .order
            .iter()
            .map(|slot| match slot {
                EmitSlot::FromBlock(i) => insns.get(*i as usize).cloned(),
                EmitSlot::Literal(insn) => Some(insn.clone()),
            })
            .collect();
        Some(BlockOutcome {
            emitted: emitted?,
            report: BlockReport {
                block,
                len: self.len,
                original_makespan: self.original_makespan,
                scheduled_makespan: self.scheduled_makespan,
                slot: self.slot.clone(),
            },
            // The carry is only consumed under latency inheritance,
            // which bypasses the cache entirely.
            carry: CarryOut::default(),
        })
    }
}

/// Sentinel order-slot value marking a literal delay-slot `nop` in the
/// persisted encoding (block indices are capped far below this).
const PERSIST_NOP_SLOT: u32 = u32::MAX;

impl CachedBlock {
    /// Serialize this entry (with its `key`) for the durability layer.
    ///
    /// Returns `None` when the entry cannot be persisted faithfully:
    /// the only literal instruction delay-slot filling ever emits is
    /// the canonical `nop`, which round-trips as a tag; any other
    /// literal (impossible today, conceivable after a scheduler change)
    /// keeps the entry RAM-only rather than risking a lossy encoding.
    fn encode(&self, key: Key) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(64 + 4 * self.order.len());
        let (a, b) = key.to_parts();
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&b.to_le_bytes());
        out.extend_from_slice(&(self.len as u64).to_le_bytes());
        out.extend_from_slice(&self.original_makespan.to_le_bytes());
        out.extend_from_slice(&self.scheduled_makespan.to_le_bytes());
        let (slot_tag, slot_val): (u8, u32) = match &self.slot {
            None => (0, 0),
            Some(SlotFill::Moved(nid)) => (1, nid.index() as u32),
            Some(SlotFill::Nop) => (2, 0),
            Some(SlotFill::NoSlot) => (3, 0),
        };
        out.push(slot_tag);
        out.extend_from_slice(&slot_val.to_le_bytes());
        out.extend_from_slice(&(self.order.len() as u32).to_le_bytes());
        for slot in &self.order {
            match slot {
                EmitSlot::FromBlock(i) => {
                    debug_assert!(*i < PERSIST_NOP_SLOT);
                    out.extend_from_slice(&i.to_le_bytes());
                }
                EmitSlot::Literal(insn) if *insn == Instruction::nop() => {
                    out.extend_from_slice(&PERSIST_NOP_SLOT.to_le_bytes());
                }
                EmitSlot::Literal(_) => return None,
            }
        }
        Some(out)
    }

    /// Decode a persisted entry. `None` on any structural mismatch —
    /// the record is simply skipped during recovery (per-record
    /// checksums make this unreachable short of a format bug, but a
    /// corrupt record must never panic recovery).
    fn decode(bytes: &[u8]) -> Option<(Key, CachedBlock)> {
        let u64_at = |o: usize| -> Option<u64> {
            bytes.get(o..o + 8)?.try_into().ok().map(u64::from_le_bytes)
        };
        let u32_at = |o: usize| -> Option<u32> {
            bytes.get(o..o + 4)?.try_into().ok().map(u32::from_le_bytes)
        };
        let key = Key::from_parts(u64_at(0)?, u64_at(8)?);
        let len = usize::try_from(u64_at(16)?).ok()?;
        let original_makespan = u64_at(24)?;
        let scheduled_makespan = u64_at(32)?;
        let slot_tag = *bytes.get(40)?;
        let slot_val = u32_at(41)?;
        let slot = match slot_tag {
            0 => None,
            1 => Some(SlotFill::Moved(NodeId::new(slot_val as usize))),
            2 => Some(SlotFill::Nop),
            3 => Some(SlotFill::NoSlot),
            _ => return None,
        };
        let count = usize::try_from(u32_at(45)?).ok()?;
        let body = bytes.get(49..)?;
        if body.len() != 4 * count {
            return None;
        }
        let mut order = Vec::with_capacity(count);
        for i in 0..count {
            let raw = u32::from_le_bytes(body[4 * i..4 * i + 4].try_into().ok()?);
            order.push(if raw == PERSIST_NOP_SLOT {
                EmitSlot::Literal(Instruction::nop())
            } else {
                EmitSlot::FromBlock(raw)
            });
        }
        let cost_bytes = entry_cost(order.len());
        Some((
            key,
            CachedBlock {
                order,
                len,
                original_makespan,
                scheduled_makespan,
                slot,
                cost_bytes,
            },
        ))
    }
}

struct Entry {
    key: Key,
    value: CachedBlock,
    prev: usize,
    next: usize,
}

/// Counters exposed by [`ScheduleCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted to stay within budget.
    pub evictions: u64,
    /// Current entry count.
    pub entries: usize,
    /// Current approximate byte footprint.
    pub bytes: usize,
}

impl CacheStats {
    /// Fraction of lookups that hit, in `[0, 1]`. Reads as `0.0` (not
    /// NaN) before any lookup has happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Lru {
    map: HashMap<Key, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    bytes: usize,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

impl Lru {
    fn new() -> Lru {
        Lru {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NONE,
            tail: NONE,
            bytes: 0,
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
        }
    }

    /// Unlink slot `ix` from the recency list.
    fn unlink(&mut self, ix: usize) {
        let (prev, next) = (self.slab[ix].prev, self.slab[ix].next);
        if prev != NONE {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NONE {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Link slot `ix` at the head (most recently used).
    fn link_front(&mut self, ix: usize) {
        self.slab[ix].prev = NONE;
        self.slab[ix].next = self.head;
        if self.head != NONE {
            self.slab[self.head].prev = ix;
        }
        self.head = ix;
        if self.tail == NONE {
            self.tail = ix;
        }
    }

    fn touch(&mut self, ix: usize) {
        if self.head != ix {
            self.unlink(ix);
            self.link_front(ix);
        }
    }

    fn evict_tail(&mut self) {
        let ix = self.tail;
        if ix == NONE {
            return;
        }
        self.unlink(ix);
        self.map.remove(&self.slab[ix].key);
        self.bytes -= self.slab[ix].value.cost_bytes;
        // Drop the payload; keep the slot for reuse.
        self.slab[ix].value.order = Vec::new();
        self.free.push(ix);
        self.evictions += 1;
    }

    /// Insert-if-absent; returns whether the entry was admitted. The
    /// if-absent semantics are what make recovery replay idempotent:
    /// double-replay, or a snapshot overlapping the WAL tail, converges
    /// to the same cache.
    fn insert(&mut self, key: Key, value: CachedBlock, config: &CacheConfig) -> bool {
        if self.map.contains_key(&key) {
            return false;
        }
        if value.cost_bytes > config.max_bytes || config.max_entries == 0 {
            // A single over-budget entry would evict the whole cache and
            // still not fit; never admit it.
            return false;
        }
        self.bytes += value.cost_bytes;
        let entry = Entry {
            key,
            value,
            prev: NONE,
            next: NONE,
        };
        let ix = match self.free.pop() {
            Some(ix) => {
                self.slab[ix] = entry;
                ix
            }
            None => {
                self.slab.push(entry);
                self.slab.len() - 1
            }
        };
        self.link_front(ix);
        self.map.insert(key, ix);
        self.insertions += 1;
        while self.map.len() > config.max_entries || self.bytes > config.max_bytes {
            self.evict_tail();
        }
        true
    }
}

/// Write-through sink invoked (outside the cache lock) with the encoded
/// bytes of every freshly admitted entry.
pub type PersistWriter = Box<dyn Fn(&[u8]) + Send + Sync>;

/// A bounded, thread-safe, content-addressed schedule cache implementing
/// the driver's [`BlockCache`] interposition point.
pub struct ScheduleCache {
    config: CacheConfig,
    inner: Mutex<Lru>,
    /// Optional durability hook: called with the encoded bytes of every
    /// admitted entry, *after* the cache lock is released (so the sink
    /// may freely re-enter the cache, e.g. to export for a snapshot).
    writer: Mutex<Option<PersistWriter>>,
}

impl ScheduleCache {
    /// An empty cache bounded by `config`.
    pub fn new(config: CacheConfig) -> ScheduleCache {
        ScheduleCache {
            config,
            inner: Mutex::new(Lru::new()),
            writer: Mutex::new(None),
        }
    }

    /// Lock the LRU, recovering from poisoning. This lock is shared by
    /// every worker; under `catch_unwind` supervision a worker that
    /// panics while holding it (an injected fault, or a bug in the
    /// replay path) would otherwise poison it and turn *every*
    /// subsequent request into an `internal` error — one contained
    /// crash must cost one reply, not the whole cache. The LRU's
    /// intrusive lists are written with index assignments that either
    /// fully happen or don't (no temporarily-dangling states across a
    /// panic point), so the recovered data is structurally sound.
    fn lock_inner(&self) -> std::sync::MutexGuard<'_, Lru> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn lock_writer(&self) -> std::sync::MutexGuard<'_, Option<PersistWriter>> {
        self.writer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Install (or replace) the write-through persistence sink. Import
    /// recovered entries *before* installing the writer, or recovery
    /// would re-log everything it just read.
    pub fn set_writer(&self, writer: PersistWriter) {
        *self.lock_writer() = Some(writer);
    }

    /// Serialize every cached entry, least recently used first (so
    /// re-importing in order reproduces the recency order). Entries
    /// that cannot be encoded faithfully are skipped.
    pub fn export_entries(&self) -> Vec<Vec<u8>> {
        let inner = self.lock_inner();
        let mut out = Vec::with_capacity(inner.map.len());
        let mut ix = inner.tail;
        while ix != NONE {
            let entry = &inner.slab[ix];
            if let Some(bytes) = entry.value.encode(entry.key) {
                out.push(bytes);
            }
            ix = entry.prev;
        }
        out
    }

    /// Rehydrate one persisted entry (insert-if-absent, budgets
    /// enforced). Returns `true` when the entry was admitted; `false`
    /// for duplicates, over-budget entries, or undecodable bytes. Never
    /// triggers the write-through sink.
    pub fn import_entry(&self, bytes: &[u8]) -> bool {
        match CachedBlock::decode(bytes) {
            Some((key, value)) => self.lock_inner().insert(key, value, &self.config),
            None => false,
        }
    }

    /// Snapshot the hit/miss/size counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock_inner();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            insertions: inner.insertions,
            evictions: inner.evictions,
            entries: inner.map.len(),
            bytes: inner.bytes,
        }
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.lock_inner().map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cached keys from most to least recently used (test/diagnostic
    /// helper).
    pub fn keys_by_recency(&self) -> Vec<Key> {
        let inner = self.lock_inner();
        let mut out = Vec::with_capacity(inner.map.len());
        let mut ix = inner.head;
        while ix != NONE {
            out.push(inner.slab[ix].key);
            ix = inner.slab[ix].next;
        }
        out
    }
}

impl Default for ScheduleCache {
    fn default() -> ScheduleCache {
        ScheduleCache::new(CacheConfig::default())
    }
}

impl BlockCache for ScheduleCache {
    fn lookup(
        &self,
        block: usize,
        insns: &[Instruction],
        model: &MachineModel,
        config: &DriverConfig,
    ) -> Option<BlockOutcome> {
        let key = block_key(insns, model, config);
        let mut inner = self.lock_inner();
        match inner.map.get(&key).copied() {
            Some(ix) => {
                inner.touch(ix);
                let replayed = inner.slab[ix].value.replay(block, insns);
                if replayed.is_some() {
                    inner.hits += 1;
                } else {
                    inner.misses += 1;
                }
                replayed
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    fn store(
        &self,
        insns: &[Instruction],
        model: &MachineModel,
        config: &DriverConfig,
        outcome: &BlockOutcome,
    ) {
        let key = block_key(insns, model, config);
        let value = CachedBlock::capture(insns, outcome);
        // Encode before inserting (insert moves the value), but only
        // touch the sink when the entry was actually admitted — and do
        // so *after* the cache lock is dropped, so the sink can safely
        // re-enter the cache.
        let encoded = value.encode(key);
        let admitted = self.lock_inner().insert(key, value, &self.config);
        if admitted {
            if let (Some(bytes), Some(writer)) = (encoded, self.lock_writer().as_ref()) {
                writer(&bytes);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsched_core::Scratch;
    use dagsched_driver::compile_block;
    use dagsched_workloads::parse_asm;

    fn block(text: &str) -> Vec<Instruction> {
        parse_asm(text).unwrap().insns
    }

    fn compile(insns: &[Instruction], model: &MachineModel, config: &DriverConfig) -> BlockOutcome {
        let mut scratch = Scratch::new();
        compile_block(0, insns, model, config, None, &mut scratch).expect("well-formed block")
    }

    /// Regression: a worker that panics while holding the cache lock
    /// (injected fault mid-insert, or a bug in the replay path)
    /// poisons a plain `Mutex`. Every lock site recovers the guard, so
    /// one contained panic costs one reply — not `internal` errors for
    /// every request thereafter.
    #[test]
    fn the_cache_survives_a_poisoned_lock() {
        use std::sync::Arc;
        let cache = Arc::new(ScheduleCache::default());
        let poisoner = Arc::clone(&cache);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.inner.lock().unwrap();
            panic!("injected fault: panic while holding the cache lock");
        })
        .join();
        assert!(cache.inner.is_poisoned(), "setup must actually poison");

        // Every public surface still works after the poisoning.
        let insns = block("ld [%o0], %l0\n add %l0, %o1, %o2");
        let model = MachineModel::sparc2();
        let config = DriverConfig::default();
        let outcome = compile(&insns, &model, &config);
        cache.store(&insns, &model, &config, &outcome);
        let hit = cache.lookup(0, &insns, &model, &config).unwrap();
        assert_eq!(hit.emitted, outcome.emitted);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().hits, 1);
        assert!(!cache.export_entries().is_empty());
    }

    #[test]
    fn store_then_lookup_replays_the_same_outcome() {
        let insns = block("ld [%o0], %l0\n add %l0, %o1, %o2\n st %o2, [%o3]");
        let model = MachineModel::sparc2();
        let config = DriverConfig::default();
        let cache = ScheduleCache::default();
        let outcome = compile(&insns, &model, &config);
        cache.store(&insns, &model, &config, &outcome);
        let hit = cache.lookup(3, &insns, &model, &config).unwrap();
        assert_eq!(hit.emitted, outcome.emitted);
        assert_eq!(hit.report.block, 3, "block index is the requester's");
        assert_eq!(
            hit.report.scheduled_makespan,
            outcome.report.scheduled_makespan
        );
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn key_is_sensitive_to_model_config_and_expr_structure() {
        let insns = block("ld [%o0], %l0\n faddd %f0, %f2, %f4");
        let model = MachineModel::sparc2();
        let config = DriverConfig::default();
        let base = block_key(&insns, &model, &config);

        assert_ne!(
            base,
            block_key(&insns, &MachineModel::deep_fpu(), &config),
            "machine model must be part of the key"
        );
        let other_cfg = DriverConfig {
            scheduler: dagsched_sched::Scheduler::new(dagsched_sched::SchedulerKind::Tiemann),
            ..DriverConfig::default()
        };
        assert_ne!(
            base,
            block_key(&insns, &model, &other_cfg),
            "scheduler must be part of the key"
        );
        let flagged = DriverConfig {
            fill_delay_slots: true,
            ..DriverConfig::default()
        };
        assert_ne!(base, block_key(&insns, &model, &flagged));

        // Same rendered text, different expr sharing structure.
        let shared = block("ld [%o0], %l0\n st %l0, [%o0]");
        let a = block_key(&shared, &model, &config);
        let mut unshared = shared.clone();
        unshared[1].mem.as_mut().unwrap().expr = dagsched_isa::MemExprId::from_index(7);
        assert_ne!(
            a,
            block_key(&unshared, &model, &config),
            "expr-sharing structure must be part of the key"
        );
    }

    #[test]
    fn key_ignores_program_position() {
        let model = MachineModel::sparc2();
        let config = DriverConfig::default();
        let a = block("add %o0, %o1, %o2\n sub %o2, %o3, %o4");
        let mut b = a.clone();
        for (i, insn) in b.iter_mut().enumerate() {
            insn.orig_index = 1000 + i as u32; // same block later in a program
        }
        assert_eq!(
            block_key(&a, &model, &config),
            block_key(&b, &model, &config)
        );
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let model = MachineModel::sparc2();
        let config = DriverConfig::default();
        let cache = ScheduleCache::new(CacheConfig {
            max_entries: 2,
            max_bytes: usize::MAX >> 1,
        });
        let b1 = block("add %o0, %o1, %o2");
        let b2 = block("sub %o0, %o1, %o2");
        let b3 = block("xor %o0, %o1, %o2");
        for b in [&b1, &b2] {
            let o = compile(b, &model, &config);
            cache.store(b, &model, &config, &o);
        }
        // Touch b1 so b2 becomes the LRU victim.
        assert!(cache.lookup(0, &b1, &model, &config).is_some());
        let o3 = compile(&b3, &model, &config);
        cache.store(&b3, &model, &config, &o3);
        assert_eq!(cache.len(), 2);
        assert!(
            cache.lookup(0, &b2, &model, &config).is_none(),
            "b2 evicted"
        );
        assert!(cache.lookup(0, &b1, &model, &config).is_some(), "b1 kept");
        assert!(cache.lookup(0, &b3, &model, &config).is_some(), "b3 kept");
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(
            cache.keys_by_recency().len(),
            2,
            "recency list stays consistent"
        );
    }

    #[test]
    fn byte_budget_is_enforced_and_oversized_entries_are_skipped() {
        let model = MachineModel::sparc2();
        let config = DriverConfig::default();
        let one = block("add %o0, %o1, %o2");
        let o = compile(&one, &model, &config);
        let entry_cost = CachedBlock::capture(&one, &o).cost_bytes;

        // Budget for exactly two single-instruction entries.
        let cache = ScheduleCache::new(CacheConfig {
            max_entries: usize::MAX,
            max_bytes: 2 * entry_cost,
        });
        let blocks = [
            block("add %o0, %o1, %o2"),
            block("sub %o0, %o1, %o2"),
            block("xor %o0, %o1, %o2"),
        ];
        for b in &blocks {
            let o = compile(b, &model, &config);
            cache.store(b, &model, &config, &o);
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 2, "{stats:?}");
        assert!(stats.bytes <= 2 * entry_cost, "{stats:?}");
        assert_eq!(stats.evictions, 1);

        // An entry larger than the whole budget is never admitted (and
        // evicts nothing).
        let tiny = ScheduleCache::new(CacheConfig {
            max_entries: usize::MAX,
            max_bytes: entry_cost.saturating_sub(1),
        });
        tiny.store(&one, &model, &config, &o);
        assert!(tiny.is_empty());
        assert_eq!(tiny.stats().evictions, 0);
    }

    #[test]
    fn duplicate_instructions_map_to_distinct_indices() {
        // Two identical adds: multiset matching must keep both.
        let insns = block("add %o0, %o1, %o2\n add %o0, %o1, %o2\n smul %o2, %o3, %o4");
        let model = MachineModel::sparc2();
        let config = DriverConfig::default();
        let cache = ScheduleCache::default();
        let outcome = compile(&insns, &model, &config);
        cache.store(&insns, &model, &config, &outcome);
        let hit = cache.lookup(0, &insns, &model, &config).unwrap();
        assert_eq!(hit.emitted.len(), insns.len());
        assert_eq!(hit.emitted, outcome.emitted);
    }
}
