//! Deterministic fault injection for chaos testing.
//!
//! Compiled only behind the `fault-injection` feature: production
//! builds carry none of this machinery. When a [`FaultConfig`] is
//! installed on the server, every request draws one fault decision from
//! a seeded counter-based stream — the same `(seed, request sequence)`
//! pair always yields the same fault, so a chaos run that found a bug
//! replays bit-for-bit from its seed.
//!
//! Injectable faults, mirroring what production serving actually
//! suffers:
//!
//! * **worker panic** — thrown inside the panic-containment boundary,
//!   exercising catch-unwind, arena respawn, and quarantine strikes;
//! * **slow reply** — the worker sleeps before answering, exercising
//!   client per-attempt timeouts and queue backpressure;
//! * **truncated frame** — only a prefix of the response frame is
//!   written before the connection closes, exercising the client's
//!   frame-decode error path and redial;
//! * **corrupt frame** — response payload bytes are flipped,
//!   exercising the undecodable-payload path;
//! * **connection reset** — the socket closes before any response
//!   byte, exercising EOF handling and retry.
//!
//! Rates are expressed per mille (‰) so a whole-percent grid and finer
//! rates both encode exactly. The decision function lays the rates on
//! `[0, 1000)` cumulatively; a draw beyond the configured total means
//! "no fault".

/// Per-mille injection rates plus the stream seed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed for the per-request decision stream.
    pub seed: u64,
    /// ‰ of requests whose worker panics mid-pipeline.
    pub panic_per_mille: u16,
    /// ‰ of requests answered only after [`FaultConfig::slow_ms`].
    pub slow_per_mille: u16,
    /// Injected delay for slow replies, in milliseconds.
    pub slow_ms: u64,
    /// ‰ of responses truncated mid-frame.
    pub truncate_per_mille: u16,
    /// ‰ of responses with corrupted payload bytes.
    pub corrupt_per_mille: u16,
    /// ‰ of responses dropped before any byte is written.
    pub reset_per_mille: u16,
}

/// One request's drawn fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Serve normally.
    None,
    /// Panic inside the worker's containment boundary.
    Panic,
    /// Sleep this many milliseconds before answering.
    Slow(u64),
    /// Write only a prefix of the response frame, then close.
    TruncateFrame,
    /// Flip payload bytes in the response frame, then close.
    CorruptFrame,
    /// Close the connection without writing the response.
    ResetConnection,
}

/// SplitMix64 finalizer over a counter: a stateless, seekable stream.
fn mix(seed: u64, seq: u64) -> u64 {
    let mut z = seed
        .wrapping_add(seq.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultConfig {
    /// Sum of all configured rates (may exceed 1000; excess rates are
    /// effectively clipped by the cumulative layout).
    pub fn total_per_mille(&self) -> u32 {
        u32::from(self.panic_per_mille)
            + u32::from(self.slow_per_mille)
            + u32::from(self.truncate_per_mille)
            + u32::from(self.corrupt_per_mille)
            + u32::from(self.reset_per_mille)
    }

    /// The deterministic fault for request number `seq`.
    pub fn decide(&self, seq: u64) -> Fault {
        let draw = mix(self.seed, seq) % 1000;
        let mut bound = u64::from(self.panic_per_mille);
        if draw < bound {
            return Fault::Panic;
        }
        bound += u64::from(self.slow_per_mille);
        if draw < bound {
            return Fault::Slow(self.slow_ms);
        }
        bound += u64::from(self.truncate_per_mille);
        if draw < bound {
            return Fault::TruncateFrame;
        }
        bound += u64::from(self.corrupt_per_mille);
        if draw < bound {
            return Fault::CorruptFrame;
        }
        bound += u64::from(self.reset_per_mille);
        if draw < bound {
            return Fault::ResetConnection;
        }
        Fault::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaos() -> FaultConfig {
        FaultConfig {
            seed: 1991,
            panic_per_mille: 100,
            slow_per_mille: 100,
            slow_ms: 5,
            truncate_per_mille: 50,
            corrupt_per_mille: 50,
            reset_per_mille: 50,
        }
    }

    #[test]
    fn decisions_are_deterministic_per_seed_and_seq() {
        let cfg = chaos();
        for seq in 0..64 {
            assert_eq!(cfg.decide(seq), cfg.decide(seq), "seq {seq}");
        }
        let reseeded = FaultConfig { seed: 7, ..cfg };
        let a: Vec<Fault> = (0..256).map(|s| cfg.decide(s)).collect();
        let b: Vec<Fault> = (0..256).map(|s| reseeded.decide(s)).collect();
        assert_ne!(a, b, "different seeds must draw different streams");
    }

    #[test]
    fn empirical_rates_track_configured_rates() {
        let cfg = chaos();
        let n = 100_000u64;
        let mut counts = [0u64; 6];
        for seq in 0..n {
            let idx = match cfg.decide(seq) {
                Fault::None => 0,
                Fault::Panic => 1,
                Fault::Slow(ms) => {
                    assert_eq!(ms, cfg.slow_ms);
                    2
                }
                Fault::TruncateFrame => 3,
                Fault::CorruptFrame => 4,
                Fault::ResetConnection => 5,
            };
            counts[idx] += 1;
        }
        // 10% ± 1 point for the two big rates, 5% ± 1 for the rest.
        let pct = |c: u64| c as f64 / n as f64 * 1000.0;
        assert!((pct(counts[1]) - 100.0).abs() < 10.0, "panic {:?}", counts);
        assert!((pct(counts[2]) - 100.0).abs() < 10.0, "slow {:?}", counts);
        assert!((pct(counts[3]) - 50.0).abs() < 10.0, "trunc {:?}", counts);
        assert!((pct(counts[4]) - 50.0).abs() < 10.0, "corrupt {:?}", counts);
        assert!((pct(counts[5]) - 50.0).abs() < 10.0, "reset {:?}", counts);
        assert_eq!(counts.iter().sum::<u64>(), n);
    }

    #[test]
    fn zero_config_never_injects() {
        let cfg = FaultConfig::default();
        assert_eq!(cfg.total_per_mille(), 0);
        for seq in 0..10_000 {
            assert_eq!(cfg.decide(seq), Fault::None);
        }
    }
}
