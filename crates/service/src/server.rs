//! The daemon: listeners, accept loop, connection handling, drain.
//!
//! One accept thread per server polls a non-blocking listener (TCP or
//! Unix) and hands each accepted connection to a fixed
//! [`WorkerPool`](crate::pool::WorkerPool). The pool's bounded queue is
//! the backpressure mechanism: when it is full the accept thread writes
//! a `busy` error frame and closes the connection immediately, so
//! overload shows up as an explicit, machine-readable rejection rather
//! than unbounded queueing.
//!
//! Connections are served keep-alive: a worker reads frames until the
//! client hangs up, answering each `Request` with a `Response` or a
//! typed `Error`. No input — malformed header, oversized frame,
//! truncated payload, junk JSON, unknown scheduler — can panic a
//! worker; every failure maps to an [`ErrorReply`] (see
//! [`crate::proto`]).
//!
//! # Drain
//!
//! [`ServerHandle::begin_drain`], a `Shutdown` frame, or SIGTERM (when
//! [`ServerConfig::handle_sigterm`] is set) all flip one flag. The
//! accept thread stops accepting; connections already accepted get
//! their in-flight request completed (a connection that has already
//! been answered once is told `draining` instead); the worker pool
//! drains its queue and joins; a Unix socket path is unlinked. A
//! served request is therefore never dropped on shutdown.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use dagsched_core::Scratch;

use crate::cache::{CacheConfig, ScheduleCache};
use crate::engine::{execute, EngineLimits};
use crate::metrics::Metrics;
use crate::proto::{
    read_frame_or_eof, write_frame, ErrorCode, ErrorReply, FrameKind, FrameReadError,
    ScheduleRequest, DEFAULT_MAX_FRAME,
};
use crate::{json::Json, pool::SubmitError, pool::WorkerPool};

/// How often the accept loop re-checks the drain flag while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Where to listen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// A TCP address, e.g. `127.0.0.1:7117` (port 0 picks a free port).
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

/// Parse an endpoint string: `tcp:HOST:PORT`, `unix:/path`, or a bare
/// `HOST:PORT` (TCP).
pub fn parse_endpoint(s: &str) -> Result<Listen, String> {
    if let Some(rest) = s.strip_prefix("unix:") {
        if rest.is_empty() {
            return Err("unix endpoint needs a path".to_string());
        }
        Ok(Listen::Unix(PathBuf::from(rest)))
    } else if let Some(rest) = s.strip_prefix("tcp:") {
        Ok(Listen::Tcp(rest.to_string()))
    } else if s.contains(':') {
        Ok(Listen::Tcp(s.to_string()))
    } else {
        Err(format!(
            "cannot parse endpoint `{s}` (use tcp:HOST:PORT or unix:/path)"
        ))
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads serving connections.
    pub workers: usize,
    /// Bounded connection-queue depth; beyond this, `busy`.
    pub queue: usize,
    /// Schedule-cache bounds.
    pub cache: CacheConfig,
    /// Largest accepted frame payload.
    pub max_frame: usize,
    /// Largest schedulable block (`None` = unlimited).
    pub max_block: Option<usize>,
    /// Deadline applied to requests that carry none.
    pub default_deadline_ms: Option<u64>,
    /// Cap on per-request `jobs`.
    pub max_jobs: usize,
    /// Per-connection read timeout (an idle client is disconnected).
    pub read_timeout_ms: u64,
    /// Install a SIGTERM handler that triggers a graceful drain.
    pub handle_sigterm: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            queue: 64,
            cache: CacheConfig::default(),
            max_frame: DEFAULT_MAX_FRAME,
            max_block: None,
            default_deadline_ms: None,
            max_jobs: 8,
            read_timeout_ms: 10_000,
            handle_sigterm: false,
        }
    }
}

/// State shared by the accept thread and every worker.
struct Shared {
    cache: ScheduleCache,
    metrics: Metrics,
    drain: AtomicBool,
    limits: EngineLimits,
    max_frame: usize,
}

/// One accepted connection (either transport).
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

enum ListenerImpl {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl ListenerImpl {
    fn accept(&self) -> io::Result<Conn> {
        match self {
            ListenerImpl::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            #[cfg(unix)]
            ListenerImpl::Unix(l, _) => l.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }
}

/// A running server. Dropping the handle does *not* stop the server;
/// call [`ServerHandle::begin_drain`] then [`ServerHandle::join`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
    local_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
}

impl ServerHandle {
    /// The bound TCP address (useful with port 0).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// The bound Unix socket path, if listening on one.
    pub fn unix_path(&self) -> Option<&PathBuf> {
        self.unix_path.as_ref()
    }

    /// An endpoint string a [`crate::client::Client`] can connect to.
    pub fn endpoint(&self) -> String {
        match (&self.local_addr, &self.unix_path) {
            (Some(addr), _) => format!("tcp:{addr}"),
            (None, Some(path)) => format!("unix:{}", path.display()),
            (None, None) => unreachable!("server listens somewhere"),
        }
    }

    /// Stop accepting connections and begin a graceful drain.
    pub fn begin_drain(&self) {
        self.shared.drain.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has been requested (by any trigger).
    pub fn draining(&self) -> bool {
        self.shared.drain.load(Ordering::SeqCst)
    }

    /// Snapshot the server counters.
    pub fn metrics(&self) -> Json {
        self.shared
            .metrics
            .snapshot(&self.shared.cache.stats())
    }

    /// Wait for the accept thread and worker pool to finish (after a
    /// drain has been triggered).
    pub fn join(mut self) {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// SIGTERM flag. Written from the signal handler, so it must be a
/// lock-free atomic and nothing else.
static SIGTERM_SEEN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_sigterm_handler() {
    extern "C" fn on_term(_sig: i32) {
        SIGTERM_SEEN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_term);
    }
}

#[cfg(not(unix))]
fn install_sigterm_handler() {}

/// Bind `listen` and start serving under `config`.
pub fn serve(listen: Listen, config: ServerConfig) -> io::Result<ServerHandle> {
    let (listener, local_addr, unix_path) = match listen {
        Listen::Tcp(addr) => {
            let l = TcpListener::bind(&addr)?;
            l.set_nonblocking(true)?;
            let bound = l.local_addr()?;
            (ListenerImpl::Tcp(l), Some(bound), None)
        }
        #[cfg(unix)]
        Listen::Unix(path) => {
            // A stale socket file from a crashed predecessor would make
            // bind fail; remove it only if it is a socket nobody serves.
            if path.exists() && UnixStream::connect(&path).is_err() {
                let _ = std::fs::remove_file(&path);
            }
            let l = UnixListener::bind(&path)?;
            l.set_nonblocking(true)?;
            (ListenerImpl::Unix(l, path.clone()), None, Some(path))
        }
        #[cfg(not(unix))]
        Listen::Unix(_) => {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            ))
        }
    };

    if config.handle_sigterm {
        install_sigterm_handler();
    }

    let shared = Arc::new(Shared {
        cache: ScheduleCache::new(config.cache),
        metrics: Metrics::default(),
        drain: AtomicBool::new(false),
        limits: EngineLimits {
            max_block: config.max_block,
            default_deadline_ms: config.default_deadline_ms,
            max_jobs: config.max_jobs,
        },
        max_frame: config.max_frame,
    });

    let pool_shared = Arc::clone(&shared);
    let pool: WorkerPool<Conn> = WorkerPool::new(
        config.workers,
        config.queue,
        |_| Scratch::new(),
        move |_, scratch, conn| serve_conn(&pool_shared, scratch, conn),
    );

    let accept_shared = Arc::clone(&shared);
    let read_timeout = Duration::from_millis(config.read_timeout_ms.max(1));
    let thread = std::thread::Builder::new()
        .name("dagsched-accept".to_string())
        .spawn(move || {
            accept_loop(listener, accept_shared, pool, read_timeout);
        })?;

    Ok(ServerHandle {
        shared,
        thread: Some(thread),
        local_addr,
        unix_path,
    })
}

fn accept_loop(
    listener: ListenerImpl,
    shared: Arc<Shared>,
    mut pool: WorkerPool<Conn>,
    read_timeout: Duration,
) {
    loop {
        if SIGTERM_SEEN.load(Ordering::SeqCst) {
            shared.drain.store(true, Ordering::SeqCst);
        }
        if shared.drain.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok(conn) => {
                Metrics::bump(&shared.metrics.connections);
                set_read_timeout(&conn, read_timeout);
                match pool.try_submit(conn) {
                    Ok(()) => {}
                    Err(SubmitError::Full(mut conn)) => {
                        Metrics::bump(&shared.metrics.busy_rejections);
                        send_error(
                            &shared,
                            &mut conn,
                            &ErrorReply::new(
                                ErrorCode::Busy,
                                "all workers busy and the queue is full; retry later",
                            ),
                        );
                    }
                    Err(SubmitError::Closed(_)) => break,
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                // Listener failure (fd limit, socket unlinked, …): stop
                // accepting; the drain path below still completes
                // queued work.
                break;
            }
        }
    }
    // Graceful drain: stop accepting, finish queued + in-flight
    // connections, then tear down.
    pool.close_and_join();
    #[cfg(unix)]
    if let ListenerImpl::Unix(_, path) = &listener {
        let _ = std::fs::remove_file(path);
    }
}

fn set_read_timeout(conn: &Conn, timeout: Duration) {
    match conn {
        Conn::Tcp(s) => {
            let _ = s.set_read_timeout(Some(timeout));
        }
        #[cfg(unix)]
        Conn::Unix(s) => {
            let _ = s.set_read_timeout(Some(timeout));
        }
    }
}

/// Serialize-and-send helpers. Write failures are ignored: the peer is
/// gone and the connection is about to be dropped anyway.
fn send_error(shared: &Shared, conn: &mut Conn, reply: &ErrorReply) {
    Metrics::bump(&shared.metrics.errors);
    let payload = reply.to_json().to_string();
    let _ = write_frame(conn, FrameKind::Error, payload.as_bytes());
}

fn send_ok(conn: &mut Conn, kind: FrameKind, payload: &Json) {
    let _ = write_frame(conn, kind, payload.to_string().as_bytes());
}

/// Serve one keep-alive connection until EOF, error, or drain.
fn serve_conn(shared: &Shared, scratch: &mut Scratch, mut conn: Conn) {
    let mut served = 0usize;
    loop {
        let frame = match read_frame_or_eof(&mut conn, shared.max_frame) {
            Ok(None) => return, // orderly hangup
            Ok(Some(frame)) => frame,
            Err(FrameReadError::Oversized { len, max }) => {
                send_error(
                    shared,
                    &mut conn,
                    &ErrorReply::new(
                        ErrorCode::OversizedFrame,
                        format!("frame payload of {len} bytes exceeds the {max}-byte cap"),
                    ),
                );
                return;
            }
            Err(FrameReadError::Io(e))
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle past the read timeout; hang up quietly.
                return;
            }
            Err(e) => {
                send_error(
                    shared,
                    &mut conn,
                    &ErrorReply::new(ErrorCode::MalformedFrame, e.to_string()),
                );
                return;
            }
        };
        match frame {
            (FrameKind::Ping, _) => send_ok(&mut conn, FrameKind::Pong, &Json::Null),
            (FrameKind::Metrics, _) => {
                let snap = shared.metrics.snapshot(&shared.cache.stats());
                send_ok(&mut conn, FrameKind::Metrics, &snap);
            }
            (FrameKind::Shutdown, _) => {
                shared.drain.store(true, Ordering::SeqCst);
                send_ok(&mut conn, FrameKind::Pong, &Json::Null);
                return;
            }
            (FrameKind::Request, payload) => {
                Metrics::bump(&shared.metrics.requests);
                if shared.drain.load(Ordering::SeqCst) && served > 0 {
                    // In-flight work is completed during a drain, but a
                    // connection that already got its answer is asked
                    // to go away.
                    Metrics::bump(&shared.metrics.drain_rejections);
                    send_error(
                        shared,
                        &mut conn,
                        &ErrorReply::new(ErrorCode::Draining, "server is draining"),
                    );
                    return;
                }
                match handle_request(shared, scratch, &payload) {
                    Ok(response) => {
                        Metrics::bump(&shared.metrics.responses);
                        send_ok(&mut conn, FrameKind::Response, &response);
                    }
                    Err(reply) => {
                        if reply.code == ErrorCode::DeadlineExpired {
                            Metrics::bump(&shared.metrics.deadline_expirations);
                        }
                        send_error(shared, &mut conn, &reply);
                    }
                }
                served += 1;
            }
            (other, _) => {
                send_error(
                    shared,
                    &mut conn,
                    &ErrorReply::new(
                        ErrorCode::BadRequest,
                        format!("unexpected client frame kind {other:?}"),
                    ),
                );
                return;
            }
        }
    }
}

fn handle_request(shared: &Shared, scratch: &mut Scratch, payload: &[u8]) -> Result<Json, ErrorReply> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| ErrorReply::new(ErrorCode::ParseError, "request payload is not UTF-8"))?;
    let value = Json::parse(text)
        .map_err(|e| ErrorReply::new(ErrorCode::ParseError, format!("request is not JSON: {e}")))?;
    let request = ScheduleRequest::from_json(&value)?;
    let response = execute(&request, &shared.limits, &shared.cache, scratch)?;
    Ok(response.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_parse() {
        assert_eq!(
            parse_endpoint("tcp:127.0.0.1:7117"),
            Ok(Listen::Tcp("127.0.0.1:7117".to_string()))
        );
        assert_eq!(
            parse_endpoint("127.0.0.1:0"),
            Ok(Listen::Tcp("127.0.0.1:0".to_string()))
        );
        assert_eq!(
            parse_endpoint("unix:/tmp/d.sock"),
            Ok(Listen::Unix(PathBuf::from("/tmp/d.sock")))
        );
        assert!(parse_endpoint("nonsense").is_err());
        assert!(parse_endpoint("unix:").is_err());
    }
}
